"""Vectorized query executor for the embedded columnar engine.

The executor evaluates parsed statements against :class:`~.table.Table`
objects.  SELECT execution follows the textbook pipeline — FROM, JOIN
(vectorized hash join), WHERE, GROUP BY (vectorized hash aggregation via
``np.unique``), HAVING, projection, DISTINCT, ORDER BY, LIMIT — operating on
whole numpy columns throughout, which is the "columnar, vectorized execution"
behaviour the engine substitutes for DuckDB.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ...errors import SQLExecutionError
from .ast_nodes import (
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CompoundSelect,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    UnaryOp,
    WindowFunction,
    WindowSpec,
    WithSelect,
)
from .column import (
    DictArray,
    compare_values,
    encoded_codes,
    gather_values,
    join_key_codes,
    null_mask,
    sort_keys,
    text_codes,
    to_pylist,
)
from .parser import AGGREGATE_FUNCTIONS
from .table import Table

#: Compute frames map column keys to plain numpy vectors or dictionary-
#: encoded text vectors (:class:`DictArray`); every kernel below accepts
#: both.
Frame = dict[str, np.ndarray]


def _sql_round(values: np.ndarray, decimals: int = 0) -> np.ndarray:
    """SQL ROUND: half-away-from-zero (SQLite/DuckDB), not numpy's banker's rounding.

    Negative ``decimals`` rounds to tens/hundreds like DuckDB; SQLite instead
    clamps a negative digit count to 0 (the engines disagree with each other).
    """
    scale = 10.0 ** decimals
    scaled = np.asarray(values, dtype=np.float64) * scale
    return np.trunc(scaled + np.copysign(0.5, scaled)) / scale


#: Scalar functions available in expressions.
#: ``log`` is base-10 to match SQLite/DuckDB (natural log is ``ln``).
_SCALAR_FUNCTIONS = {
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "ceiling": np.ceil,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log10,
    "log10": np.log10,
    "log2": np.log2,
    "sin": np.sin,
    "cos": np.cos,
    "round": None,  # handled specially (one or two arguments)
    "power": None,  # handled specially (two arguments)
    "pow": None,
    "coalesce": None,
    "min2": None,
    "max2": None,
}


def _frame_length(frame: Frame) -> int:
    for values in frame.values():
        return int(len(values))
    return 0


def _broadcast(value, length: int) -> np.ndarray:
    if isinstance(value, DictArray) and len(value) == length:
        return value
    if isinstance(value, np.ndarray) and value.ndim == 1 and len(value) == length:
        return value
    return np.full(length, value)


def _text_operand(values) -> tuple[np.ndarray, np.ndarray]:
    """``(str_array, valid)`` view of a ``||`` operand.

    Invalid (NULL) slots carry ``""`` in the string array; the caller
    propagates NULL through the concatenation via the validity mask.
    """
    if isinstance(values, DictArray):
        valid = ~values.is_null()
        if len(values.dictionary):
            text = values.dictionary[np.where(values.codes >= 0, values.codes, 0)]
            if not valid.all():
                text = text.copy()
                text[~valid] = ""
        else:
            text = np.full(len(values), "", dtype="<U1")
        return text, valid
    array = np.asarray(values)
    valid = ~null_mask(array)
    if array.dtype == object:
        filled = array.copy()
        filled[~valid] = ""
        return filled.astype(str), valid
    if array.dtype.kind == "f" and not valid.all():
        filled = array.astype(object)
        filled[~valid] = ""
        return filled.astype(str), valid
    return array.astype(str), valid


def _concat_strings(left, right) -> np.ndarray:
    """SQL ``||``: string concatenation with NULL propagation."""
    left_text, left_valid = _text_operand(left)
    right_text, right_valid = _text_operand(right)
    joined = np.char.add(left_text, right_text)
    valid = left_valid & right_valid
    if valid.all():
        return joined
    result = joined.astype(object)
    result[~valid] = None
    return result


class ExpressionEvaluator:
    """Evaluates scalar (non-aggregate) expressions over a column frame."""

    def __init__(self, frame: Frame, length: int) -> None:
        self._frame = frame
        self._length = length

    def evaluate(self, expression: Expression) -> np.ndarray:
        """Evaluate ``expression`` to a column of ``length`` values."""
        result = self._eval(expression)
        return _broadcast(result, self._length)

    # ------------------------------------------------------------ dispatch

    def _eval(self, expression: Expression):
        if isinstance(expression, Literal):
            return self._literal(expression.value)
        if isinstance(expression, ColumnRef):
            return self._column(expression)
        if isinstance(expression, UnaryOp):
            return self._unary(expression)
        if isinstance(expression, BinaryOp):
            return self._binary(expression)
        if isinstance(expression, FunctionCall):
            return self._function(expression)
        if isinstance(expression, CaseExpression):
            return self._case(expression)
        if isinstance(expression, IsNull):
            operand = self.evaluate(expression.operand)
            nulls = null_mask(operand)
            return ~nulls if expression.negated else nulls
        if isinstance(expression, InList):
            operand = self.evaluate(expression.operand)
            mask = np.zeros(self._length, dtype=bool)
            for value in expression.values:
                mask |= compare_values("=", operand, self.evaluate(value))
            if expression.negated:
                # NULL NOT IN (...) is unknown, never true: a NULL operand
                # must not pass the negated filter either.
                return ~mask & ~null_mask(operand)
            return mask
        if isinstance(expression, Star):
            raise SQLExecutionError("'*' is only allowed as a projection or inside COUNT(*)")
        if isinstance(expression, WindowFunction):
            raise SQLExecutionError(
                "window functions are only allowed in the SELECT list"
            )
        raise SQLExecutionError(f"unsupported expression node {type(expression).__name__}")

    def _literal(self, value):
        if value is None:
            return np.full(self._length, np.nan)
        return value

    def _column(self, ref: ColumnRef) -> np.ndarray:
        key = ref.key()
        if key in self._frame:
            return self._frame[key]
        if ref.table is None and ref.name in self._frame:
            return self._frame[ref.name]
        available = sorted(k for k in self._frame if "." not in k)
        raise SQLExecutionError(f"unknown column {key!r}; available columns: {available}")

    def _unary(self, node: UnaryOp):
        operand = self.evaluate(node.operand)
        if node.operator == "-":
            return -operand
        if node.operator == "+":
            return operand
        if node.operator == "~":
            return ~operand.astype(np.int64)
        if node.operator == "not":
            return ~operand.astype(bool)
        raise SQLExecutionError(f"unsupported unary operator {node.operator!r}")

    def _binary(self, node: BinaryOp):
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        operator = node.operator
        if operator in ("&", "|", "<<", ">>"):
            left_int = left.astype(np.int64)
            right_int = right.astype(np.int64)
            if operator == "&":
                return left_int & right_int
            if operator == "|":
                return left_int | right_int
            if operator == "<<":
                return left_int << right_int
            return left_int >> right_int
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            # SQL semantics: integer / integer stays integral and truncates
            # toward zero (SQLite/DuckDB), unlike Python's floor division;
            # a zero divisor yields NULL (NaN), not an error.
            if left.dtype.kind in "iu" and right.dtype.kind in "iu":
                zero = right == 0
                divisor = np.where(zero, 1, right)
                with np.errstate(divide="ignore"):
                    quotient = left // divisor
                    remainder = left - quotient * divisor
                # Floor division rounded away from zero on sign mismatch: bump
                # back toward zero to get truncation.
                truncated = quotient + ((remainder != 0) & ((left < 0) != (divisor < 0)))
                if zero.any():
                    return np.where(zero, np.nan, truncated.astype(np.float64))
                return truncated
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(right == 0, np.nan, left / np.where(right == 0, 1, right))
        if operator == "%":
            # SQL modulo truncates toward zero (sign of the dividend), unlike
            # Python's floored modulo: -7 % 3 is -1 in SQLite, 2 in Python.
            # Float operands keep fmod semantics like DuckDB (2.5 % 2 = 0.5);
            # SQLite instead casts both sides to INTEGER first.  A zero
            # divisor yields NULL (NaN) like both engines.
            zero = right == 0
            with np.errstate(invalid="ignore", divide="ignore"):
                remainder = np.fmod(left, np.where(zero, 1, right))
            if zero.any():
                return np.where(zero, np.nan, remainder.astype(np.float64))
            return remainder
        if operator in ("=", "!=", "<", "<=", ">", ">="):
            # One comparison kernel for every representation (numeric,
            # object, dictionary codes) with SQL's three-valued logic
            # collapsed to filter semantics: NULL on either side is False.
            return compare_values(operator, left, right)
        if operator == "and":
            return left.astype(bool) & right.astype(bool)
        if operator == "or":
            return left.astype(bool) | right.astype(bool)
        if operator == "||":
            return _concat_strings(left, right)
        raise SQLExecutionError(f"unsupported binary operator {operator!r}")

    def _function(self, node: FunctionCall):
        name = node.name
        if name in AGGREGATE_FUNCTIONS:
            raise SQLExecutionError(
                f"aggregate {name.upper()}() used outside of an aggregating SELECT"
            )
        if name in ("power", "pow"):
            if len(node.arguments) != 2:
                raise SQLExecutionError(f"{name}() takes two arguments")
            return np.power(self.evaluate(node.arguments[0]), self.evaluate(node.arguments[1]))
        if name == "round":
            if len(node.arguments) not in (1, 2):
                raise SQLExecutionError("round() takes one or two arguments")
            values = self.evaluate(node.arguments[0])
            decimals = 0
            if len(node.arguments) == 2:
                digits = node.arguments[1]
                sign = 1
                if isinstance(digits, UnaryOp) and digits.operator in ("-", "+"):
                    sign = -1 if digits.operator == "-" else 1
                    digits = digits.operand
                if not isinstance(digits, Literal) or not isinstance(digits.value, (int, float)):
                    raise SQLExecutionError("round() requires a literal number of digits")
                decimals = sign * int(digits.value)
            return _sql_round(values, decimals)
        if name == "coalesce":
            if not node.arguments:
                raise SQLExecutionError("coalesce() needs at least one argument")
            operands = [self.evaluate(argument) for argument in node.arguments]
            if any(
                isinstance(operand, DictArray) or operand.dtype.kind in ("O", "U")
                for operand in operands
            ):
                # Text-capable path: fill NULL slots left to right.
                result = np.array(np.asarray(operands[0], dtype=object), dtype=object)
                missing = null_mask(result)
                for candidate in operands[1:]:
                    if not missing.any():
                        break
                    candidate = np.asarray(candidate, dtype=object)
                    result[missing] = candidate[missing]
                    missing = null_mask(result)
                return result
            result = operands[0].astype(float)
            for candidate in operands[1:]:
                result = np.where(np.isnan(result), candidate, result)
            return result
        if name in _SCALAR_FUNCTIONS and _SCALAR_FUNCTIONS[name] is not None:
            if len(node.arguments) != 1:
                raise SQLExecutionError(f"{name}() takes exactly one argument")
            return _SCALAR_FUNCTIONS[name](self.evaluate(node.arguments[0]))
        raise SQLExecutionError(f"unknown function {name!r}")

    def _case(self, node: CaseExpression):
        result = None
        decided = np.zeros(self._length, dtype=bool)
        for condition, branch in zip(node.conditions, node.results):
            mask = self.evaluate(condition).astype(bool) & ~decided
            value = self.evaluate(branch)
            if result is None:
                result = np.where(mask, value, np.nan)
            else:
                result = np.where(mask, value, result)
            decided |= mask
        default = self.evaluate(node.default) if node.default is not None else np.full(self._length, np.nan)
        result = np.where(decided, result, default)
        return result


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def contains_aggregate(expression: Expression) -> bool:
    """True when the expression calls an aggregate function anywhere.

    The single aggregate detector shared by the executor, the planner's
    analysis and the optimizer's rewrite rules — keeping one traversal means
    the optimizer can never classify an expression differently than the
    engine that executes it.
    """
    return _contains_aggregate(expression)


def column_refs(expression: Expression) -> list[ColumnRef]:
    """Every column reference in an expression tree, in visit order.

    The single reference collector shared by the planner's join-side
    analysis and the optimizer's rewrite rules: a new expression node type
    added here is seen by both, so the optimizer can never miss references
    the planner resolves (or vice versa).
    """
    refs: list[ColumnRef] = []

    def visit(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, BinaryOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, FunctionCall):
            for argument in node.arguments:
                visit(argument)
        elif isinstance(node, CaseExpression):
            for child in node.conditions + node.results:
                visit(child)
            if node.default is not None:
                visit(node.default)
        elif isinstance(node, (IsNull, InList)):
            visit(node.operand)
            if isinstance(node, InList):
                for value in node.values:
                    visit(value)
        elif isinstance(node, WindowFunction):
            for argument in node.arguments:
                visit(argument)
            for partition in node.spec.partition_by:
                visit(partition)
            for item in node.spec.order_by:
                visit(item.expression)

    visit(expression)
    return refs


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, FunctionCall):
        if expression.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(argument) for argument in expression.arguments)
    if isinstance(expression, BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, CaseExpression):
        children = list(expression.conditions) + list(expression.results)
        if expression.default is not None:
            children.append(expression.default)
        return any(_contains_aggregate(child) for child in children)
    if isinstance(expression, (IsNull, InList)):
        return _contains_aggregate(expression.operand)
    return False


class GroupedEvaluator:
    """Evaluates expressions (possibly containing aggregates) per group."""

    def __init__(
        self,
        frame: Frame,
        length: int,
        inverse: np.ndarray,
        num_groups: int,
        first_indices: np.ndarray,
    ) -> None:
        self._scalar = ExpressionEvaluator(frame, length)
        self._length = length
        self._inverse = inverse
        self._num_groups = num_groups
        self._first_indices = first_indices

    def evaluate(self, expression: Expression) -> np.ndarray:
        """Evaluate ``expression`` to one value per group."""
        result = self._eval(expression)
        return _broadcast(result, self._num_groups)

    def _eval(self, expression: Expression):
        if isinstance(expression, FunctionCall) and expression.name in AGGREGATE_FUNCTIONS:
            return self._aggregate(expression)
        if isinstance(expression, BinaryOp):
            left = self.evaluate(expression.left)
            right = self.evaluate(expression.right)
            surrogate = BinaryOp(expression.operator, Literal(0), Literal(0))
            return self._combine_binary(surrogate.operator, left, right)
        if isinstance(expression, UnaryOp):
            operand = self.evaluate(expression.operand)
            if expression.operator == "-":
                return -operand
            if expression.operator == "+":
                return operand
            if expression.operator == "~":
                return ~operand.astype(np.int64)
            if expression.operator == "not":
                return ~operand.astype(bool)
            raise SQLExecutionError(f"unsupported unary operator {expression.operator!r}")
        # No aggregate inside: evaluate on the full frame and take each group's
        # first row (legal because grouped non-aggregate expressions must be
        # functions of the grouping key in the supported SQL subset).
        full = self._scalar.evaluate(expression)
        return full[self._first_indices]

    def _combine_binary(self, operator: str, left: np.ndarray, right: np.ndarray):
        evaluator = ExpressionEvaluator({"__left": left, "__right": right}, self._num_groups)
        surrogate = BinaryOp(operator, ColumnRef("__left"), ColumnRef("__right"))
        return evaluator.evaluate(surrogate)

    def _aggregate(self, call: FunctionCall) -> np.ndarray:
        name = call.name
        if call.is_star or not call.arguments:
            if name != "count":
                raise SQLExecutionError(f"{name.upper()}(*) is not a valid aggregate")
            return np.bincount(self._inverse, minlength=self._num_groups).astype(np.int64)

        raw = self._scalar.evaluate(call.arguments[0])
        is_text = isinstance(raw, DictArray) or raw.dtype.kind in ("O", "U")
        # SQL aggregates skip NULLs: COUNT(col) counts non-NULL rows,
        # SUM/AVG/MIN/MAX reduce the valid rows only, and an all-NULL group
        # yields NULL (COUNT yields 0).
        mask = ~null_mask(raw)
        if call.distinct:
            # Deduplicate (group, value) pairs — on *exact* integer codes,
            # so wide int64 values and NULLs dedup correctly — before
            # aggregating.
            keys = np.stack([self._inverse, encoded_codes(raw)], axis=1)
            _unique, unique_indices = np.unique(keys, axis=0, return_index=True)
            distinct_mask = np.zeros(self._length, dtype=bool)
            distinct_mask[unique_indices] = True
            mask &= distinct_mask

        inverse = self._inverse[mask]
        counts = np.bincount(inverse, minlength=self._num_groups)
        if name == "count":
            return counts.astype(np.int64)

        if is_text:
            if name not in ("min", "max"):
                raise SQLExecutionError(f"{name.upper()}() is not defined on text columns")
            return self._reduce_text_minmax(name, raw, mask, inverse, counts)

        values = raw.astype(np.float64)[mask]
        if name in ("sum", "total"):
            sums = np.bincount(inverse, weights=values, minlength=self._num_groups)
            if name == "sum":
                sums = np.where(counts == 0, np.nan, sums)
            return sums
        if name == "avg":
            sums = np.bincount(inverse, weights=values, minlength=self._num_groups)
            return np.where(counts == 0, np.nan, sums / np.maximum(counts, 1))
        if name in ("min", "max"):
            result = np.full(self._num_groups, np.nan)
            if len(values):
                order = np.argsort(inverse, kind="stable")
                sorted_inverse = inverse[order]
                sorted_values = values[order]
                boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
                reducer = np.minimum if name == "min" else np.maximum
                reduced = reducer.reduceat(sorted_values, boundaries)
                result[sorted_inverse[boundaries]] = reduced
            return result
        raise SQLExecutionError(f"unsupported aggregate {name!r}")

    def _reduce_text_minmax(
        self,
        name: str,
        raw,
        mask: np.ndarray,
        inverse: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """MIN/MAX over a text column: reduce the integer codes, decode once."""
        all_codes, vocabulary = text_codes(raw)
        codes = all_codes[mask]
        result = np.empty(self._num_groups, dtype=object)
        result[:] = None
        if len(codes):
            order = np.argsort(inverse, kind="stable")
            sorted_inverse = inverse[order]
            sorted_codes = codes[order]
            boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
            reducer = np.minimum if name == "min" else np.maximum
            reduced = reducer.reduceat(sorted_codes, boundaries)
            groups = sorted_inverse[boundaries]
            decoded = vocabulary[reduced]
            for group, value in zip(groups.tolist(), decoded.tolist()):
                result[group] = value
        return result


# ---------------------------------------------------------------------------
# Window functions (vectorized sort-once, segment-boundary kernels)
# ---------------------------------------------------------------------------

#: Ranking-family window functions (no frame; position/peer based).
WINDOW_RANKING_FUNCTIONS = {"row_number", "rank", "dense_rank", "lag", "lead"}

#: Aggregates usable as running window functions over a frame.
WINDOW_AGGREGATE_FUNCTIONS = {"sum", "count", "min", "max", "avg", "total"}


def _contains_window(expression: Expression) -> bool:
    if isinstance(expression, WindowFunction):
        return True
    if isinstance(expression, BinaryOp):
        return _contains_window(expression.left) or _contains_window(expression.right)
    if isinstance(expression, UnaryOp):
        return _contains_window(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(_contains_window(argument) for argument in expression.arguments)
    if isinstance(expression, CaseExpression):
        children = list(expression.conditions) + list(expression.results)
        if expression.default is not None:
            children.append(expression.default)
        return any(_contains_window(child) for child in children)
    if isinstance(expression, (IsNull, InList)):
        return _contains_window(expression.operand)
    return False


def select_has_windows(select: Select) -> bool:
    """True when any projection item contains a window function."""
    return any(_contains_window(item.expression) for item in select.items)


def validate_window_usage(select: Select, has_aggregates: bool) -> bool:
    """Check window placement rules; returns whether the SELECT has windows.

    Shared by the interpreter and the planner so both reject exactly the
    same shapes: window calls outside the SELECT list, and windows mixed
    with GROUP BY / plain aggregates (evaluation order would be ambiguous
    in the supported subset).
    """
    has_windows = select_has_windows(select)
    outside: list[Expression] = []
    if select.where is not None:
        outside.append(select.where)
    outside.extend(select.group_by)
    if select.having is not None:
        outside.append(select.having)
    outside.extend(item.expression for item in select.order_by)
    for join in select.joins:
        outside.append(join.condition)
    for expression in outside:
        if _contains_window(expression):
            raise SQLExecutionError("window functions are only allowed in the SELECT list")
    if has_windows and (select.group_by or has_aggregates):
        raise SQLExecutionError(
            "window functions cannot be combined with GROUP BY or plain aggregates"
        )
    return has_windows


def _collect_windows(expression: Expression, out: list[WindowFunction]) -> None:
    if isinstance(expression, WindowFunction):
        if expression not in out:
            out.append(expression)
        return
    if isinstance(expression, BinaryOp):
        _collect_windows(expression.left, out)
        _collect_windows(expression.right, out)
    elif isinstance(expression, UnaryOp):
        _collect_windows(expression.operand, out)
    elif isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            _collect_windows(argument, out)
    elif isinstance(expression, CaseExpression):
        for child in expression.conditions + expression.results:
            _collect_windows(child, out)
        if expression.default is not None:
            _collect_windows(expression.default, out)
    elif isinstance(expression, (IsNull, InList)):
        _collect_windows(expression.operand, out)
        if isinstance(expression, InList):
            for value in expression.values:
                _collect_windows(value, out)


def _replace_windows(
    expression: Expression, mapping: Mapping[WindowFunction, ColumnRef]
) -> Expression:
    """Substitute computed window columns for their WindowFunction nodes."""
    if isinstance(expression, WindowFunction):
        return mapping[expression]
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.operator,
            _replace_windows(expression.left, mapping),
            _replace_windows(expression.right, mapping),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.operator, _replace_windows(expression.operand, mapping))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(_replace_windows(argument, mapping) for argument in expression.arguments),
            is_star=expression.is_star,
            distinct=expression.distinct,
        )
    if isinstance(expression, CaseExpression):
        return CaseExpression(
            tuple(_replace_windows(child, mapping) for child in expression.conditions),
            tuple(_replace_windows(child, mapping) for child in expression.results),
            None if expression.default is None else _replace_windows(expression.default, mapping),
        )
    if isinstance(expression, IsNull):
        return IsNull(_replace_windows(expression.operand, mapping), expression.negated)
    if isinstance(expression, InList):
        return InList(
            _replace_windows(expression.operand, mapping),
            tuple(_replace_windows(value, mapping) for value in expression.values),
            expression.negated,
        )
    return expression


class _SortedWindow:
    """Partition/peer segment geometry of one sorted window pass.

    All fields are per-row arrays in *sorted* coordinates: ``order`` maps
    sorted position -> input row, ``part_start``/``part_end`` are each row's
    partition bounds, ``pos`` its offset inside the partition, and
    ``peer_start``/``peer_end`` the bounds of its ORDER-BY peer group (rows
    comparing equal on every window ORDER BY key).
    """

    __slots__ = ("order", "n", "part_start", "part_end", "pos", "peer_start", "peer_end", "new_peer")

    def __init__(self, order, n, part_start, part_end, pos, peer_start, peer_end, new_peer):
        self.order = order
        self.n = n
        self.part_start = part_start
        self.part_end = part_end
        self.pos = pos
        self.peer_start = peer_start
        self.peer_end = peer_end
        self.new_peer = new_peer


def _sorted_partitions(
    evaluator: ExpressionEvaluator,
    partition_by: Sequence[Expression],
    order_by: Sequence[OrderItem],
    length: int,
) -> _SortedWindow:
    """Sort once by (partition keys, order keys); derive segment boundaries.

    Partition keys use :func:`encoded_codes` (exact int64, text on
    dictionary codes) and order keys :func:`sort_keys` (NULLs first
    ascending, DESC by negation), so partition identity and peer equality
    are decided on exact integer compares — the same key space the sort,
    group-by and join operators already share.
    """
    part_codes = [encoded_codes(evaluator.evaluate(e)) for e in partition_by]
    order_codes = [
        sort_keys(evaluator.evaluate(item.expression), item.descending) for item in order_by
    ]
    keys = list(reversed(order_codes)) + list(reversed(part_codes))
    order = np.lexsort(keys) if keys else np.arange(length, dtype=np.int64)
    n = length

    new_part = np.zeros(n, dtype=bool)
    if n:
        new_part[0] = True
    for code in part_codes:
        sorted_code = code[order]
        new_part[1:] |= sorted_code[1:] != sorted_code[:-1]
    part_starts = np.flatnonzero(new_part)
    counts = np.diff(np.append(part_starts, n))
    part_start = np.repeat(part_starts, counts)
    part_end = np.repeat(part_starts + counts - 1, counts)
    pos = np.arange(n, dtype=np.int64) - part_start

    new_peer = new_part.copy()
    for code in order_codes:
        sorted_code = code[order]
        new_peer[1:] |= sorted_code[1:] != sorted_code[:-1]
    peer_starts = np.flatnonzero(new_peer)
    peer_counts = np.diff(np.append(peer_starts, n))
    peer_start = np.repeat(peer_starts, peer_counts)
    peer_end = np.repeat(peer_starts + peer_counts - 1, peer_counts)
    return _SortedWindow(order, n, part_start, part_end, pos, peer_start, peer_end, new_peer)


def _scatter(win: _SortedWindow, sorted_values: np.ndarray) -> np.ndarray:
    """Map a sorted-domain result column back to input row order."""
    out = np.empty(win.n, dtype=sorted_values.dtype)
    out[win.order] = sorted_values
    return out


def _frame_bounds(spec: WindowSpec, win: _SortedWindow) -> tuple[np.ndarray, np.ndarray]:
    """Per-row inclusive frame bounds ``(lo, hi)`` in sorted coordinates.

    The default frame (no ROWS clause) is SQLite's RANGE UNBOUNDED
    PRECEDING .. CURRENT ROW *including peers* when the window has an ORDER
    BY, and the whole partition otherwise.  Explicit ROWS frames count
    physical rows and are clipped to the partition; an inverted pair
    (``hi < lo``) denotes an empty frame, which aggregates map to NULL
    (COUNT to 0).
    """
    if spec.frame is None:
        lo = win.part_start
        hi = win.peer_end if spec.order_by else win.part_end
        return lo, hi
    start, end = spec.frame
    if start.kind == "unbounded_following" or end.kind == "unbounded_preceding":
        raise SQLExecutionError("invalid window frame: UNBOUNDED on the wrong side")
    i = np.arange(win.n, dtype=np.int64)
    if start.kind == "unbounded_preceding":
        lo = win.part_start
    elif start.kind == "current":
        lo = i
    elif start.kind == "preceding":
        lo = np.maximum(i - start.offset, win.part_start)
    else:  # following
        lo = np.minimum(i + start.offset, win.part_end + 1)
    if end.kind == "unbounded_following":
        hi = win.part_end
    elif end.kind == "current":
        hi = i
    elif end.kind == "following":
        hi = np.minimum(i + end.offset, win.part_end)
    else:  # preceding
        hi = np.maximum(i - end.offset, win.part_start - 1)
    return lo, hi


def _range_reduce(filled: np.ndarray, lo: np.ndarray, hi: np.ndarray, reducer) -> np.ndarray:
    """``reducer`` over ``filled[lo..hi]`` per row via a sparse table.

    Precomputes log(n) doubling levels (level k reduces spans of ``2**k``)
    and answers every row's range with two overlapping block lookups — the
    classic O(n log n) preprocessing / O(1) query min-max structure, fully
    vectorized.  Rows with empty frames must be masked by the caller.
    """
    n = len(filled)
    levels = [filled]
    size = 1
    while size * 2 <= n:
        previous = levels[-1]
        nxt = previous.copy()
        nxt[: n - size] = reducer(previous[: n - size], previous[size:])
        levels.append(nxt)
        size *= 2
    width = hi - lo + 1
    k = np.zeros(n, dtype=np.int64)
    positive = width > 0
    if positive.any():
        k[positive] = np.floor(np.log2(width[positive])).astype(np.int64)
    out = np.empty(n, dtype=filled.dtype)
    for level in np.unique(k) if n else ():
        mask = k == level
        block = 1 << int(level)
        out[mask] = reducer(
            levels[int(level)][lo[mask]], levels[int(level)][hi[mask] - block + 1]
        )
    return out


def _window_lag_lead(
    wf: WindowFunction, win: _SortedWindow, evaluator: ExpressionEvaluator
) -> np.ndarray:
    if wf.is_star or not 1 <= len(wf.arguments) <= 3:
        raise SQLExecutionError(f"{wf.name}() takes 1 to 3 arguments")
    offset = 1
    if len(wf.arguments) >= 2:
        literal = wf.arguments[1]
        if (
            not isinstance(literal, Literal)
            or isinstance(literal.value, bool)
            or not isinstance(literal.value, int)
        ):
            raise SQLExecutionError(f"{wf.name}() offset must be an integer literal")
        offset = int(literal.value)
        if offset < 0:
            raise SQLExecutionError(f"{wf.name}() offset must be non-negative")
    values = evaluator.evaluate(wf.arguments[0])
    default = evaluator.evaluate(wf.arguments[2]) if len(wf.arguments) == 3 else None

    i = np.arange(win.n, dtype=np.int64)
    target = i - offset if wf.name == "lag" else i + offset
    ok = (target >= win.part_start) & (target <= win.part_end)
    safe = np.clip(target, 0, max(win.n - 1, 0))

    def is_text(column) -> bool:
        return isinstance(column, DictArray) or np.asarray(column).dtype.kind in ("O", "U")

    if is_text(values) or (default is not None and is_text(default)):
        sorted_values = np.asarray(gather_values(values, win.order), dtype=object)
        out = np.empty(win.n, dtype=object)
        out[:] = None
        if default is not None:
            sorted_default = np.asarray(gather_values(default, win.order), dtype=object)
            out[~ok] = sorted_default[~ok]
        out[ok] = sorted_values[safe[ok]]
        return _scatter(win, out)
    sorted_values = np.asarray(values, dtype=np.float64)[win.order]
    if default is None:
        sorted_default = np.full(win.n, np.nan)
    else:
        sorted_default = np.asarray(default, dtype=np.float64)[win.order]
    return _scatter(win, np.where(ok, sorted_values[safe], sorted_default))


def _window_aggregate(
    wf: WindowFunction, win: _SortedWindow, evaluator: ExpressionEvaluator
) -> np.ndarray:
    name = wf.name
    lo, hi = _frame_bounds(wf.spec, win)
    if name == "count" and (wf.is_star or not wf.arguments):
        return _scatter(win, np.maximum(hi - lo + 1, 0).astype(np.int64))
    if wf.is_star or len(wf.arguments) != 1:
        raise SQLExecutionError(f"{name.upper()}() window function takes exactly one argument")
    values = evaluator.evaluate(wf.arguments[0])
    if isinstance(values, DictArray) or np.asarray(values).dtype.kind in ("O", "U"):
        raise SQLExecutionError(
            f"{name.upper()}() window function is not supported on text columns"
        )
    sorted_values = np.asarray(values, dtype=np.float64)[win.order]
    valid = ~np.isnan(sorted_values)
    count_prefix = np.concatenate(([0], np.cumsum(valid.astype(np.int64))))
    hi1 = np.maximum(hi + 1, lo)  # empty frames collapse to a zero-width span
    cnt = count_prefix[hi1] - count_prefix[lo]
    if name == "count":
        return _scatter(win, cnt.astype(np.int64))
    if name in ("sum", "total", "avg"):
        sum_prefix = np.concatenate(([0.0], np.cumsum(np.where(valid, sorted_values, 0.0))))
        totals = sum_prefix[hi1] - sum_prefix[lo]
        if name == "total":
            return _scatter(win, totals)
        if name == "avg":
            return _scatter(win, np.where(cnt == 0, np.nan, totals / np.maximum(cnt, 1)))
        return _scatter(win, np.where(cnt == 0, np.nan, totals))
    # MIN / MAX: NULLs filled with the reducer's identity; empty and
    # all-NULL frames are masked to NULL afterwards via the valid count.
    fill = np.inf if name == "min" else -np.inf
    reducer = np.minimum if name == "min" else np.maximum
    filled = np.where(valid, sorted_values, fill)
    last = max(win.n - 1, 0)
    safe_lo = np.minimum(lo, last)
    safe_hi = np.maximum(np.minimum(hi, last), safe_lo)
    reduced = _range_reduce(filled, safe_lo, safe_hi, reducer)
    return _scatter(win, np.where(cnt == 0, np.nan, reduced))


def _window_function_column(
    wf: WindowFunction, win: _SortedWindow, evaluator: ExpressionEvaluator
) -> np.ndarray:
    name = wf.name
    if name in ("row_number", "rank", "dense_rank"):
        if wf.arguments or wf.is_star:
            raise SQLExecutionError(f"{name}() takes no arguments")
        if name == "row_number":
            return _scatter(win, (win.pos + 1).astype(np.int64))
        if name == "rank":
            return _scatter(win, (win.peer_start - win.part_start + 1).astype(np.int64))
        ordinal = np.cumsum(win.new_peer.astype(np.int64))
        return _scatter(win, (ordinal - ordinal[win.part_start] + 1).astype(np.int64))
    if name in ("lag", "lead"):
        return _window_lag_lead(wf, win, evaluator)
    if name in WINDOW_AGGREGATE_FUNCTIONS:
        return _window_aggregate(wf, win, evaluator)
    raise SQLExecutionError(f"unknown window function {name!r}")


def compute_window_columns(
    windows: Sequence[WindowFunction], frame: Frame, length: int
) -> dict[WindowFunction, np.ndarray]:
    """Evaluate every window function once; one sort per distinct key set.

    Functions sharing ``(PARTITION BY, ORDER BY)`` keys share a single
    lexsort and segment-boundary pass; only the per-function kernel (rank
    arithmetic, shifted gather, prefix-sum frame reduction) differs.
    """
    evaluator = ExpressionEvaluator(frame, length)
    groups: dict[tuple, list[WindowFunction]] = {}
    for wf in windows:
        groups.setdefault((wf.spec.partition_by, wf.spec.order_by), []).append(wf)
    results: dict[WindowFunction, np.ndarray] = {}
    for (partition_by, order_by), funcs in groups.items():
        win = _sorted_partitions(evaluator, partition_by, order_by, length)
        for wf in funcs:
            results[wf] = _window_function_column(wf, win, evaluator)
    return results


def windowed_projection(
    select: Select, frame: Frame, length: int
) -> tuple[list[str], dict[str, np.ndarray], Frame]:
    """Window physical operator: compute window columns, then project.

    Window results are 1:1 with the (post-WHERE) input rows, so the
    returned extended frame keeps the aligned-ORDER-BY path of
    :func:`postprocess_select` available — ORDER BY may still reference
    source columns alongside window aliases.
    """
    windows: list[WindowFunction] = []
    for item in select.items:
        if isinstance(item.expression, Star):
            raise SQLExecutionError("'*' projection cannot be combined with window functions")
        _collect_windows(item.expression, windows)
    results = compute_window_columns(windows, frame, length)
    extended: Frame = dict(frame)
    mapping: dict[WindowFunction, ColumnRef] = {}
    for index, wf in enumerate(windows):
        key = f"__win{index}"
        extended[key] = results[wf]
        mapping[wf] = ColumnRef(key)
    items = tuple(
        SelectItem(
            _replace_windows(item.expression, mapping),
            item.alias or item_output_name(item, position),
        )
        for position, item in enumerate(select.items)
    )
    names, columns = plain_projection(items, extended, length)
    return names, columns, extended


# ---------------------------------------------------------------------------
# Recursive common table expressions (breadth-first fixpoint)
# ---------------------------------------------------------------------------

#: Default iteration cap for ``WITH RECURSIVE`` fixpoints.
DEFAULT_RECURSION_LIMIT = 1000


def _self_reference_count(select: Select, name: str) -> int:
    count = 0
    if select.source is not None and select.source.name == name:
        count += 1
    for join in select.joins:
        if join.source.name == name:
            count += 1
    return count


def _dedup_key(row: tuple) -> tuple:
    """UNION-dedup key: NULLs compare equal, 2 and 2.0 compare equal."""
    key = []
    for value in row:
        if value is None:
            key.append(None)
        elif isinstance(value, bool):
            key.append(float(value))
        elif isinstance(value, (int, float, np.number)):
            number = float(value)
            key.append(None if number != number else number)
        else:
            key.append(value)
    return tuple(key)


def rows_from_columns(names: Sequence[str], columns: Mapping[str, np.ndarray]) -> list[tuple]:
    """Materialize a column dict as Python row tuples (``None`` for NULL)."""
    if not names:
        return []
    lists = [to_pylist(columns[name]) for name in names]
    return list(zip(*lists))


def _column_array(values: list):
    """Rebuild one column vector from Python values (fixpoint accumulation).

    Text columns become object arrays (``None`` at NULLs); all-integer
    columns come back as int64; anything else is float64 with NaN NULLs.
    """
    if any(isinstance(value, str) for value in values):
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out
    all_int = bool(values)
    clean = []
    for value in values:
        if value is None:
            clean.append(np.nan)
            all_int = False
        elif isinstance(value, bool):
            clean.append(int(value))
        elif isinstance(value, (int, np.integer)):
            clean.append(int(value))
        else:
            clean.append(float(value))
            all_int = False
    if all_int:
        return np.array(clean, dtype=np.int64)
    return np.array(clean, dtype=np.float64)


def columns_from_rows(names: Sequence[str], rows: Sequence[tuple]) -> dict[str, np.ndarray]:
    """Inverse of :func:`rows_from_columns`."""
    return {
        name: _column_array([row[index] for row in rows]) for index, name in enumerate(names)
    }


def run_compound_cte(
    name: str,
    compound: CompoundSelect,
    recursive: bool,
    alias_columns: Sequence[str],
    run_base: "Callable[[], tuple[list[str], dict[str, np.ndarray]]]",
    run_step: "Callable[[Table | None], tuple[list[str], dict[str, np.ndarray]]]",
    recursion_limit: int = DEFAULT_RECURSION_LIMIT,
    observe_iteration: "Callable[[int, int], None] | None" = None,
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Evaluate a ``UNION [ALL]`` CTE body, recursively when self-referencing.

    The shared fixpoint driver behind both the interpreter and the compiled
    plan: ``run_base`` evaluates the base term once, then ``run_step``
    evaluates the recursive term against a frontier table bound to the
    CTE's own name — breadth-first semi-naive evaluation, where each step
    sees only the rows the previous step produced.  ``UNION`` deduplicates
    against everything already emitted (NULLs compare equal), so cycles in
    the underlying data still terminate; ``UNION ALL`` only terminates when
    a step comes back empty, and trips ``recursion_limit`` otherwise
    instead of hanging.  ``observe_iteration(iteration, new_rows)`` feeds
    tracing/EXPLAIN iteration counts.
    """
    if _self_reference_count(compound.left, name):
        raise SQLExecutionError(
            f"circular reference: the base term of CTE {name!r} may not reference it"
        )
    references = _self_reference_count(compound.right, name)
    if references > 1:
        raise SQLExecutionError(f"recursive CTE {name!r} may reference itself only once")
    if references and not recursive:
        raise SQLExecutionError(
            f"no such table: {name} (self-referencing CTEs need WITH RECURSIVE)"
        )
    if references and (
        compound.right.group_by
        or select_has_aggregates(compound.right)
        or compound.right.distinct
    ):
        raise SQLExecutionError(
            f"the recursive term of CTE {name!r} may not use aggregates, GROUP BY or DISTINCT"
        )

    base_names, base_columns = run_base()
    names = list(alias_columns) if alias_columns else list(base_names)
    if alias_columns and len(alias_columns) != len(base_names):
        raise SQLExecutionError(
            f"CTE {name!r} declares {len(alias_columns)} columns "
            f"but its query returns {len(base_names)}"
        )
    base_rows = rows_from_columns(base_names, base_columns)

    dedup = not compound.all
    seen: set = set()
    result_rows: list[tuple] = []
    if dedup:
        for row in base_rows:
            key = _dedup_key(row)
            if key not in seen:
                seen.add(key)
                result_rows.append(row)
    else:
        result_rows = list(base_rows)

    if not references:
        step_names, step_columns = run_step(None)
        if len(step_names) != len(names):
            raise SQLExecutionError(
                f"UNION branches of CTE {name!r} return different column counts"
            )
        for row in rows_from_columns(step_names, step_columns):
            if dedup:
                key = _dedup_key(row)
                if key in seen:
                    continue
                seen.add(key)
            result_rows.append(row)
        return names, columns_from_rows(names, result_rows)

    frontier = list(result_rows) if dedup else list(base_rows)
    iteration = 0
    while frontier:
        iteration += 1
        if iteration > recursion_limit:
            raise SQLExecutionError(
                f"recursive CTE {name!r} exceeded the iteration limit ({recursion_limit}): "
                "the recursion does not converge — bound the recursive term "
                "or use UNION instead of UNION ALL"
            )
        frontier_table = Table(name, columns_from_rows(names, frontier))
        step_names, step_columns = run_step(frontier_table)
        if len(step_names) != len(names):
            raise SQLExecutionError(
                f"recursive CTE {name!r}: the recursive term returns "
                f"{len(step_names)} columns, expected {len(names)}"
            )
        new_rows = rows_from_columns(step_names, step_columns)
        if dedup:
            fresh = []
            for row in new_rows:
                key = _dedup_key(row)
                if key in seen:
                    continue
                seen.add(key)
                fresh.append(row)
            frontier = fresh
        else:
            frontier = new_rows
        result_rows.extend(frontier)
        if observe_iteration is not None:
            observe_iteration(iteration, len(frontier))
    return names, columns_from_rows(names, result_rows)


# ---------------------------------------------------------------------------
# Join machinery (shared by the interpreter and compiled plans)
# ---------------------------------------------------------------------------


def apply_filter(frame: Frame, length: int, predicate: Expression) -> tuple[Frame, int]:
    """Filter a frame by a predicate (used for optimizer-pushed scan filters)."""
    mask = ExpressionEvaluator(frame, length).evaluate(predicate).astype(bool)
    return {key: values[mask] for key, values in frame.items()}, int(mask.sum())


def join_indices(left_keys, right_keys) -> tuple[np.ndarray, np.ndarray]:
    """Row indices ``(left_idx, right_idx)`` of the inner equi-join of two key columns.

    Every key representation — int64 state indices (the hot path), floats,
    dictionary codes, plain object strings — is translated into a shared
    exact ``int64`` code space (:func:`join_key_codes`) and joined with one
    vectorized sort + ``searchsorted`` kernel; the old per-row dict-bucket
    fallback for object keys is gone (it also wrongly matched
    ``None == None``).  Matches are emitted in left-row order with ties in
    right-row order — the order a build-right/probe-left hash join produces.
    NULL keys never match, per SQL semantics.
    """
    left, right, left_valid, right_valid = join_key_codes(left_keys, right_keys)

    left_map = right_map = None
    if not left_valid.all():
        left_map = np.flatnonzero(left_valid)
        left = left[left_map]
    if not right_valid.all():
        right_map = np.flatnonzero(right_valid)
        right = right[right_map]

    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    lo = np.searchsorted(sorted_right, left, side="left")
    hi = np.searchsorted(sorted_right, left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(left.size, dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + within]
    if left_map is not None:
        left_idx = left_map[left_idx]
    if right_map is not None:
        right_idx = right_map[right_idx]
    return left_idx, right_idx


def split_join_condition(
    condition: Expression, left_frame: Frame, right_frame: Frame
) -> tuple[Expression, Expression]:
    """Split ``ON left = right`` so each side references exactly one input."""
    if not isinstance(condition, BinaryOp) or condition.operator != "=":
        raise SQLExecutionError("JOIN ... ON only supports a single equality condition")

    def references(expression: Expression, frame: Frame) -> bool:
        if isinstance(expression, ColumnRef):
            return expression.key() in frame or expression.name in frame
        if isinstance(expression, BinaryOp):
            return references(expression.left, frame) and references(expression.right, frame)
        if isinstance(expression, UnaryOp):
            return references(expression.operand, frame)
        if isinstance(expression, Literal):
            return True
        if isinstance(expression, FunctionCall):
            return all(references(argument, frame) for argument in expression.arguments)
        return False

    left_expr, right_expr = condition.left, condition.right
    if references(left_expr, left_frame) and references(right_expr, right_frame):
        return left_expr, right_expr
    if references(right_expr, left_frame) and references(left_expr, right_frame):
        return right_expr, left_expr
    raise SQLExecutionError("JOIN condition must compare one side per table")


def _evaluate_serial(frame: Frame, length: int, expression: Expression) -> np.ndarray:
    return ExpressionEvaluator(frame, length).evaluate(expression)


def _gather_serial(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    return values[indices]


def hash_join_frames(
    left_frame: Frame,
    left_length: int,
    right_frame: Frame,
    right_length: int,
    left_key_expr: Expression,
    right_key_expr: Expression,
    evaluate: "Callable[[Frame, int, Expression], np.ndarray] | None" = None,
    join: "Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]] | None" = None,
    gather: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None,
) -> tuple[Frame, int]:
    """Inner-join two frames on pre-split key expressions, merging their columns.

    ``evaluate`` / ``join`` / ``gather`` override the kernel strategies (the
    morsel-parallel path passes its pool-backed variants); the defaults are
    the serial kernels.  There is exactly one body for the column-merge
    discipline — ambiguous bare names, length-mismatch passthrough — so the
    serial and parallel joins can never diverge on it.
    """
    evaluate = evaluate or _evaluate_serial
    join = join or join_indices
    gather = gather or _gather_serial
    left_keys = evaluate(left_frame, left_length, left_key_expr)
    right_keys = evaluate(right_frame, right_length, right_key_expr)
    left_idx, right_idx = join(left_keys, right_keys)

    merged: Frame = {}
    for key, values in left_frame.items():
        merged[key] = gather(values, left_idx) if len(values) == left_length else values
    for key, values in right_frame.items():
        gathered = gather(values, right_idx) if len(values) == right_length else values
        if key in merged and "." not in key:
            # Ambiguous bare column name: keep only the qualified forms.
            del merged[key]
            continue
        merged[key] = gathered
    return merged, len(left_idx)


# ---------------------------------------------------------------------------
# Projection / post-processing stages (shared by interpreter and plans)
# ---------------------------------------------------------------------------


def select_has_aggregates(select: Select) -> bool:
    """True when the projection or HAVING clause contains an aggregate call."""
    return any(_contains_aggregate(item.expression) for item in select.items) or (
        select.having is not None and _contains_aggregate(select.having)
    )


def item_output_name(item: SelectItem, position: int) -> str:
    """The result-column name of one projection item."""
    if item.alias:
        return item.alias
    if isinstance(item.expression, ColumnRef):
        return item.expression.name
    return f"col{position}"


def plain_projection(
    items: Sequence[SelectItem],
    frame: Frame,
    length: int,
    evaluate: "Callable[[Expression], np.ndarray] | None" = None,
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Evaluate a non-aggregating projection (including ``*`` expansion).

    ``evaluate`` overrides the expression strategy (the morsel-parallel
    path passes its pool-backed evaluator); the ``*`` expansion and output
    naming have exactly one body either way.
    """
    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    if evaluate is None:
        evaluate = ExpressionEvaluator(frame, length).evaluate
    for position, item in enumerate(items):
        if isinstance(item.expression, Star):
            for key, values in frame.items():
                if "." in key:
                    binding, column = key.split(".", 1)
                    if item.expression.table and binding != item.expression.table:
                        continue
                    if column not in columns:
                        names.append(column)
                        columns[column] = values
            continue
        name = item_output_name(item, position)
        names.append(name)
        columns[name] = evaluate(item.expression)
    return names, columns


def _empty_aggregate_value(expression: Expression) -> np.ndarray:
    if isinstance(expression, FunctionCall) and expression.name == "count":
        return np.zeros(1, dtype=np.int64)
    return np.full(1, np.nan)


def grouped_projection(select: Select, frame: Frame, length: int) -> tuple[list[str], dict[str, np.ndarray]]:
    """Evaluate a GROUP BY / aggregate projection (including HAVING)."""
    evaluator = ExpressionEvaluator(frame, length)
    if select.group_by:
        # Group on exact int64 codes (ints pass through, floats via a
        # monotone bit transform, text via dictionary codes): grouping is
        # exact for wide int64 values, all NULL keys land in one group
        # (SQLite semantics), and group output order is still ascending key
        # order with NULLs first.
        code_columns = [
            encoded_codes(evaluator.evaluate(expression)) for expression in select.group_by
        ]
        if length:
            if len(code_columns) == 1:
                _unique, first_indices, inverse = np.unique(
                    code_columns[0], return_index=True, return_inverse=True
                )
            else:
                stacked = np.stack(code_columns, axis=1)
                _unique, first_indices, inverse = np.unique(
                    stacked, axis=0, return_index=True, return_inverse=True
                )
            inverse = inverse.ravel()
            num_groups = len(first_indices)
        else:
            first_indices = np.empty(0, dtype=np.int64)
            inverse = np.empty(0, dtype=np.int64)
            num_groups = 0
    else:
        # Aggregates without GROUP BY: everything is one group.
        num_groups = 1
        inverse = np.zeros(length, dtype=np.int64)
        first_indices = np.zeros(1, dtype=np.int64)

    grouped = GroupedEvaluator(frame, length, inverse, num_groups, first_indices)

    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    for position, item in enumerate(select.items):
        if isinstance(item.expression, Star):
            raise SQLExecutionError("'*' projection cannot be combined with GROUP BY / aggregates")
        name = item_output_name(item, position)
        names.append(name)
        if length == 0 and not select.group_by:
            # Aggregates over an empty input: COUNT -> 0, SUM/MIN/MAX -> NULL.
            columns[name] = _empty_aggregate_value(item.expression)
        else:
            columns[name] = grouped.evaluate(item.expression)

    if select.having is not None:
        having_values = grouped.evaluate(select.having).astype(bool)
        columns = {name: values[having_values] for name, values in columns.items()}
    return names, columns


#: Highest Unicode code point; the reverse-collation terminator.
_REVERSE_COLLATION_MAX = 0x10FFFF


def _reverse_collation(values: np.ndarray) -> np.ndarray:
    """Map strings to keys whose *ascending* order is the originals' DESC order.

    Each code point ``c`` maps to ``MAX - c`` — an injective, strictly
    order-reversing flip over the whole code space — and the NUL padding of
    numpy's fixed-width unicode layout maps to ``MAX`` itself, above every
    flipped real code point, so a string sorts *after* its own proper
    prefixes: exactly the descending total order SQLite's byte-wise
    collation produces (UTF-8 byte order equals code-point order).  Equal
    inputs map to equal keys, which keeps stable sorts stable and lets
    :func:`top_k_indices` partition on the transformed key directly — this
    is what makes the bounded top-k operator available to ``ORDER BY
    <text> DESC`` queries.

    The whole transform runs on the UCS-4 code-unit view (one vectorized
    pass, no per-character Python), so a multi-million-row DESC key costs a
    handful of array ops.  Strings containing literal NULs collapse with
    the padding (unreachable through the SQL layer).
    """
    text = np.ascontiguousarray(values.astype(str))
    if text.size == 0 or text.dtype.itemsize == 0:
        return text
    width = text.dtype.itemsize // 4
    codes = text.view(np.uint32).reshape(len(text), width)
    # MAX - 0 = MAX: the padding maps to the top value with no extra pass.
    flipped = np.uint32(_REVERSE_COLLATION_MAX) - codes
    return np.ascontiguousarray(flipped).view(f"<U{width}").reshape(len(text))


def _order_keys(
    columns: dict[str, np.ndarray],
    order_by: Sequence[OrderItem],
    length: int,
    order_frame: Frame | None = None,
) -> list[np.ndarray]:
    """The ``np.lexsort`` key stack for ORDER BY (last key = highest priority)."""
    output_frame: Frame = dict(order_frame) if order_frame else dict(columns)
    evaluator = ExpressionEvaluator(output_frame, length)
    keys: list[np.ndarray] = []
    for item in reversed(order_by):
        values = evaluator.evaluate(item.expression)
        # Exact int64 keys for every representation: NULLs sort first
        # ascending and last descending (SQLite), text sorts on dictionary
        # codes, and DESC is a plain negation — injective, so ties and
        # stability behave exactly like a sort on the values.
        keys.append(sort_keys(values, item.descending))
    return keys


def top_k_indices(keys: list[np.ndarray], k: int) -> np.ndarray:
    """Row indices of the ``k`` first rows under ``np.lexsort(keys)`` order.

    The bounded top-k pass behind LIMIT-below-ORDER-BY: partition the input
    around the k-th ranked *primary* key, keep only the rows that can still
    reach the ordered prefix (strictly-smaller primaries plus every tie at
    the cutoff — secondary keys decide among ties, so none may be dropped),
    and fully sort just those candidates.  Candidates are kept in input
    order and ``np.lexsort`` is stable, so the result is *exactly*
    ``np.lexsort(keys)[:k]`` — including tie resolution — at
    ``O(n + c log c)`` instead of ``O(n log n)``.
    """
    primary = keys[-1]
    total = len(primary)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= total:
        return np.lexsort(keys)
    cutoff = np.partition(primary, k - 1)[k - 1]
    if primary.dtype.kind == "f" and np.isnan(cutoff):
        # The prefix reaches into the NaN tail (NaN sorts last): every row
        # is still a candidate, so this degrades to a full sort.
        candidates = np.arange(total, dtype=np.int64)
    else:
        candidates = np.flatnonzero(primary <= cutoff)
    order = np.lexsort([key[candidates] for key in keys])[:k]
    return candidates[order]


def order_columns(
    columns: dict[str, np.ndarray],
    names: list[str],
    order_by: Sequence[OrderItem],
    length: int,
    order_frame: Frame | None = None,
    prefix: int | None = None,
) -> dict[str, np.ndarray]:
    """Sort result columns by the ORDER BY keys (last key has lowest priority).

    ``prefix`` (the top-k fast path) keeps only the first ``prefix`` rows of
    the sorted order, computed with a partition-based selection instead of a
    full sort; the kept rows and their order are identical to a full sort.
    """
    keys = _order_keys(columns, order_by, length, order_frame)
    if prefix is not None and prefix < length:
        order = top_k_indices(keys, prefix)
    else:
        order = np.lexsort(keys)
    return {name: columns[name][order] for name in names}


#: Runtime fallback threshold: with no compiled decision, the ordered-prefix
#: partition pass is used once the input is this many times larger than k.
_TOPK_RUNTIME_FACTOR = 4


def limit_bounds(select: Select) -> tuple[int, int | None]:
    """``(start, stop)`` slice bounds of LIMIT/OFFSET under SQLite semantics.

    A negative LIMIT means "no limit" (stop = None); a negative OFFSET is
    treated as 0; an OFFSET beyond the row count yields an empty result via
    ordinary slicing.
    """
    start = select.offset if select.offset is not None and select.offset > 0 else 0
    if select.limit is None or select.limit < 0:
        return start, None
    return start, start + select.limit


def postprocess_select(
    select: Select,
    names: list[str],
    columns: dict[str, np.ndarray],
    frame: Frame | None,
    length: int,
    has_aggregates: bool,
    use_topk: bool | None = None,
    observe: "Callable[[int], None] | None" = None,
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Apply the shared SELECT tail: HAVING validation, DISTINCT, ORDER BY, LIMIT.

    ``use_topk`` carries the compiled plan's costed top-k decision (push the
    LIMIT+OFFSET prefix below ORDER BY via a bounded selection); ``None``
    (the interpreter) decides at runtime from the actual row count.  Both
    strategies produce identical rows — top-k reproduces the stable full
    sort exactly — so the choice is purely a matter of cost.

    ``observe`` (adaptive feedback / EXPLAIN ANALYZE) receives the block's
    *pre-limit* row count — the cardinality the optimizer's pre-limit
    estimate predicts, which the LIMIT would otherwise mask.
    """
    result_length = len(next(iter(columns.values()))) if columns else 0

    if select.having is not None and not (select.group_by or has_aggregates):
        raise SQLExecutionError("HAVING requires GROUP BY or aggregates")

    if select.distinct and result_length:
        # DISTINCT on exact int64 codes: NULLs compare equal (SQLite), wide
        # int64 values never collide, text dedups on dictionary codes.
        stacked = np.stack([encoded_codes(columns[name]) for name in names], axis=1)
        _unique, indices = np.unique(stacked, axis=0, return_index=True)
        keep = np.sort(indices)
        columns = {name: columns[name][keep] for name in names}
        result_length = len(keep)

    if observe is not None:
        observe(result_length)

    start, stop = limit_bounds(select)

    if select.order_by and result_length:
        # ORDER BY may reference source columns (SQLite semantics) as long as
        # the output rows are still aligned 1:1 with the input rows.
        aligned = (
            frame is not None
            and not (select.group_by or has_aggregates or select.distinct)
            and result_length == length
        )
        order_frame: Frame = dict(frame) if aligned else {}
        order_frame.update(columns)
        prefix = None
        if stop is not None and stop < result_length:
            if use_topk or (
                use_topk is None and result_length >= _TOPK_RUNTIME_FACTOR * max(stop, 1)
            ):
                prefix = stop
        columns = order_columns(
            columns, names, select.order_by, result_length, order_frame, prefix=prefix
        )

    if select.limit is not None or start:
        columns = {name: values[start:stop] for name, values in columns.items()}

    return names, columns


# ---------------------------------------------------------------------------
# SELECT execution
# ---------------------------------------------------------------------------


class QueryResult:
    """Column names plus materialized rows returned by the engine."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: list[str], rows: list[tuple], rowcount: int | None = None) -> None:
        self.columns = columns
        self.rows = rows
        self.rowcount = len(rows) if rowcount is None else rowcount

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class SelectExecutor:
    """Executes SELECT / WITH-SELECT statements against a table catalog."""

    def __init__(
        self, catalog: Mapping[str, Table], recursion_limit: int = DEFAULT_RECURSION_LIMIT
    ) -> None:
        self._catalog = catalog
        self._recursion_limit = recursion_limit

    # ------------------------------------------------------------- plumbing

    def _resolve(self, name: str, ctes: Mapping[str, Table]) -> Table:
        if name in ctes:
            return ctes[name]
        if name in self._catalog:
            return self._catalog[name]
        raise SQLExecutionError(f"no such table: {name}")

    def execute(self, statement: Select | WithSelect) -> tuple[list[str], dict[str, np.ndarray]]:
        """Run a query; returns (column names, column arrays)."""
        if isinstance(statement, WithSelect):
            ctes: dict[str, Table] = {}
            for cte in statement.ctes:
                if isinstance(cte.query, CompoundSelect):
                    names, columns = run_compound_cte(
                        cte.name,
                        cte.query,
                        statement.recursive,
                        cte.columns,
                        run_base=lambda q=cte.query.left, bound=dict(ctes): self._execute_select(
                            q, bound
                        ),
                        run_step=lambda frontier, q=cte.query.right, n=cte.name, bound=dict(
                            ctes
                        ): self._execute_select(
                            q, {**bound, n: frontier} if frontier is not None else bound
                        ),
                        recursion_limit=self._recursion_limit,
                    )
                else:
                    names, columns = self._execute_select(cte.query, ctes)
                    if cte.columns:
                        if len(cte.columns) != len(names):
                            raise SQLExecutionError(
                                f"CTE {cte.name!r} declares {len(cte.columns)} columns "
                                f"but its query returns {len(names)}"
                            )
                        columns = {
                            alias: columns[name] for alias, name in zip(cte.columns, names)
                        }
                        names = list(cte.columns)
                ctes[cte.name] = Table(cte.name, {name: columns[name] for name in names})
            return self._execute_select(statement.query, ctes)
        return self._execute_select(statement, {})

    # -------------------------------------------------------------- pipeline

    def _execute_select(self, select: Select, ctes: Mapping[str, Table]) -> tuple[list[str], dict[str, np.ndarray]]:
        frame, length = self._build_frame(select, ctes)

        if select.where is not None:
            mask = ExpressionEvaluator(frame, length).evaluate(select.where).astype(bool)
            frame = {key: values[mask] for key, values in frame.items()}
            length = int(mask.sum())

        has_aggregates = select_has_aggregates(select)
        has_windows = validate_window_usage(select, has_aggregates)

        if select.group_by or has_aggregates:
            names, columns = grouped_projection(select, frame, length)
        elif has_windows:
            names, columns, frame = windowed_projection(select, frame, length)
        else:
            names, columns = plain_projection(select.items, frame, length)

        return postprocess_select(select, names, columns, frame, length, has_aggregates)

    def _build_frame(self, select: Select, ctes: Mapping[str, Table]) -> tuple[Frame, int]:
        if select.source is None:
            # SELECT without FROM: a single synthetic row.
            return {}, 1
        base_table = self._resolve(select.source.name, ctes)
        frame = base_table.frame(select.source.binding)
        length = base_table.num_rows
        if select.source.filter is not None:
            frame, length = apply_filter(frame, length, select.source.filter)

        for join in select.joins:
            if join.kind != "inner":
                raise SQLExecutionError(f"{join.kind.upper()} JOIN is not supported by the embedded engine")
            right_table = self._resolve(join.source.name, ctes)
            right_frame = right_table.frame(join.source.binding)
            right_length = right_table.num_rows
            if join.source.filter is not None:
                right_frame, right_length = apply_filter(right_frame, right_length, join.source.filter)
            left_key, right_key = split_join_condition(join.condition, frame, right_frame)
            frame, length = hash_join_frames(
                frame, length, right_frame, right_length, left_key, right_key
            )
        return frame, length
