"""Vectorized query executor for the embedded columnar engine.

The executor evaluates parsed statements against :class:`~.table.Table`
objects.  SELECT execution follows the textbook pipeline — FROM, JOIN
(vectorized hash join), WHERE, GROUP BY (vectorized hash aggregation via
``np.unique``), HAVING, projection, DISTINCT, ORDER BY, LIMIT — operating on
whole numpy columns throughout, which is the "columnar, vectorized execution"
behaviour the engine substitutes for DuckDB.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ...errors import SQLExecutionError
from .ast_nodes import (
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    UnaryOp,
    WithSelect,
)
from .column import (
    DictArray,
    compare_values,
    encoded_codes,
    join_key_codes,
    null_mask,
    sort_keys,
    text_codes,
)
from .parser import AGGREGATE_FUNCTIONS
from .table import Table

#: Compute frames map column keys to plain numpy vectors or dictionary-
#: encoded text vectors (:class:`DictArray`); every kernel below accepts
#: both.
Frame = dict[str, np.ndarray]


def _sql_round(values: np.ndarray, decimals: int = 0) -> np.ndarray:
    """SQL ROUND: half-away-from-zero (SQLite/DuckDB), not numpy's banker's rounding.

    Negative ``decimals`` rounds to tens/hundreds like DuckDB; SQLite instead
    clamps a negative digit count to 0 (the engines disagree with each other).
    """
    scale = 10.0 ** decimals
    scaled = np.asarray(values, dtype=np.float64) * scale
    return np.trunc(scaled + np.copysign(0.5, scaled)) / scale


#: Scalar functions available in expressions.
#: ``log`` is base-10 to match SQLite/DuckDB (natural log is ``ln``).
_SCALAR_FUNCTIONS = {
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "ceiling": np.ceil,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log10,
    "log10": np.log10,
    "log2": np.log2,
    "sin": np.sin,
    "cos": np.cos,
    "round": None,  # handled specially (one or two arguments)
    "power": None,  # handled specially (two arguments)
    "pow": None,
    "coalesce": None,
    "min2": None,
    "max2": None,
}


def _frame_length(frame: Frame) -> int:
    for values in frame.values():
        return int(len(values))
    return 0


def _broadcast(value, length: int) -> np.ndarray:
    if isinstance(value, DictArray) and len(value) == length:
        return value
    if isinstance(value, np.ndarray) and value.ndim == 1 and len(value) == length:
        return value
    return np.full(length, value)


def _text_operand(values) -> tuple[np.ndarray, np.ndarray]:
    """``(str_array, valid)`` view of a ``||`` operand.

    Invalid (NULL) slots carry ``""`` in the string array; the caller
    propagates NULL through the concatenation via the validity mask.
    """
    if isinstance(values, DictArray):
        valid = ~values.is_null()
        if len(values.dictionary):
            text = values.dictionary[np.where(values.codes >= 0, values.codes, 0)]
            if not valid.all():
                text = text.copy()
                text[~valid] = ""
        else:
            text = np.full(len(values), "", dtype="<U1")
        return text, valid
    array = np.asarray(values)
    valid = ~null_mask(array)
    if array.dtype == object:
        filled = array.copy()
        filled[~valid] = ""
        return filled.astype(str), valid
    if array.dtype.kind == "f" and not valid.all():
        filled = array.astype(object)
        filled[~valid] = ""
        return filled.astype(str), valid
    return array.astype(str), valid


def _concat_strings(left, right) -> np.ndarray:
    """SQL ``||``: string concatenation with NULL propagation."""
    left_text, left_valid = _text_operand(left)
    right_text, right_valid = _text_operand(right)
    joined = np.char.add(left_text, right_text)
    valid = left_valid & right_valid
    if valid.all():
        return joined
    result = joined.astype(object)
    result[~valid] = None
    return result


class ExpressionEvaluator:
    """Evaluates scalar (non-aggregate) expressions over a column frame."""

    def __init__(self, frame: Frame, length: int) -> None:
        self._frame = frame
        self._length = length

    def evaluate(self, expression: Expression) -> np.ndarray:
        """Evaluate ``expression`` to a column of ``length`` values."""
        result = self._eval(expression)
        return _broadcast(result, self._length)

    # ------------------------------------------------------------ dispatch

    def _eval(self, expression: Expression):
        if isinstance(expression, Literal):
            return self._literal(expression.value)
        if isinstance(expression, ColumnRef):
            return self._column(expression)
        if isinstance(expression, UnaryOp):
            return self._unary(expression)
        if isinstance(expression, BinaryOp):
            return self._binary(expression)
        if isinstance(expression, FunctionCall):
            return self._function(expression)
        if isinstance(expression, CaseExpression):
            return self._case(expression)
        if isinstance(expression, IsNull):
            operand = self.evaluate(expression.operand)
            nulls = null_mask(operand)
            return ~nulls if expression.negated else nulls
        if isinstance(expression, InList):
            operand = self.evaluate(expression.operand)
            mask = np.zeros(self._length, dtype=bool)
            for value in expression.values:
                mask |= compare_values("=", operand, self.evaluate(value))
            if expression.negated:
                # NULL NOT IN (...) is unknown, never true: a NULL operand
                # must not pass the negated filter either.
                return ~mask & ~null_mask(operand)
            return mask
        if isinstance(expression, Star):
            raise SQLExecutionError("'*' is only allowed as a projection or inside COUNT(*)")
        raise SQLExecutionError(f"unsupported expression node {type(expression).__name__}")

    def _literal(self, value):
        if value is None:
            return np.full(self._length, np.nan)
        return value

    def _column(self, ref: ColumnRef) -> np.ndarray:
        key = ref.key()
        if key in self._frame:
            return self._frame[key]
        if ref.table is None and ref.name in self._frame:
            return self._frame[ref.name]
        available = sorted(k for k in self._frame if "." not in k)
        raise SQLExecutionError(f"unknown column {key!r}; available columns: {available}")

    def _unary(self, node: UnaryOp):
        operand = self.evaluate(node.operand)
        if node.operator == "-":
            return -operand
        if node.operator == "+":
            return operand
        if node.operator == "~":
            return ~operand.astype(np.int64)
        if node.operator == "not":
            return ~operand.astype(bool)
        raise SQLExecutionError(f"unsupported unary operator {node.operator!r}")

    def _binary(self, node: BinaryOp):
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        operator = node.operator
        if operator in ("&", "|", "<<", ">>"):
            left_int = left.astype(np.int64)
            right_int = right.astype(np.int64)
            if operator == "&":
                return left_int & right_int
            if operator == "|":
                return left_int | right_int
            if operator == "<<":
                return left_int << right_int
            return left_int >> right_int
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            # SQL semantics: integer / integer stays integral and truncates
            # toward zero (SQLite/DuckDB), unlike Python's floor division;
            # a zero divisor yields NULL (NaN), not an error.
            if left.dtype.kind in "iu" and right.dtype.kind in "iu":
                zero = right == 0
                divisor = np.where(zero, 1, right)
                with np.errstate(divide="ignore"):
                    quotient = left // divisor
                    remainder = left - quotient * divisor
                # Floor division rounded away from zero on sign mismatch: bump
                # back toward zero to get truncation.
                truncated = quotient + ((remainder != 0) & ((left < 0) != (divisor < 0)))
                if zero.any():
                    return np.where(zero, np.nan, truncated.astype(np.float64))
                return truncated
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(right == 0, np.nan, left / np.where(right == 0, 1, right))
        if operator == "%":
            # SQL modulo truncates toward zero (sign of the dividend), unlike
            # Python's floored modulo: -7 % 3 is -1 in SQLite, 2 in Python.
            # Float operands keep fmod semantics like DuckDB (2.5 % 2 = 0.5);
            # SQLite instead casts both sides to INTEGER first.  A zero
            # divisor yields NULL (NaN) like both engines.
            zero = right == 0
            with np.errstate(invalid="ignore", divide="ignore"):
                remainder = np.fmod(left, np.where(zero, 1, right))
            if zero.any():
                return np.where(zero, np.nan, remainder.astype(np.float64))
            return remainder
        if operator in ("=", "!=", "<", "<=", ">", ">="):
            # One comparison kernel for every representation (numeric,
            # object, dictionary codes) with SQL's three-valued logic
            # collapsed to filter semantics: NULL on either side is False.
            return compare_values(operator, left, right)
        if operator == "and":
            return left.astype(bool) & right.astype(bool)
        if operator == "or":
            return left.astype(bool) | right.astype(bool)
        if operator == "||":
            return _concat_strings(left, right)
        raise SQLExecutionError(f"unsupported binary operator {operator!r}")

    def _function(self, node: FunctionCall):
        name = node.name
        if name in AGGREGATE_FUNCTIONS:
            raise SQLExecutionError(
                f"aggregate {name.upper()}() used outside of an aggregating SELECT"
            )
        if name in ("power", "pow"):
            if len(node.arguments) != 2:
                raise SQLExecutionError(f"{name}() takes two arguments")
            return np.power(self.evaluate(node.arguments[0]), self.evaluate(node.arguments[1]))
        if name == "round":
            if len(node.arguments) not in (1, 2):
                raise SQLExecutionError("round() takes one or two arguments")
            values = self.evaluate(node.arguments[0])
            decimals = 0
            if len(node.arguments) == 2:
                digits = node.arguments[1]
                sign = 1
                if isinstance(digits, UnaryOp) and digits.operator in ("-", "+"):
                    sign = -1 if digits.operator == "-" else 1
                    digits = digits.operand
                if not isinstance(digits, Literal) or not isinstance(digits.value, (int, float)):
                    raise SQLExecutionError("round() requires a literal number of digits")
                decimals = sign * int(digits.value)
            return _sql_round(values, decimals)
        if name == "coalesce":
            if not node.arguments:
                raise SQLExecutionError("coalesce() needs at least one argument")
            operands = [self.evaluate(argument) for argument in node.arguments]
            if any(
                isinstance(operand, DictArray) or operand.dtype.kind in ("O", "U")
                for operand in operands
            ):
                # Text-capable path: fill NULL slots left to right.
                result = np.array(np.asarray(operands[0], dtype=object), dtype=object)
                missing = null_mask(result)
                for candidate in operands[1:]:
                    if not missing.any():
                        break
                    candidate = np.asarray(candidate, dtype=object)
                    result[missing] = candidate[missing]
                    missing = null_mask(result)
                return result
            result = operands[0].astype(float)
            for candidate in operands[1:]:
                result = np.where(np.isnan(result), candidate, result)
            return result
        if name in _SCALAR_FUNCTIONS and _SCALAR_FUNCTIONS[name] is not None:
            if len(node.arguments) != 1:
                raise SQLExecutionError(f"{name}() takes exactly one argument")
            return _SCALAR_FUNCTIONS[name](self.evaluate(node.arguments[0]))
        raise SQLExecutionError(f"unknown function {name!r}")

    def _case(self, node: CaseExpression):
        result = None
        decided = np.zeros(self._length, dtype=bool)
        for condition, branch in zip(node.conditions, node.results):
            mask = self.evaluate(condition).astype(bool) & ~decided
            value = self.evaluate(branch)
            if result is None:
                result = np.where(mask, value, np.nan)
            else:
                result = np.where(mask, value, result)
            decided |= mask
        default = self.evaluate(node.default) if node.default is not None else np.full(self._length, np.nan)
        result = np.where(decided, result, default)
        return result


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def contains_aggregate(expression: Expression) -> bool:
    """True when the expression calls an aggregate function anywhere.

    The single aggregate detector shared by the executor, the planner's
    analysis and the optimizer's rewrite rules — keeping one traversal means
    the optimizer can never classify an expression differently than the
    engine that executes it.
    """
    return _contains_aggregate(expression)


def column_refs(expression: Expression) -> list[ColumnRef]:
    """Every column reference in an expression tree, in visit order.

    The single reference collector shared by the planner's join-side
    analysis and the optimizer's rewrite rules: a new expression node type
    added here is seen by both, so the optimizer can never miss references
    the planner resolves (or vice versa).
    """
    refs: list[ColumnRef] = []

    def visit(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, BinaryOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, FunctionCall):
            for argument in node.arguments:
                visit(argument)
        elif isinstance(node, CaseExpression):
            for child in node.conditions + node.results:
                visit(child)
            if node.default is not None:
                visit(node.default)
        elif isinstance(node, (IsNull, InList)):
            visit(node.operand)
            if isinstance(node, InList):
                for value in node.values:
                    visit(value)

    visit(expression)
    return refs


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, FunctionCall):
        if expression.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(argument) for argument in expression.arguments)
    if isinstance(expression, BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, CaseExpression):
        children = list(expression.conditions) + list(expression.results)
        if expression.default is not None:
            children.append(expression.default)
        return any(_contains_aggregate(child) for child in children)
    if isinstance(expression, (IsNull, InList)):
        return _contains_aggregate(expression.operand)
    return False


class GroupedEvaluator:
    """Evaluates expressions (possibly containing aggregates) per group."""

    def __init__(
        self,
        frame: Frame,
        length: int,
        inverse: np.ndarray,
        num_groups: int,
        first_indices: np.ndarray,
    ) -> None:
        self._scalar = ExpressionEvaluator(frame, length)
        self._length = length
        self._inverse = inverse
        self._num_groups = num_groups
        self._first_indices = first_indices

    def evaluate(self, expression: Expression) -> np.ndarray:
        """Evaluate ``expression`` to one value per group."""
        result = self._eval(expression)
        return _broadcast(result, self._num_groups)

    def _eval(self, expression: Expression):
        if isinstance(expression, FunctionCall) and expression.name in AGGREGATE_FUNCTIONS:
            return self._aggregate(expression)
        if isinstance(expression, BinaryOp):
            left = self.evaluate(expression.left)
            right = self.evaluate(expression.right)
            surrogate = BinaryOp(expression.operator, Literal(0), Literal(0))
            return self._combine_binary(surrogate.operator, left, right)
        if isinstance(expression, UnaryOp):
            operand = self.evaluate(expression.operand)
            if expression.operator == "-":
                return -operand
            if expression.operator == "+":
                return operand
            if expression.operator == "~":
                return ~operand.astype(np.int64)
            if expression.operator == "not":
                return ~operand.astype(bool)
            raise SQLExecutionError(f"unsupported unary operator {expression.operator!r}")
        # No aggregate inside: evaluate on the full frame and take each group's
        # first row (legal because grouped non-aggregate expressions must be
        # functions of the grouping key in the supported SQL subset).
        full = self._scalar.evaluate(expression)
        return full[self._first_indices]

    def _combine_binary(self, operator: str, left: np.ndarray, right: np.ndarray):
        evaluator = ExpressionEvaluator({"__left": left, "__right": right}, self._num_groups)
        surrogate = BinaryOp(operator, ColumnRef("__left"), ColumnRef("__right"))
        return evaluator.evaluate(surrogate)

    def _aggregate(self, call: FunctionCall) -> np.ndarray:
        name = call.name
        if call.is_star or not call.arguments:
            if name != "count":
                raise SQLExecutionError(f"{name.upper()}(*) is not a valid aggregate")
            return np.bincount(self._inverse, minlength=self._num_groups).astype(np.int64)

        raw = self._scalar.evaluate(call.arguments[0])
        is_text = isinstance(raw, DictArray) or raw.dtype.kind in ("O", "U")
        # SQL aggregates skip NULLs: COUNT(col) counts non-NULL rows,
        # SUM/AVG/MIN/MAX reduce the valid rows only, and an all-NULL group
        # yields NULL (COUNT yields 0).
        mask = ~null_mask(raw)
        if call.distinct:
            # Deduplicate (group, value) pairs — on *exact* integer codes,
            # so wide int64 values and NULLs dedup correctly — before
            # aggregating.
            keys = np.stack([self._inverse, encoded_codes(raw)], axis=1)
            _unique, unique_indices = np.unique(keys, axis=0, return_index=True)
            distinct_mask = np.zeros(self._length, dtype=bool)
            distinct_mask[unique_indices] = True
            mask &= distinct_mask

        inverse = self._inverse[mask]
        counts = np.bincount(inverse, minlength=self._num_groups)
        if name == "count":
            return counts.astype(np.int64)

        if is_text:
            if name not in ("min", "max"):
                raise SQLExecutionError(f"{name.upper()}() is not defined on text columns")
            return self._reduce_text_minmax(name, raw, mask, inverse, counts)

        values = raw.astype(np.float64)[mask]
        if name in ("sum", "total"):
            sums = np.bincount(inverse, weights=values, minlength=self._num_groups)
            if name == "sum":
                sums = np.where(counts == 0, np.nan, sums)
            return sums
        if name == "avg":
            sums = np.bincount(inverse, weights=values, minlength=self._num_groups)
            return np.where(counts == 0, np.nan, sums / np.maximum(counts, 1))
        if name in ("min", "max"):
            result = np.full(self._num_groups, np.nan)
            if len(values):
                order = np.argsort(inverse, kind="stable")
                sorted_inverse = inverse[order]
                sorted_values = values[order]
                boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
                reducer = np.minimum if name == "min" else np.maximum
                reduced = reducer.reduceat(sorted_values, boundaries)
                result[sorted_inverse[boundaries]] = reduced
            return result
        raise SQLExecutionError(f"unsupported aggregate {name!r}")

    def _reduce_text_minmax(
        self,
        name: str,
        raw,
        mask: np.ndarray,
        inverse: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """MIN/MAX over a text column: reduce the integer codes, decode once."""
        all_codes, vocabulary = text_codes(raw)
        codes = all_codes[mask]
        result = np.empty(self._num_groups, dtype=object)
        result[:] = None
        if len(codes):
            order = np.argsort(inverse, kind="stable")
            sorted_inverse = inverse[order]
            sorted_codes = codes[order]
            boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
            reducer = np.minimum if name == "min" else np.maximum
            reduced = reducer.reduceat(sorted_codes, boundaries)
            groups = sorted_inverse[boundaries]
            decoded = vocabulary[reduced]
            for group, value in zip(groups.tolist(), decoded.tolist()):
                result[group] = value
        return result


# ---------------------------------------------------------------------------
# Join machinery (shared by the interpreter and compiled plans)
# ---------------------------------------------------------------------------


def apply_filter(frame: Frame, length: int, predicate: Expression) -> tuple[Frame, int]:
    """Filter a frame by a predicate (used for optimizer-pushed scan filters)."""
    mask = ExpressionEvaluator(frame, length).evaluate(predicate).astype(bool)
    return {key: values[mask] for key, values in frame.items()}, int(mask.sum())


def join_indices(left_keys, right_keys) -> tuple[np.ndarray, np.ndarray]:
    """Row indices ``(left_idx, right_idx)`` of the inner equi-join of two key columns.

    Every key representation — int64 state indices (the hot path), floats,
    dictionary codes, plain object strings — is translated into a shared
    exact ``int64`` code space (:func:`join_key_codes`) and joined with one
    vectorized sort + ``searchsorted`` kernel; the old per-row dict-bucket
    fallback for object keys is gone (it also wrongly matched
    ``None == None``).  Matches are emitted in left-row order with ties in
    right-row order — the order a build-right/probe-left hash join produces.
    NULL keys never match, per SQL semantics.
    """
    left, right, left_valid, right_valid = join_key_codes(left_keys, right_keys)

    left_map = right_map = None
    if not left_valid.all():
        left_map = np.flatnonzero(left_valid)
        left = left[left_map]
    if not right_valid.all():
        right_map = np.flatnonzero(right_valid)
        right = right[right_map]

    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    lo = np.searchsorted(sorted_right, left, side="left")
    hi = np.searchsorted(sorted_right, left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(left.size, dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + within]
    if left_map is not None:
        left_idx = left_map[left_idx]
    if right_map is not None:
        right_idx = right_map[right_idx]
    return left_idx, right_idx


def split_join_condition(
    condition: Expression, left_frame: Frame, right_frame: Frame
) -> tuple[Expression, Expression]:
    """Split ``ON left = right`` so each side references exactly one input."""
    if not isinstance(condition, BinaryOp) or condition.operator != "=":
        raise SQLExecutionError("JOIN ... ON only supports a single equality condition")

    def references(expression: Expression, frame: Frame) -> bool:
        if isinstance(expression, ColumnRef):
            return expression.key() in frame or expression.name in frame
        if isinstance(expression, BinaryOp):
            return references(expression.left, frame) and references(expression.right, frame)
        if isinstance(expression, UnaryOp):
            return references(expression.operand, frame)
        if isinstance(expression, Literal):
            return True
        if isinstance(expression, FunctionCall):
            return all(references(argument, frame) for argument in expression.arguments)
        return False

    left_expr, right_expr = condition.left, condition.right
    if references(left_expr, left_frame) and references(right_expr, right_frame):
        return left_expr, right_expr
    if references(right_expr, left_frame) and references(left_expr, right_frame):
        return right_expr, left_expr
    raise SQLExecutionError("JOIN condition must compare one side per table")


def _evaluate_serial(frame: Frame, length: int, expression: Expression) -> np.ndarray:
    return ExpressionEvaluator(frame, length).evaluate(expression)


def _gather_serial(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    return values[indices]


def hash_join_frames(
    left_frame: Frame,
    left_length: int,
    right_frame: Frame,
    right_length: int,
    left_key_expr: Expression,
    right_key_expr: Expression,
    evaluate: "Callable[[Frame, int, Expression], np.ndarray] | None" = None,
    join: "Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]] | None" = None,
    gather: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None,
) -> tuple[Frame, int]:
    """Inner-join two frames on pre-split key expressions, merging their columns.

    ``evaluate`` / ``join`` / ``gather`` override the kernel strategies (the
    morsel-parallel path passes its pool-backed variants); the defaults are
    the serial kernels.  There is exactly one body for the column-merge
    discipline — ambiguous bare names, length-mismatch passthrough — so the
    serial and parallel joins can never diverge on it.
    """
    evaluate = evaluate or _evaluate_serial
    join = join or join_indices
    gather = gather or _gather_serial
    left_keys = evaluate(left_frame, left_length, left_key_expr)
    right_keys = evaluate(right_frame, right_length, right_key_expr)
    left_idx, right_idx = join(left_keys, right_keys)

    merged: Frame = {}
    for key, values in left_frame.items():
        merged[key] = gather(values, left_idx) if len(values) == left_length else values
    for key, values in right_frame.items():
        gathered = gather(values, right_idx) if len(values) == right_length else values
        if key in merged and "." not in key:
            # Ambiguous bare column name: keep only the qualified forms.
            del merged[key]
            continue
        merged[key] = gathered
    return merged, len(left_idx)


# ---------------------------------------------------------------------------
# Projection / post-processing stages (shared by interpreter and plans)
# ---------------------------------------------------------------------------


def select_has_aggregates(select: Select) -> bool:
    """True when the projection or HAVING clause contains an aggregate call."""
    return any(_contains_aggregate(item.expression) for item in select.items) or (
        select.having is not None and _contains_aggregate(select.having)
    )


def item_output_name(item: SelectItem, position: int) -> str:
    """The result-column name of one projection item."""
    if item.alias:
        return item.alias
    if isinstance(item.expression, ColumnRef):
        return item.expression.name
    return f"col{position}"


def plain_projection(
    items: Sequence[SelectItem],
    frame: Frame,
    length: int,
    evaluate: "Callable[[Expression], np.ndarray] | None" = None,
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Evaluate a non-aggregating projection (including ``*`` expansion).

    ``evaluate`` overrides the expression strategy (the morsel-parallel
    path passes its pool-backed evaluator); the ``*`` expansion and output
    naming have exactly one body either way.
    """
    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    if evaluate is None:
        evaluate = ExpressionEvaluator(frame, length).evaluate
    for position, item in enumerate(items):
        if isinstance(item.expression, Star):
            for key, values in frame.items():
                if "." in key:
                    binding, column = key.split(".", 1)
                    if item.expression.table and binding != item.expression.table:
                        continue
                    if column not in columns:
                        names.append(column)
                        columns[column] = values
            continue
        name = item_output_name(item, position)
        names.append(name)
        columns[name] = evaluate(item.expression)
    return names, columns


def _empty_aggregate_value(expression: Expression) -> np.ndarray:
    if isinstance(expression, FunctionCall) and expression.name == "count":
        return np.zeros(1, dtype=np.int64)
    return np.full(1, np.nan)


def grouped_projection(select: Select, frame: Frame, length: int) -> tuple[list[str], dict[str, np.ndarray]]:
    """Evaluate a GROUP BY / aggregate projection (including HAVING)."""
    evaluator = ExpressionEvaluator(frame, length)
    if select.group_by:
        # Group on exact int64 codes (ints pass through, floats via a
        # monotone bit transform, text via dictionary codes): grouping is
        # exact for wide int64 values, all NULL keys land in one group
        # (SQLite semantics), and group output order is still ascending key
        # order with NULLs first.
        code_columns = [
            encoded_codes(evaluator.evaluate(expression)) for expression in select.group_by
        ]
        if length:
            if len(code_columns) == 1:
                _unique, first_indices, inverse = np.unique(
                    code_columns[0], return_index=True, return_inverse=True
                )
            else:
                stacked = np.stack(code_columns, axis=1)
                _unique, first_indices, inverse = np.unique(
                    stacked, axis=0, return_index=True, return_inverse=True
                )
            inverse = inverse.ravel()
            num_groups = len(first_indices)
        else:
            first_indices = np.empty(0, dtype=np.int64)
            inverse = np.empty(0, dtype=np.int64)
            num_groups = 0
    else:
        # Aggregates without GROUP BY: everything is one group.
        num_groups = 1
        inverse = np.zeros(length, dtype=np.int64)
        first_indices = np.zeros(1, dtype=np.int64)

    grouped = GroupedEvaluator(frame, length, inverse, num_groups, first_indices)

    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    for position, item in enumerate(select.items):
        if isinstance(item.expression, Star):
            raise SQLExecutionError("'*' projection cannot be combined with GROUP BY / aggregates")
        name = item_output_name(item, position)
        names.append(name)
        if length == 0 and not select.group_by:
            # Aggregates over an empty input: COUNT -> 0, SUM/MIN/MAX -> NULL.
            columns[name] = _empty_aggregate_value(item.expression)
        else:
            columns[name] = grouped.evaluate(item.expression)

    if select.having is not None:
        having_values = grouped.evaluate(select.having).astype(bool)
        columns = {name: values[having_values] for name, values in columns.items()}
    return names, columns


#: Highest Unicode code point; the reverse-collation terminator.
_REVERSE_COLLATION_MAX = 0x10FFFF


def _reverse_collation(values: np.ndarray) -> np.ndarray:
    """Map strings to keys whose *ascending* order is the originals' DESC order.

    Each code point ``c`` maps to ``MAX - c`` — an injective, strictly
    order-reversing flip over the whole code space — and the NUL padding of
    numpy's fixed-width unicode layout maps to ``MAX`` itself, above every
    flipped real code point, so a string sorts *after* its own proper
    prefixes: exactly the descending total order SQLite's byte-wise
    collation produces (UTF-8 byte order equals code-point order).  Equal
    inputs map to equal keys, which keeps stable sorts stable and lets
    :func:`top_k_indices` partition on the transformed key directly — this
    is what makes the bounded top-k operator available to ``ORDER BY
    <text> DESC`` queries.

    The whole transform runs on the UCS-4 code-unit view (one vectorized
    pass, no per-character Python), so a multi-million-row DESC key costs a
    handful of array ops.  Strings containing literal NULs collapse with
    the padding (unreachable through the SQL layer).
    """
    text = np.ascontiguousarray(values.astype(str))
    if text.size == 0 or text.dtype.itemsize == 0:
        return text
    width = text.dtype.itemsize // 4
    codes = text.view(np.uint32).reshape(len(text), width)
    # MAX - 0 = MAX: the padding maps to the top value with no extra pass.
    flipped = np.uint32(_REVERSE_COLLATION_MAX) - codes
    return np.ascontiguousarray(flipped).view(f"<U{width}").reshape(len(text))


def _order_keys(
    columns: dict[str, np.ndarray],
    order_by: Sequence[OrderItem],
    length: int,
    order_frame: Frame | None = None,
) -> list[np.ndarray]:
    """The ``np.lexsort`` key stack for ORDER BY (last key = highest priority)."""
    output_frame: Frame = dict(order_frame) if order_frame else dict(columns)
    evaluator = ExpressionEvaluator(output_frame, length)
    keys: list[np.ndarray] = []
    for item in reversed(order_by):
        values = evaluator.evaluate(item.expression)
        # Exact int64 keys for every representation: NULLs sort first
        # ascending and last descending (SQLite), text sorts on dictionary
        # codes, and DESC is a plain negation — injective, so ties and
        # stability behave exactly like a sort on the values.
        keys.append(sort_keys(values, item.descending))
    return keys


def top_k_indices(keys: list[np.ndarray], k: int) -> np.ndarray:
    """Row indices of the ``k`` first rows under ``np.lexsort(keys)`` order.

    The bounded top-k pass behind LIMIT-below-ORDER-BY: partition the input
    around the k-th ranked *primary* key, keep only the rows that can still
    reach the ordered prefix (strictly-smaller primaries plus every tie at
    the cutoff — secondary keys decide among ties, so none may be dropped),
    and fully sort just those candidates.  Candidates are kept in input
    order and ``np.lexsort`` is stable, so the result is *exactly*
    ``np.lexsort(keys)[:k]`` — including tie resolution — at
    ``O(n + c log c)`` instead of ``O(n log n)``.
    """
    primary = keys[-1]
    total = len(primary)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= total:
        return np.lexsort(keys)
    cutoff = np.partition(primary, k - 1)[k - 1]
    if primary.dtype.kind == "f" and np.isnan(cutoff):
        # The prefix reaches into the NaN tail (NaN sorts last): every row
        # is still a candidate, so this degrades to a full sort.
        candidates = np.arange(total, dtype=np.int64)
    else:
        candidates = np.flatnonzero(primary <= cutoff)
    order = np.lexsort([key[candidates] for key in keys])[:k]
    return candidates[order]


def order_columns(
    columns: dict[str, np.ndarray],
    names: list[str],
    order_by: Sequence[OrderItem],
    length: int,
    order_frame: Frame | None = None,
    prefix: int | None = None,
) -> dict[str, np.ndarray]:
    """Sort result columns by the ORDER BY keys (last key has lowest priority).

    ``prefix`` (the top-k fast path) keeps only the first ``prefix`` rows of
    the sorted order, computed with a partition-based selection instead of a
    full sort; the kept rows and their order are identical to a full sort.
    """
    keys = _order_keys(columns, order_by, length, order_frame)
    if prefix is not None and prefix < length:
        order = top_k_indices(keys, prefix)
    else:
        order = np.lexsort(keys)
    return {name: columns[name][order] for name in names}


#: Runtime fallback threshold: with no compiled decision, the ordered-prefix
#: partition pass is used once the input is this many times larger than k.
_TOPK_RUNTIME_FACTOR = 4


def limit_bounds(select: Select) -> tuple[int, int | None]:
    """``(start, stop)`` slice bounds of LIMIT/OFFSET under SQLite semantics.

    A negative LIMIT means "no limit" (stop = None); a negative OFFSET is
    treated as 0; an OFFSET beyond the row count yields an empty result via
    ordinary slicing.
    """
    start = select.offset if select.offset is not None and select.offset > 0 else 0
    if select.limit is None or select.limit < 0:
        return start, None
    return start, start + select.limit


def postprocess_select(
    select: Select,
    names: list[str],
    columns: dict[str, np.ndarray],
    frame: Frame | None,
    length: int,
    has_aggregates: bool,
    use_topk: bool | None = None,
    observe: "Callable[[int], None] | None" = None,
) -> tuple[list[str], dict[str, np.ndarray]]:
    """Apply the shared SELECT tail: HAVING validation, DISTINCT, ORDER BY, LIMIT.

    ``use_topk`` carries the compiled plan's costed top-k decision (push the
    LIMIT+OFFSET prefix below ORDER BY via a bounded selection); ``None``
    (the interpreter) decides at runtime from the actual row count.  Both
    strategies produce identical rows — top-k reproduces the stable full
    sort exactly — so the choice is purely a matter of cost.

    ``observe`` (adaptive feedback / EXPLAIN ANALYZE) receives the block's
    *pre-limit* row count — the cardinality the optimizer's pre-limit
    estimate predicts, which the LIMIT would otherwise mask.
    """
    result_length = len(next(iter(columns.values()))) if columns else 0

    if select.having is not None and not (select.group_by or has_aggregates):
        raise SQLExecutionError("HAVING requires GROUP BY or aggregates")

    if select.distinct and result_length:
        # DISTINCT on exact int64 codes: NULLs compare equal (SQLite), wide
        # int64 values never collide, text dedups on dictionary codes.
        stacked = np.stack([encoded_codes(columns[name]) for name in names], axis=1)
        _unique, indices = np.unique(stacked, axis=0, return_index=True)
        keep = np.sort(indices)
        columns = {name: columns[name][keep] for name in names}
        result_length = len(keep)

    if observe is not None:
        observe(result_length)

    start, stop = limit_bounds(select)

    if select.order_by and result_length:
        # ORDER BY may reference source columns (SQLite semantics) as long as
        # the output rows are still aligned 1:1 with the input rows.
        aligned = (
            frame is not None
            and not (select.group_by or has_aggregates or select.distinct)
            and result_length == length
        )
        order_frame: Frame = dict(frame) if aligned else {}
        order_frame.update(columns)
        prefix = None
        if stop is not None and stop < result_length:
            if use_topk or (
                use_topk is None and result_length >= _TOPK_RUNTIME_FACTOR * max(stop, 1)
            ):
                prefix = stop
        columns = order_columns(
            columns, names, select.order_by, result_length, order_frame, prefix=prefix
        )

    if select.limit is not None or start:
        columns = {name: values[start:stop] for name, values in columns.items()}

    return names, columns


# ---------------------------------------------------------------------------
# SELECT execution
# ---------------------------------------------------------------------------


class QueryResult:
    """Column names plus materialized rows returned by the engine."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: list[str], rows: list[tuple], rowcount: int | None = None) -> None:
        self.columns = columns
        self.rows = rows
        self.rowcount = len(rows) if rowcount is None else rowcount

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class SelectExecutor:
    """Executes SELECT / WITH-SELECT statements against a table catalog."""

    def __init__(self, catalog: Mapping[str, Table]) -> None:
        self._catalog = catalog

    # ------------------------------------------------------------- plumbing

    def _resolve(self, name: str, ctes: Mapping[str, Table]) -> Table:
        if name in ctes:
            return ctes[name]
        if name in self._catalog:
            return self._catalog[name]
        raise SQLExecutionError(f"no such table: {name}")

    def execute(self, statement: Select | WithSelect) -> tuple[list[str], dict[str, np.ndarray]]:
        """Run a query; returns (column names, column arrays)."""
        if isinstance(statement, WithSelect):
            ctes: dict[str, Table] = {}
            for cte in statement.ctes:
                names, columns = self._execute_select(cte.query, ctes)
                ctes[cte.name] = Table(cte.name, {name: columns[name] for name in names})
            return self._execute_select(statement.query, ctes)
        return self._execute_select(statement, {})

    # -------------------------------------------------------------- pipeline

    def _execute_select(self, select: Select, ctes: Mapping[str, Table]) -> tuple[list[str], dict[str, np.ndarray]]:
        frame, length = self._build_frame(select, ctes)

        if select.where is not None:
            mask = ExpressionEvaluator(frame, length).evaluate(select.where).astype(bool)
            frame = {key: values[mask] for key, values in frame.items()}
            length = int(mask.sum())

        has_aggregates = select_has_aggregates(select)

        if select.group_by or has_aggregates:
            names, columns = grouped_projection(select, frame, length)
        else:
            names, columns = plain_projection(select.items, frame, length)

        return postprocess_select(select, names, columns, frame, length, has_aggregates)

    def _build_frame(self, select: Select, ctes: Mapping[str, Table]) -> tuple[Frame, int]:
        if select.source is None:
            # SELECT without FROM: a single synthetic row.
            return {}, 1
        base_table = self._resolve(select.source.name, ctes)
        frame = base_table.frame(select.source.binding)
        length = base_table.num_rows
        if select.source.filter is not None:
            frame, length = apply_filter(frame, length, select.source.filter)

        for join in select.joins:
            if join.kind != "inner":
                raise SQLExecutionError(f"{join.kind.upper()} JOIN is not supported by the embedded engine")
            right_table = self._resolve(join.source.name, ctes)
            right_frame = right_table.frame(join.source.binding)
            right_length = right_table.num_rows
            if join.source.filter is not None:
                right_frame, right_length = apply_filter(right_frame, right_length, join.source.filter)
            left_key, right_key = split_join_condition(join.condition, frame, right_frame)
            frame, length = hash_join_frames(
                frame, length, right_frame, right_length, left_key, right_key
            )
        return frame, length
