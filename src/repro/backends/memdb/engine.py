"""The embedded columnar database: catalog plus statement dispatch.

:class:`MemDatabase` is the top-level object backends talk to.  It keeps the
table catalog, parses incoming SQL, and routes each statement to the
vectorized executor.  The API is intentionally DB-API-ish (``execute`` returns
an object with ``columns`` and ``rows``) so the RDBMS backend wrappers can
treat SQLite, DuckDB and memdb uniformly.
"""

from __future__ import annotations

import numpy as np

from ...errors import SQLExecutionError
from .ast_nodes import (
    CreateTable,
    CreateTableAs,
    Delete,
    DropTable,
    Expression,
    Insert,
    Literal,
    Select,
    Statement,
    UnaryOp,
    WithSelect,
)
from .executor import ExpressionEvaluator, QueryResult, SelectExecutor
from .parser import parse_sql
from .table import Table, dtype_for_sql_type


def _literal_value(expression: Expression) -> object:
    """Evaluate a literal (or signed literal) appearing in INSERT ... VALUES."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, UnaryOp) and isinstance(expression.operand, Literal):
        value = expression.operand.value
        if expression.operator == "-":
            return -value  # type: ignore[operator]
        if expression.operator == "+":
            return value
    raise SQLExecutionError("INSERT ... VALUES only accepts literal values")


class MemDatabase:
    """An in-memory columnar SQL database (the offline DuckDB substitute)."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------- catalogue

    def table_names(self) -> list[str]:
        """Names of all stored tables."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name in self._tables

    def table(self, name: str) -> Table:
        """Direct access to a stored table (read-only use expected)."""
        if name not in self._tables:
            raise SQLExecutionError(f"no such table: {name}")
        return self._tables[name]

    def row_count(self, name: str) -> int:
        """Row count of a table."""
        return self.table(name).num_rows

    def estimated_bytes(self, name: str | None = None) -> int:
        """Approximate bytes held by one table (or the whole catalog)."""
        if name is not None:
            return self.table(name).estimated_bytes()
        return sum(table.estimated_bytes() for table in self._tables.values())

    def clear(self) -> None:
        """Drop every table."""
        self._tables.clear()

    # -------------------------------------------------------------- execution

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute a SQL script; returns the result of the last statement."""
        statements = parse_sql(sql)
        result = QueryResult([], [])
        for statement in statements:
            result = self._execute_statement(statement)
        return result

    def executemany(self, statements: list[str]) -> list[QueryResult]:
        """Execute several scripts, returning one result per script."""
        return [self.execute(sql) for sql in statements]

    def _execute_statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, (Select, WithSelect)):
            return self._run_query(statement)
        if isinstance(statement, CreateTable):
            return self._create_table(statement)
        if isinstance(statement, CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        if isinstance(statement, DropTable):
            return self._drop(statement)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    # --------------------------------------------------------------- handlers

    def _run_query(self, statement: Select | WithSelect) -> QueryResult:
        executor = SelectExecutor(self._tables)
        names, columns = executor.execute(statement)
        length = len(next(iter(columns.values()))) if columns else 0
        rows = []
        materialized = [columns[name] for name in names]
        for index in range(length):
            rows.append(tuple(self._to_python(column[index]) for column in materialized))
        return QueryResult(list(names), rows)

    @staticmethod
    def _to_python(value):
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        return value

    def _create_table(self, statement: CreateTable) -> QueryResult:
        if statement.name in self._tables:
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        column_types = [(column.name, column.type_name) for column in statement.columns]
        self._tables[statement.name] = Table.empty(statement.name, column_types)
        return QueryResult([], [], rowcount=0)

    def _create_table_as(self, statement: CreateTableAs) -> QueryResult:
        if statement.name in self._tables:
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        executor = SelectExecutor(self._tables)
        names, columns = executor.execute(statement.query)
        self._tables[statement.name] = Table(statement.name, {name: columns[name] for name in names})
        return QueryResult([], [], rowcount=self._tables[statement.name].num_rows)

    def _insert(self, statement: Insert) -> QueryResult:
        table = self.table(statement.table)
        rows = [tuple(_literal_value(value) for value in row) for row in statement.rows]
        inserted = table.append_rows(statement.columns, rows)
        return QueryResult([], [], rowcount=inserted)

    def _delete(self, statement: Delete) -> QueryResult:
        table = self.table(statement.table)
        if statement.where is None:
            deleted = table.num_rows
            mask = np.ones(table.num_rows, dtype=bool)
        else:
            frame = table.frame(table.name)
            evaluator = ExpressionEvaluator(frame, table.num_rows)
            mask = evaluator.evaluate(statement.where).astype(bool)
            deleted = int(mask.sum())
        table.delete_where(mask)
        return QueryResult([], [], rowcount=deleted)

    def _drop(self, statement: DropTable) -> QueryResult:
        if statement.name not in self._tables:
            if statement.if_exists:
                return QueryResult([], [], rowcount=0)
            raise SQLExecutionError(f"no such table: {statement.name}")
        del self._tables[statement.name]
        return QueryResult([], [], rowcount=0)
