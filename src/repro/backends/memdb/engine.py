"""The embedded columnar database: catalog, plan cache, statement dispatch.

:class:`MemDatabase` is the top-level object backends talk to.  It keeps the
table catalog, parses incoming SQL, compiles statements to physical plans
(see :mod:`.planner`) and routes anything the planner does not cover to the
vectorized interpreter.  Compiled scripts are memoized in an LRU
:class:`PlanCache` keyed by SQL text, so the structurally identical per-gate
queries of a parameter sweep skip tokenize/parse/compile entirely and only
re-bind the cached plan against the current tables.  The API is intentionally
DB-API-ish (``execute`` returns an object with ``columns`` and ``rows``) so
the RDBMS backend wrappers can treat SQLite, DuckDB and memdb uniformly.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ...errors import SQLExecutionError
from .ast_nodes import (
    CreateTable,
    CreateTableAs,
    Delete,
    DropTable,
    Expression,
    Insert,
    Literal,
    Select,
    Statement,
    UnaryOp,
    WithSelect,
)
from .executor import ExpressionEvaluator, QueryResult, SelectExecutor
from .parser import parse_sql
from .planner import CompiledCreateTableAs, CompiledScript, compile_statement
from .table import Table, dtype_for_sql_type

#: One cached script: the parsed statements, each with its plan (or None).
CompiledSQL = list[tuple[Statement, "CompiledScript | CompiledCreateTableAs | None"]]


class PlanCache:
    """An LRU cache of compiled SQL scripts, keyed by the exact SQL text.

    Plans hold table names only (data is re-resolved per execution), so one
    cache can safely serve many :class:`MemDatabase` instances — that is what
    lets every sweep point's fresh database reuse the previous point's plans.

    Entries live in two independent LRU tiers: scripts holding at least one
    compiled plan (the hot CTE / CREATE-AS queries) and parse-only scripts
    (repeated DDL and INSERT texts, which only save tokenize/parse work).
    A sweep's stream of single-use INSERT literals can therefore never evict
    the reusable query plans it runs between them.  ``maxsize`` bounds each
    tier separately, so the cache holds at most ``2 * maxsize`` entries.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_plans", "_parsed")

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._plans: OrderedDict[str, CompiledSQL] = OrderedDict()
        self._parsed: OrderedDict[str, CompiledSQL] = OrderedDict()

    def get(self, sql: str) -> CompiledSQL | None:
        """The cached compilation of a script, updating LRU order and stats."""
        for store in (self._plans, self._parsed):
            entry = store.get(sql)
            if entry is not None:
                store.move_to_end(sql)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    #: Parse-only scripts longer than this are not cached: a dense
    #: initial-state INSERT can carry 2^n literal rows, and pinning its AST in
    #: the process-wide cache would hold megabytes for a text that is usually
    #: unique anyway.  Repeated small gate INSERTs stay comfortably below.
    PARSE_ONLY_MAX_SQL_CHARS = 8192

    def put(self, sql: str, entry: CompiledSQL) -> None:
        """Insert a compiled script, evicting the least recently used of its tier."""
        if self.maxsize <= 0:
            return
        if any(plan is not None for _statement, plan in entry):
            store = self._plans
        else:
            if len(sql) > self.PARSE_ONLY_MAX_SQL_CHARS:
                return
            store = self._parsed
        store[sql] = entry
        store.move_to_end(sql)
        while len(store) > self.maxsize:
            store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._plans.clear()
        self._parsed.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus the current per-tier sizes."""
        return {
            "size": len(self),
            "planned": len(self._plans),
            "parse_only": len(self._parsed),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._plans) + len(self._parsed)

    def __contains__(self, sql: str) -> bool:
        return sql in self._plans or sql in self._parsed


#: Process-wide cache shared by every MemDatabase that is not given its own.
_SHARED_PLAN_CACHE = PlanCache()


def shared_plan_cache() -> PlanCache:
    """The process-wide plan cache (what sweeps across fresh databases reuse)."""
    return _SHARED_PLAN_CACHE


def _literal_value(expression: Expression) -> object:
    """Evaluate a literal (or signed literal) appearing in INSERT ... VALUES."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, UnaryOp) and isinstance(expression.operand, Literal):
        value = expression.operand.value
        if expression.operator == "-":
            return -value  # type: ignore[operator]
        if expression.operator == "+":
            return value
    raise SQLExecutionError("INSERT ... VALUES only accepts literal values")


class MemDatabase:
    """An in-memory columnar SQL database (the offline DuckDB substitute).

    Parameters
    ----------
    plan_cache:
        The :class:`PlanCache` compiled statements are memoized in.  Defaults
        to the process-wide shared cache so plans survive database teardown
        (a fresh database per sweep point still hits warm plans); pass
        ``PlanCache(0)`` to disable caching or a private instance to isolate.
    """

    def __init__(self, plan_cache: PlanCache | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self._plan_cache = _SHARED_PLAN_CACHE if plan_cache is None else plan_cache

    @property
    def plan_cache(self) -> PlanCache:
        """The plan cache this database compiles into."""
        return self._plan_cache

    def plan_cache_stats(self) -> dict:
        """Hit/miss/eviction statistics of the plan cache."""
        return self._plan_cache.stats()

    # ------------------------------------------------------------- catalogue

    def table_names(self) -> list[str]:
        """Names of all stored tables."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name in self._tables

    def table(self, name: str) -> Table:
        """Direct access to a stored table (read-only use expected)."""
        if name not in self._tables:
            raise SQLExecutionError(f"no such table: {name}")
        return self._tables[name]

    def row_count(self, name: str) -> int:
        """Row count of a table."""
        return self.table(name).num_rows

    def estimated_bytes(self, name: str | None = None) -> int:
        """Approximate bytes held by one table (or the whole catalog)."""
        if name is not None:
            return self.table(name).estimated_bytes()
        return sum(table.estimated_bytes() for table in self._tables.values())

    def clear(self) -> None:
        """Drop every table."""
        self._tables.clear()

    # -------------------------------------------------------------- execution

    def execute(self, sql: str) -> QueryResult:
        """Execute a SQL script; returns the result of the last statement.

        Scripts are compiled once (parse + plan) and memoized in the plan
        cache; repeated executions of the same text re-bind the cached plans
        against the current catalog.
        """
        compiled = self._plan_cache.get(sql)
        result = QueryResult([], [])
        if compiled is not None:
            for statement, plan in compiled:
                result = self._execute_compiled(statement, plan)
            return result
        # Cold path: compile each statement just before executing it, so a
        # compile-time error in statement k still leaves the effects of
        # statements 1..k-1 (matching the old parse-then-interpret order).
        # Only fully successful scripts enter the cache.
        entry: CompiledSQL = []
        for statement in parse_sql(sql):
            plan = compile_statement(statement)
            entry.append((statement, plan))
            result = self._execute_compiled(statement, plan)
        self._plan_cache.put(sql, entry)
        return result

    def _execute_compiled(
        self, statement: Statement, plan: "CompiledScript | CompiledCreateTableAs | None"
    ) -> QueryResult:
        if plan is None:
            return self._execute_statement(statement)
        if isinstance(plan, CompiledCreateTableAs):
            return self._run_compiled_create(plan)
        return self._materialize(*plan.execute(self._tables))

    def executemany(self, statements: list[str]) -> list[QueryResult]:
        """Execute several scripts, returning one result per script."""
        return [self.execute(sql) for sql in statements]

    def _execute_statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, (Select, WithSelect)):
            return self._run_query(statement)
        if isinstance(statement, CreateTable):
            return self._create_table(statement)
        if isinstance(statement, CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        if isinstance(statement, DropTable):
            return self._drop(statement)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    # --------------------------------------------------------------- handlers

    def _run_query(self, statement: Select | WithSelect) -> QueryResult:
        executor = SelectExecutor(self._tables)
        names, columns = executor.execute(statement)
        return self._materialize(names, columns)

    @staticmethod
    def _materialize(names: list[str], columns: dict[str, np.ndarray]) -> QueryResult:
        """Turn result columns into a row-oriented :class:`QueryResult`.

        ``ndarray.tolist`` converts whole columns to Python scalars at C
        speed, which beats per-value unboxing by an order of magnitude on
        dense final states.
        """
        materialized = [np.asarray(columns[name]).tolist() for name in names]
        rows = [tuple(row) for row in zip(*materialized)] if materialized else []
        return QueryResult(list(names), rows)

    def _run_compiled_create(self, plan: CompiledCreateTableAs) -> QueryResult:
        if plan.name in self._tables:
            raise SQLExecutionError(f"table {plan.name!r} already exists")
        names, columns = plan.script.execute(self._tables)
        self._tables[plan.name] = Table(plan.name, {name: columns[name] for name in names})
        return QueryResult([], [], rowcount=self._tables[plan.name].num_rows)

    def _create_table(self, statement: CreateTable) -> QueryResult:
        if statement.name in self._tables:
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        column_types = [(column.name, column.type_name) for column in statement.columns]
        self._tables[statement.name] = Table.empty(statement.name, column_types)
        return QueryResult([], [], rowcount=0)

    def _create_table_as(self, statement: CreateTableAs) -> QueryResult:
        if statement.name in self._tables:
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        executor = SelectExecutor(self._tables)
        names, columns = executor.execute(statement.query)
        self._tables[statement.name] = Table(statement.name, {name: columns[name] for name in names})
        return QueryResult([], [], rowcount=self._tables[statement.name].num_rows)

    def _insert(self, statement: Insert) -> QueryResult:
        table = self.table(statement.table)
        rows = [tuple(_literal_value(value) for value in row) for row in statement.rows]
        inserted = table.append_rows(statement.columns, rows)
        return QueryResult([], [], rowcount=inserted)

    def _delete(self, statement: Delete) -> QueryResult:
        table = self.table(statement.table)
        if statement.where is None:
            deleted = table.num_rows
            mask = np.ones(table.num_rows, dtype=bool)
        else:
            frame = table.frame(table.name)
            evaluator = ExpressionEvaluator(frame, table.num_rows)
            mask = evaluator.evaluate(statement.where).astype(bool)
            deleted = int(mask.sum())
        table.delete_where(mask)
        return QueryResult([], [], rowcount=deleted)

    def _drop(self, statement: DropTable) -> QueryResult:
        if statement.name not in self._tables:
            if statement.if_exists:
                return QueryResult([], [], rowcount=0)
            raise SQLExecutionError(f"no such table: {statement.name}")
        del self._tables[statement.name]
        return QueryResult([], [], rowcount=0)
