"""The embedded columnar database: catalog, optimizer, plan cache, dispatch.

:class:`MemDatabase` is the top-level object backends talk to.  It keeps the
table catalog, parses incoming SQL, runs each statement through the
cost-based optimizer (see :mod:`.optimizer`: logical rewrites, statistics,
join ordering), compiles the optimized statement to a physical plan (see
:mod:`.planner`) and routes anything the planner does not cover to the
vectorized interpreter.  Compiled scripts are memoized in an LRU
:class:`PlanCache` keyed by SQL text *and validated against a schema
fingerprint* of every referenced table, so the structurally identical
per-gate queries of a parameter sweep skip tokenize/parse/optimize/compile
entirely while a dropped-and-recreated table with a different shape can
never re-bind a stale plan.  The API is intentionally DB-API-ish
(``execute`` returns an object with ``columns`` and ``rows``) so the RDBMS
backend wrappers can treat SQLite, DuckDB and memdb uniformly.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ...errors import SQLExecutionError
from ...obs.schema import unified_engine_stats
from ...obs.tracing import Tracer, current_span, shared_tracer, tracing_env_enabled
from .ast_nodes import (
    Analyze,
    CreateTable,
    CreateTableAs,
    Delete,
    DropTable,
    Explain,
    Expression,
    Insert,
    Literal,
    Select,
    Statement,
    UnaryOp,
    WithSelect,
)
from .executor import (
    DEFAULT_RECURSION_LIMIT,
    ExpressionEvaluator,
    QueryResult,
    SelectExecutor,
)
from .optimizer import (
    ActualRun,
    Optimizer,
    OptimizerReport,
    StatisticsCatalog,
    render_explain,
    select_shape,
)
from .optimizer.rewrite import referenced_stored_tables
from .parallel import WorkerPool, parallel_env_enabled, shared_worker_pool
from .parallel.pool import default_worker_count
from .column import DictArray, dict_encoding_default, to_pylist
from .parser import parse_sql
from .planner import CompiledCreateTableAs, CompiledScript, compile_statement
from .table import Table, dtype_for_sql_type


@dataclass(frozen=True)
class CompiledStatement:
    """One statement of a cached script: AST (post-rewrite), plan, report."""

    statement: Statement
    plan: "CompiledScript | CompiledCreateTableAs | None"
    report: Optional[OptimizerReport] = None


class CachedScript:
    """A compiled script plus the schema fingerprint it was compiled against.

    ``schemas`` maps every *stored* table a compiled plan references to its
    :meth:`~.table.Table.schema_signature` at the point the referencing
    statement compiled (references made only after the script's own DDL on a
    table are excluded — a replay reproduces that product itself).  The
    cache revalidates the fingerprint on every hit, so the same SQL text
    executed against a structurally different catalog recompiles instead of
    re-binding stale plans.  ``flavor`` records which compilation pipeline
    produced the plans (see :meth:`MemDatabase.plan_flavor`), so an
    optimizer-off database never executes optimizer-rewritten plans from a
    shared cache, and a plan carrying one engine's costed parallel
    decisions is never re-bound by an engine with a different parallel
    configuration (or vice versa).

    ``replan`` is the adaptive re-optimization hook: when an execution
    observes block cardinalities far above the plan's estimates, the engine
    flags the entry (under the cache lock) and the next ``get`` treats it
    as a miss, so the text re-optimizes against the corrected statistics.
    """

    __slots__ = ("items", "schemas", "flavor", "replan")

    def __init__(
        self,
        items: list[CompiledStatement],
        schemas: dict[str, tuple],
        flavor: object = True,
    ) -> None:
        self.items = items
        self.schemas = schemas
        self.flavor = flavor
        self.replan = False

    def is_valid(self, catalog: Mapping[str, Table]) -> bool:
        """True when every fingerprinted table still has its compile-time shape."""
        for name, signature in self.schemas.items():
            table = catalog.get(name)
            if table is None or table.schema_signature() != signature:
                return False
        return True

    def has_plans(self) -> bool:
        return any(item.plan is not None for item in self.items)


def _referenced_tables(statement: Statement) -> set[str]:
    """Stored-table names a plannable statement's scans resolve against.

    Delegates to the optimizer's shared walker so the plan-cache schema
    fingerprint and the rewrite rules can never disagree about which
    catalog tables a query reads.
    """
    if isinstance(statement, (Select, WithSelect)):
        return referenced_stored_tables(statement)
    if isinstance(statement, CreateTableAs):
        return referenced_stored_tables(statement.query)
    return set()


class PlanCache:
    """An LRU cache of compiled SQL scripts, keyed by the exact SQL text.

    Plans hold table names only (data is re-resolved per execution), so one
    cache can safely serve many :class:`MemDatabase` instances — that is what
    lets every sweep point's fresh database reuse the previous point's plans.
    Because different databases (or a DROP + CREATE) can put a structurally
    different table under the same name, every hit is additionally validated
    against the entry's schema fingerprint (see :class:`CachedScript`): a
    mismatch counts as an invalidation, evicts the entry and recompiles.

    Entries live in two independent LRU tiers: scripts holding at least one
    compiled plan (the hot CTE / CREATE-AS queries) and parse-only scripts
    (repeated DDL and INSERT texts, which only save tokenize/parse work).
    A sweep's stream of single-use INSERT literals can therefore never evict
    the reusable query plans it runs between them.  ``maxsize`` bounds each
    tier separately, so the cache holds at most ``2 * maxsize`` entries.

    All operations take an internal lock: the process-wide shared cache is
    hit concurrently by the job service's worker threads, and OrderedDict
    move-to-end / eviction are not atomic.  Cached plans themselves are
    immutable after insertion, so handing the same entry to two threads is
    safe (plans hold table names, never data).
    """

    __slots__ = (
        "maxsize",
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "replans",
        "_plans",
        "_parsed",
        "_lock",
    )

    #: Cache keys are ``(flavor, sql)``: different compilation flavors of
    #: the same text — optimizer on vs off, and distinct parallel
    #: configurations (plans bake their costed ParallelDecision) — are
    #: distinct entries, so an ablation pair sharing one cache can both
    #: stay warm instead of thrashing, and no engine ever re-binds a plan
    #: compiled under another engine's physical-choice settings.  Plain
    #: ``True``/``False`` flavors are the historical optimizer-on/off keys
    #: (what every non-parallel engine still uses).
    _Key = tuple[object, str]

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.replans = 0
        self._plans: OrderedDict[PlanCache._Key, CachedScript] = OrderedDict()
        self._parsed: OrderedDict[PlanCache._Key, CachedScript] = OrderedDict()
        self._lock = threading.Lock()

    def get(
        self,
        sql: str,
        catalog: Mapping[str, Table] | None = None,
        flavor: object = True,
    ) -> CachedScript | None:
        """The cached compilation of a script, updating LRU order and stats.

        ``catalog`` (the calling database's tables) enables the schema
        fingerprint check; a stale entry is dropped and reported as a miss.
        ``flavor`` selects the compilation flavor being looked up (the
        engine's :meth:`MemDatabase.plan_flavor`; plain booleans are the
        optimizer-on/off flavors of non-parallel engines).
        """
        return self.get_with_state(sql, catalog, flavor)[0]

    def get_with_state(
        self,
        sql: str,
        catalog: Mapping[str, Table] | None = None,
        flavor: object = True,
    ) -> "tuple[CachedScript | None, str]":
        """Like :meth:`get`, also reporting the lookup's provenance.

        The second element is ``hit`` / ``stale`` / ``replan`` / ``miss`` —
        what :meth:`peek_state` would have said, but computed inside the one
        real lookup so a traced execution does not pay the schema-fingerprint
        validation twice.
        """
        key = (flavor, sql)
        with self._lock:
            for store in (self._plans, self._parsed):
                entry = store.get(key)
                if entry is not None:
                    if entry.replan:
                        # Flagged by adaptive feedback: re-optimize instead
                        # of re-binding the misestimated plan.
                        del store[key]
                        self.replans += 1
                        self.misses += 1
                        return None, "replan"
                    if catalog is not None and not entry.is_valid(catalog):
                        del store[key]
                        self.invalidations += 1
                        self.misses += 1
                        return None, "stale"
                    store.move_to_end(key)
                    self.hits += 1
                    return entry, "hit"
            self.misses += 1
            return None, "miss"

    def peek_state(
        self,
        sql: str,
        catalog: Mapping[str, Table] | None = None,
        flavor: object = True,
    ) -> str:
        """Provenance of a text without touching counters: hit / stale / miss."""
        key = (flavor, sql)
        with self._lock:
            for store in (self._plans, self._parsed):
                entry = store.get(key)
                if entry is not None:
                    if entry.replan:
                        return "replan"
                    if catalog is not None and not entry.is_valid(catalog):
                        return "stale"
                    return "hit"
            return "miss"

    def peek_entry(
        self,
        sql: str,
        catalog: Mapping[str, Table] | None = None,
        flavor: object = True,
    ) -> "CachedScript | None":
        """The cached entry without touching counters or LRU order.

        The slow-query log's plan-snapshot provider uses this: rendering a
        forensic EXPLAIN for an already-executed query must not inflate hit
        statistics or keep the entry artificially warm.  Stale and
        replan-flagged entries are still returned — the snapshot describes
        the plan that actually ran.
        """
        key = (flavor, sql)
        with self._lock:
            for store in (self._plans, self._parsed):
                entry = store.get(key)
                if entry is not None:
                    return entry
            return None

    def mark_replan(self, sql: str, flavor: object = True) -> bool:
        """Flag a cached script for re-planning on its next lookup.

        Called by adaptive feedback when observed block cardinalities exceed
        the plan's estimates beyond the engine's threshold.  Returns True
        when an entry was flagged (False when the text is no longer cached).
        """
        key = (flavor, sql)
        with self._lock:
            for store in (self._plans, self._parsed):
                entry = store.get(key)
                if entry is not None:
                    entry.replan = True
                    return True
            return False

    #: Parse-only scripts longer than this are not cached: a dense
    #: initial-state INSERT can carry 2^n literal rows, and pinning its AST in
    #: the process-wide cache would hold megabytes for a text that is usually
    #: unique anyway.  Repeated small gate INSERTs stay comfortably below.
    PARSE_ONLY_MAX_SQL_CHARS = 8192

    def put(self, sql: str, entry: CachedScript) -> None:
        """Insert a compiled script, evicting the least recently used of its tier."""
        if self.maxsize <= 0:
            return
        if entry.has_plans():
            store = self._plans
        else:
            if len(sql) > self.PARSE_ONLY_MAX_SQL_CHARS:
                return
            store = self._parsed
        key = (entry.flavor, sql)
        with self._lock:
            store[key] = entry
            store.move_to_end(key)
            while len(store) > self.maxsize:
                store.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._plans.clear()
            self._parsed.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0
            self.replans = 0

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus the current per-tier sizes."""
        with self._lock:
            return {
                "size": len(self._plans) + len(self._parsed),
                "planned": len(self._plans),
                "parse_only": len(self._parsed),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "replans": self.replans,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans) + len(self._parsed)

    def __contains__(self, sql: str) -> bool:
        """True when any compilation flavor of the text is cached."""
        with self._lock:
            return any(
                key[1] == sql for store in (self._plans, self._parsed) for key in store
            )


#: Process-wide cache shared by every MemDatabase that is not given its own.
_SHARED_PLAN_CACHE = PlanCache()


def shared_plan_cache() -> PlanCache:
    """The process-wide plan cache (what sweeps across fresh databases reuse)."""
    return _SHARED_PLAN_CACHE


def _literal_value(expression: Expression) -> object:
    """Evaluate a literal (or signed literal) appearing in INSERT ... VALUES."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, UnaryOp) and isinstance(expression.operand, Literal):
        value = expression.operand.value
        if expression.operator == "-":
            return -value  # type: ignore[operator]
        if expression.operator == "+":
            return value
    raise SQLExecutionError("INSERT ... VALUES only accepts literal values")


class MemDatabase:
    """An in-memory columnar SQL database (the offline DuckDB substitute).

    Parameters
    ----------
    plan_cache:
        The :class:`PlanCache` compiled statements are memoized in.  Defaults
        to the process-wide shared cache so plans survive database teardown
        (a fresh database per sweep point still hits warm plans); pass
        ``PlanCache(0)`` to disable caching or a private instance to isolate.
    enable_optimizer:
        When False, statements compile exactly as written (no rewrites, no
        join reordering); physical operator choices still run through the
        cost model with default estimates.  Used by benchmarks to ablate
        the optimizer.
    enable_adaptive:
        When True (default, requires the optimizer), every compiled-plan
        execution compares the optimizer's estimated block cardinalities
        against the actual row counts.  A block producing more than
        ``adaptive_threshold`` times its estimate (and at least
        ``adaptive_min_rows`` rows) records a per-(table, predicate-shape)
        correction factor in the statistics catalog and flags the plan-cache
        entry for re-planning on the next lookup.  Only *under*estimates
        trigger: UES estimates are upper bounds by design, so an actual
        exceeding the bound proves the statistics are stale or the model's
        independence assumptions failed — overestimates are expected
        pessimism.
    enable_topk:
        When False the cost model never chooses the bounded top-k operator
        for ORDER BY ... LIMIT (benchmark ablation of sort-then-slice).
    enable_parallel:
        Morsel-driven parallel execution (see :mod:`.parallel`): compiled
        query blocks whose costed :class:`~.optimizer.cost.ParallelDecision`
        expects a net win run their scans, filters, hash-join probes and
        partitioned aggregations across a shared worker pool.  Results are
        byte-identical to serial execution.  ``None`` (the default) follows
        the ``REPRO_MEMDB_PARALLEL`` environment variable (off when unset).
    parallel_workers / parallel_threshold_rows / worker_pool:
        Tuning knobs for the parallel subsystem: the worker count the cost
        model plans for, an explicit serial-vs-parallel break-even override
        (0 forces parallel operators onto any non-empty input — used by the
        differential tests), and an injected :class:`~.parallel.WorkerPool`
        (default: one pool shared process-wide, so fresh engines per sweep
        point reuse warm threads).
    enable_dict_encoding:
        Storage-representation ablation flag: when True (default, or
        ``None`` with ``REPRO_MEMDB_DICT`` unset/non-zero) TEXT columns are
        stored as dictionary-encoded int32 codes plus a sorted value
        dictionary; when False they stay plain object arrays (the v1
        representation).  Results are byte-identical either way — compiled
        plans are representation-agnostic, so this flag deliberately does
        **not** participate in the plan-cache flavor.
    enable_tracing / tracer:
        Span-based query tracing (see :mod:`repro.obs`).  An explicit
        ``tracer`` wins; otherwise ``enable_tracing=True`` attaches the
        process-shared tracer, ``False`` disables tracing, and ``None``
        (the default) follows ``REPRO_TRACE`` (off when unset).  Every
        traced execution produces a span tree — cache provenance, parse /
        optimize / plan stages on cold compilations, per-block and
        per-operator execute spans whose row counts match EXPLAIN ANALYZE
        actuals exactly — dispatched to the tracer's ring buffer, slow-query
        log and export sinks.  Disabled tracing costs one branch per
        ``execute``.
    """

    #: Actual/estimated ratio above which a block triggers re-planning.
    ADAPTIVE_THRESHOLD = 4.0
    #: Blocks smaller than this (both estimated and actual) never trigger.
    ADAPTIVE_MIN_ROWS = 64
    #: Bounded history of adaptive events kept for optimizer_stats().
    ADAPTIVE_EVENT_LIMIT = 32

    def __init__(
        self,
        plan_cache: PlanCache | None = None,
        enable_optimizer: bool = True,
        enable_adaptive: bool = True,
        enable_topk: bool = True,
        adaptive_threshold: float | None = None,
        adaptive_min_rows: int | None = None,
        enable_parallel: bool | None = None,
        parallel_workers: int | None = None,
        parallel_threshold_rows: int | None = None,
        worker_pool: WorkerPool | None = None,
        enable_dict_encoding: bool | None = None,
        enable_tracing: bool | None = None,
        tracer: Tracer | None = None,
        recursion_limit: int | None = None,
    ) -> None:
        self._tables: dict[str, Table] = {}
        #: Iteration cap for WITH RECURSIVE fixpoints (interpreter and
        #: compiled plans share it); a diverging UNION ALL raises instead of
        #: hanging once the cap is reached.
        self.recursion_limit = (
            DEFAULT_RECURSION_LIMIT if recursion_limit is None else int(recursion_limit)
        )
        self.enable_dict_encoding = (
            dict_encoding_default() if enable_dict_encoding is None else bool(enable_dict_encoding)
        )
        self._plan_cache = _SHARED_PLAN_CACHE if plan_cache is None else plan_cache
        self._statistics = StatisticsCatalog()
        self.enable_optimizer = bool(enable_optimizer)
        self.enable_adaptive = bool(enable_adaptive) and self.enable_optimizer
        self.enable_topk = bool(enable_topk)
        if enable_parallel is None:
            enable_parallel = bool(parallel_env_enabled())
        self.enable_parallel = bool(enable_parallel)
        self._worker_pool = worker_pool
        self.parallel_workers = (
            int(parallel_workers)
            if parallel_workers is not None
            else (worker_pool.workers if worker_pool is not None else default_worker_count())
        )
        self.parallel_threshold_rows = (
            None if parallel_threshold_rows is None else int(parallel_threshold_rows)
        )
        self._parallel_executions = 0
        # Compilation flavor for plan-cache keys.  Compiled plans bake the
        # costed ParallelDecision, so engines whose parallel configuration
        # differs must never share cache entries; non-parallel engines keep
        # the historical optimizer-on/off boolean key.
        if not self.enable_parallel:
            self._plan_flavor: object = self.enable_optimizer
        else:
            self._plan_flavor = (
                self.enable_optimizer,
                "parallel",
                self.parallel_workers,
                self.parallel_threshold_rows,
            )
        self.adaptive_threshold = (
            self.ADAPTIVE_THRESHOLD if adaptive_threshold is None else float(adaptive_threshold)
        )
        self.adaptive_min_rows = (
            self.ADAPTIVE_MIN_ROWS if adaptive_min_rows is None else int(adaptive_min_rows)
        )
        self._optimizer_counters: dict[str, int] = {}
        self._adaptive_events: list[dict] = []
        #: Scripts whose first (cold) execution already requested a re-plan,
        #: observed before the compiled entry reached the cache.
        self._pending_replans: set[str] = set()
        if tracer is not None:
            self._tracer: Tracer | None = tracer
        else:
            if enable_tracing is None:
                enable_tracing = bool(tracing_env_enabled())
            self._tracer = shared_tracer() if enable_tracing else None

    @property
    def plan_cache(self) -> PlanCache:
        """The plan cache this database compiles into."""
        return self._plan_cache

    @property
    def plan_flavor(self) -> object:
        """This engine's plan-cache compilation flavor (see :class:`PlanCache`)."""
        return self._plan_flavor

    def plan_cache_stats(self) -> dict:
        """Hit/miss/eviction statistics of the plan cache."""
        return self._plan_cache.stats()

    @property
    def tracer(self) -> Tracer | None:
        """The tracer executions record spans into (None = tracing disabled)."""
        return self._tracer

    def tracing_stats(self) -> dict:
        """Tracer activity counters and sink state (``{"enabled": False}`` off)."""
        return self._tracer.stats() if self._tracer is not None else {"enabled": False}

    def engine_stats(self) -> dict:
        """Every subsystem's statistics in the unified versioned schema.

        See :func:`repro.obs.schema.unified_engine_stats`: canonical
        ``plan_cache`` / ``optimizer`` / ``adaptive`` / ``parallel`` /
        ``storage`` / ``tracing`` sections with roll-up aggregates;
        ``optimizer["adaptive"]`` stays aliased for pre-schema readers.
        """
        return unified_engine_stats(
            self.plan_cache_stats(),
            self.optimizer_stats(),
            self.parallel_stats(),
            self.storage_stats(),
            self.tracing_stats(),
        )

    @property
    def statistics(self) -> StatisticsCatalog:
        """The optimizer's statistics catalog (refreshed by ANALYZE)."""
        return self._statistics

    def analyze_statistics(self, table: str | None = None) -> dict:
        """Programmatic ANALYZE: refresh statistics for one or all tables."""
        self._refresh_statistics(table)
        return self._statistics.summary()

    def _refresh_statistics(self, table: str | None) -> int:
        """Shared ANALYZE core; returns how many tables were analyzed."""
        names = [table] if table is not None else self.table_names()
        for name in names:
            self._statistics.analyze(self.table(name))
        return len(names)

    def optimizer_stats(self) -> dict:
        """Aggregated optimizer activity plus the statistics-catalog summary."""
        return {
            "enabled": self.enable_optimizer,
            "counters": dict(self._optimizer_counters),
            "statistics": self._statistics.summary(),
            "adaptive": self.adaptive_stats(),
        }

    def adaptive_stats(self) -> dict:
        """The adaptive feedback loop's state: counters plus recent events."""
        return {
            "enabled": self.enable_adaptive,
            "threshold": self.adaptive_threshold,
            "replans": self._optimizer_counters.get("adaptive_replans", 0),
            "corrections": self._optimizer_counters.get("feedback_corrections", 0),
            "decays": self._optimizer_counters.get("feedback_decays", 0),
            "events": list(self._adaptive_events),
        }

    def _optimizer(self) -> Optimizer:
        return Optimizer(
            self._tables,
            self._statistics,
            enabled=self.enable_optimizer,
            enable_topk=self.enable_topk,
            enable_parallel=self.enable_parallel,
            parallel_workers=self.parallel_workers,
            parallel_threshold_rows=self.parallel_threshold_rows,
        )

    # ------------------------------------------------------ parallel runtime

    def worker_pool(self) -> WorkerPool | None:
        """The morsel pool compiled plans execute on (None = serial engine).

        The engine owns the binding, not the threads: by default every
        parallel engine shares the process-wide pool (mirroring the shared
        plan cache), while an injected pool stays private to this engine.
        """
        if not self.enable_parallel:
            return None
        if self._worker_pool is not None:
            return self._worker_pool
        return shared_worker_pool()

    def parallel_stats(self) -> dict:
        """Parallel-subsystem state: configuration plus pool usage counters."""
        pool = self._worker_pool
        if pool is None and self.enable_parallel:
            pool = shared_worker_pool()
        return {
            "enabled": self.enable_parallel,
            "workers": self.parallel_workers,
            "threshold_rows": self.parallel_threshold_rows,
            "parallel_plan_executions": self._parallel_executions,
            "pool": pool.stats() if pool is not None else {},
        }

    def _record_report(self, report: OptimizerReport | None) -> None:
        if report is None:
            return
        for key, value in report.counters().items():
            if value:
                self._optimizer_counters[key] = self._optimizer_counters.get(key, 0) + value

    # ------------------------------------------------------------- catalogue

    def table_names(self) -> list[str]:
        """Names of all stored tables."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name in self._tables

    def table(self, name: str) -> Table:
        """Direct access to a stored table (read-only use expected)."""
        if name not in self._tables:
            raise SQLExecutionError(f"no such table: {name}")
        return self._tables[name]

    def row_count(self, name: str) -> int:
        """Row count of a table."""
        return self.table(name).num_rows

    def estimated_bytes(self, name: str | None = None) -> int:
        """Approximate bytes held by one table (or the whole catalog)."""
        if name is not None:
            return self.table(name).estimated_bytes()
        return sum(table.estimated_bytes() for table in self._tables.values())

    def create_table_from_columns(self, name: str, columns: Mapping[str, np.ndarray]) -> Table:
        """Bulk-load a table straight from numpy columns (no SQL round-trip).

        The columnar fast path for benchmark and service loaders: building a
        million-row table from INSERT literals would spend orders of
        magnitude longer tokenizing than the engine spends executing.  The
        table participates in everything a CREATE'd table does (statistics
        invalidation included).
        """
        if name in self._tables:
            raise SQLExecutionError(f"table {name!r} already exists")
        table = Table(
            name,
            {
                column: values if isinstance(values, DictArray) else np.asarray(values)
                for column, values in columns.items()
            },
            dict_encode=self.enable_dict_encoding,
        )
        self._tables[name] = table
        self._statistics.invalidate(name)
        return table

    def storage_stats(self, name: str | None = None) -> dict:
        """Encoded-storage accounting for one table or the whole catalog.

        Reports per-column kinds (numeric / dict / object), chunk counts,
        code + dictionary + validity-bitmap bytes, dictionary sizes and
        rebuild counts — the numbers the columnar benchmarks surface next to
        their speedups.
        """
        if name is not None:
            return self.table(name).storage_stats()
        tables = {table_name: table.storage_stats() for table_name, table in self._tables.items()}
        return {
            "dict_encoding": self.enable_dict_encoding,
            "total_bytes": sum(stats["total_bytes"] for stats in tables.values()),
            "tables": tables,
        }

    def clear(self) -> None:
        """Drop every table (and the adaptive state observed against them)."""
        self._tables.clear()
        self._statistics.clear()
        self._adaptive_events.clear()
        self._pending_replans.clear()

    # -------------------------------------------------------------- execution

    def execute(self, sql: str) -> QueryResult:
        """Execute a SQL script; returns the result of the last statement.

        Scripts are compiled once (parse + optimize + plan) and memoized in
        the plan cache; repeated executions of the same text re-bind the
        cached plans against the current catalog after the schema
        fingerprint of every referenced table revalidates.
        """
        if self._tracer is None:
            return self._execute_script(sql)
        return self._execute_traced(sql)

    def _execute_traced(self, sql: str) -> QueryResult:
        """The :meth:`execute` body under a root ``query`` span.

        The root records cache provenance (reported by the one real lookup
        inside :meth:`_execute_script`), the result row count, and a lazy
        plan-snapshot provider the slow-query log renders only when its
        threshold trips.
        """
        tracer = self._tracer
        with tracer.query(sql) as root:
            result = self._execute_script(sql, tracer=tracer)
            root.set(rows=len(result.rows), rowcount=result.rowcount)
            root.plan_provider = lambda: self._render_plan_snapshot(sql)
        return result

    def _render_plan_snapshot(self, sql: str) -> list[str]:
        """EXPLAIN-style lines for a script's cached plans (slow-log forensics)."""
        entry = self._plan_cache.peek_entry(sql, self._tables, self.plan_flavor)
        if entry is None:
            return ["<plan not cached>"]
        state = self._plan_cache.peek_state(sql, self._tables, self.plan_flavor)
        lines: list[str] = []
        for item in entry.items:
            lines.extend(render_explain(sql, item.report, item.plan, state, None))
        return lines

    def _execute_script(self, sql: str, tracer: Tracer | None = None) -> QueryResult:
        if tracer is not None:
            cached, cache_state = self._plan_cache.get_with_state(
                sql, self._tables, self.plan_flavor
            )
            root = current_span()
            if root is not None:
                root.set(cache=cache_state)
        else:
            cached = self._plan_cache.get(sql, self._tables, self.plan_flavor)
        result = QueryResult([], [])
        if cached is not None:
            for item in cached.items:
                result = self._execute_compiled(
                    item.statement, item.plan, item=item, sql=sql, tracer=tracer
                )
            return result
        # Cold path: optimize + compile each statement just before executing
        # it, so a compile-time error in statement k still leaves the effects
        # of statements 1..k-1 (matching the old parse-then-interpret order).
        # Only fully successful scripts enter the cache; EXPLAIN / ANALYZE
        # statements are never cached (their output depends on live state).
        if tracer is not None:
            with tracer.span("parse") as span:
                statements = parse_sql(sql)
                span.set(statements=len(statements))
        else:
            statements = parse_sql(sql)
        cacheable = not any(isinstance(s, (Explain, Analyze)) for s in statements)
        optimizer = self._optimizer()
        items: list[CompiledStatement] = []
        schemas: dict[str, tuple] = {}
        # Tables the script itself has created/dropped *so far*: statements
        # after the DDL are compiled against the script's own product (which
        # a replay reproduces identically), so only references made *before*
        # any in-script DDL on a table fingerprint its pre-script schema.
        touched_by_ddl: set[str] = set()
        for statement in statements:
            if isinstance(statement, (Explain, Analyze)):
                result = self._execute_statement(statement)
                continue
            compiled = self._compile_one(
                optimizer, statement, schemas, touched_by_ddl, tracer=tracer
            )
            items.append(compiled)
            result = self._execute_compiled(
                compiled.statement,
                compiled.plan,
                item=compiled,
                sql=sql if cacheable else None,
                tracer=tracer,
            )
            if isinstance(statement, (CreateTable, CreateTableAs, DropTable)):
                touched_by_ddl.add(statement.name)
        if cacheable:
            entry = CachedScript(items, schemas, flavor=self.plan_flavor)
            if sql in self._pending_replans:
                # Feedback from this very execution already disqualified the
                # plans: cache the entry pre-flagged so the next lookup
                # re-optimizes against the corrected statistics.
                self._pending_replans.discard(sql)
                entry.replan = True
            self._plan_cache.put(sql, entry)
        return result

    def _compile_one(
        self,
        optimizer: Optimizer,
        statement: Statement,
        schemas: dict[str, tuple],
        touched_by_ddl: set[str],
        tracer: Tracer | None = None,
    ) -> CompiledStatement:
        """Optimize + plan one statement, accumulating its schema fingerprint.

        Shared by :meth:`execute`'s cold path and :meth:`prepare` so the
        cache-entry construction (plans, report recording, fingerprinting)
        can never diverge between the two.
        """
        if tracer is not None:
            with tracer.span("optimize", statement=type(statement).__name__) as span:
                optimized, report, cost = optimizer.optimize(statement)
                if report is not None:
                    span.set(**{k: v for k, v in report.counters().items() if v})
            with tracer.span("plan") as span:
                plan = compile_statement(optimized, cost)
                if plan is not None:
                    span.set(kind=type(plan).__name__)
        else:
            optimized, report, cost = optimizer.optimize(statement)
            plan = compile_statement(optimized, cost)
        self._record_report(report)
        if plan is not None:
            for name in _referenced_tables(optimized) - touched_by_ddl:
                if name in self._tables and name not in schemas:
                    schemas[name] = self._tables[name].schema_signature()
        return CompiledStatement(optimized, plan, report)

    def prepare(self, sql: str) -> str:
        """Compile a query script into the plan cache without executing it.

        The prepared-statement entry point of the compile–bind–execute API:
        the backend sets up its gate/state tables, hands the hot CTE query
        here, and every later execution of the identical text (all sweep
        points of a circuit family) starts as a plan-cache hit.  Only pure
        query statements (SELECT / WITH ... SELECT) are preparable — scripts
        with DDL or DML interleave compilation with their own side effects
        and must go through :meth:`execute`.

        Returns ``"hit"`` when the text was already cached and ``"prepared"``
        after a fresh compilation.
        """
        if self._plan_cache.get(sql, self._tables, self.plan_flavor) is not None:
            return "hit"
        statements = parse_sql(sql)
        offenders = [type(s).__name__ for s in statements if not isinstance(s, (Select, WithSelect))]
        if offenders:
            raise SQLExecutionError(
                f"prepare only supports SELECT/WITH query statements, got {offenders}"
            )
        optimizer = self._optimizer()
        items: list[CompiledStatement] = []
        schemas: dict[str, tuple] = {}
        for statement in statements:
            items.append(self._compile_one(optimizer, statement, schemas, set()))
        self._plan_cache.put(
            sql, CachedScript(items, schemas, flavor=self.plan_flavor)
        )
        return "prepared"

    def _execute_compiled(
        self,
        statement: Statement,
        plan: "CompiledScript | CompiledCreateTableAs | None",
        item: CompiledStatement | None = None,
        sql: str | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        if plan is None:
            if tracer is not None:
                with tracer.span("execute", statement=type(statement).__name__) as span:
                    result = self._execute_statement(statement)
                    span.set(rowcount=result.rowcount)
                return result
            return self._execute_statement(statement)
        collect = (
            self.enable_adaptive
            and sql is not None
            and item is not None
            and item.report is not None
            and bool(item.report.queries)
        )
        actuals: dict[str, int] = {}
        trace = actuals.__setitem__ if collect else None
        pool = self.worker_pool()
        script = plan.script if isinstance(plan, CompiledCreateTableAs) else plan
        parallel = pool is not None and script.uses_parallel()
        if parallel:
            self._parallel_executions += 1
        if tracer is not None:
            with tracer.span(
                "execute", statement=type(statement).__name__, parallel=parallel
            ) as span:
                result = self._run_compiled(plan, trace, pool, tracer)
                span.set(rows=len(result.rows), rowcount=result.rowcount)
        else:
            result = self._run_compiled(plan, trace, pool, None)
        if collect and actuals:
            self._adaptive_feedback(sql, item, actuals)
        return result

    def _run_compiled(
        self,
        plan: "CompiledScript | CompiledCreateTableAs",
        trace,
        pool: WorkerPool | None,
        tracer: Tracer | None,
    ) -> QueryResult:
        if isinstance(plan, CompiledCreateTableAs):
            return self._run_compiled_create(plan, trace=trace, pool=pool, tracer=tracer)
        return self._materialize(
            *plan.execute(
                self._tables,
                trace=trace,
                pool=pool,
                tracer=tracer,
                recursion_limit=self.recursion_limit,
            )
        )

    # ------------------------------------------------- adaptive re-planning

    @staticmethod
    def _query_blocks(statement: Statement) -> dict[str, Select]:
        """Label -> Select for every traced block of a plannable statement."""
        query = statement.query if isinstance(statement, CreateTableAs) else statement
        if isinstance(query, WithSelect):
            # UNION [ALL] (possibly recursive) CTE bodies are not single
            # Selects; adaptive feedback re-plans them on a misestimate but
            # never records a shape correction for them.
            blocks = {
                cte.name: cte.query for cte in query.ctes if isinstance(cte.query, Select)
            }
            blocks["main"] = query.query
            return blocks
        if isinstance(query, Select):
            return {"main": query}
        return {}

    def _adaptive_feedback(
        self, sql: str, item: CompiledStatement, actuals: Mapping[str, int]
    ) -> None:
        """Compare a plan's estimated block cardinalities to an execution's actuals.

        A block producing more than ``adaptive_threshold`` times its
        *plan-time* estimate flags the cached script for re-planning.  On
        top of that, the block is re-estimated against the *current* catalog
        and statistics (feeding earlier blocks' actuals in as derived
        cardinalities): only the residual error the re-plan would still make
        is recorded as a (table, predicate-shape) correction factor — when
        the live row count alone explains the miss (a stale plan after bulk
        DML), re-planning suffices and no sticky correction is stored.
        """
        report = item.report
        if report is None:
            return
        blocks = self._query_blocks(item.statement)
        model = None
        triggered: list[dict] = []
        for info in report.queries:
            actual = actuals.get(info.label)
            if actual is None:
                continue
            select = blocks.get(info.label)
            if model is None:
                model = self._optimizer().cost_model()
            estimated = max(float(info.feedback_rows), 1.0)
            exceeded = (
                max(actual, estimated) >= self.adaptive_min_rows
                and actual > estimated * self.adaptive_threshold
            )
            if exceeded:
                event = {
                    "block": info.label,
                    "estimated": estimated,
                    "actual": int(actual),
                    "q_error": actual / estimated,
                }
                # Corrections are keyed by stored-table name so the DML
                # invalidation hooks can drop them; a block scanning a CTE
                # (whose name never reaches invalidate()) only re-plans.
                if (
                    select is not None
                    and select.source is not None
                    and select.source.name in self._tables
                ):
                    fresh = max(model.estimate_select_input_rows(select), 1.0)
                    residual = actual / fresh
                    if residual > self.adaptive_threshold:
                        table = select.source.name
                        factor = self._statistics.record_correction(
                            table, select_shape(select), residual
                        )
                        event["correction"] = {"table": table, "factor": factor}
                        self._optimizer_counters["feedback_corrections"] = (
                            self._optimizer_counters.get("feedback_corrections", 0) + 1
                        )
                triggered.append(event)
            elif (
                select is not None
                and select.source is not None
                and select.source.name in self._tables
            ):
                # The decay half of the loop: a corrected block whose
                # estimate now grossly overshoots ages its factor (see
                # StatisticsCatalog.observe_correction); once it decays,
                # re-plan so the cheaper operators get picked up.
                decayed = self._statistics.observe_correction(
                    select.source.name,
                    select_shape(select),
                    actual / estimated,
                    self.adaptive_threshold,
                )
                if decayed is not None:
                    triggered.append(
                        {
                            "block": info.label,
                            "estimated": estimated,
                            "actual": int(actual),
                            "q_error": actual / estimated,
                            "decay": {"table": select.source.name, "factor": decayed},
                        }
                    )
                    self._optimizer_counters["feedback_decays"] = (
                        self._optimizer_counters.get("feedback_decays", 0) + 1
                    )
            # Later blocks scan earlier ones by name: estimate them against
            # the measured cardinality, not the stale guess.
            model.set_derived_rows(info.label, float(actual))
        if not triggered:
            return
        if not self._plan_cache.mark_replan(sql, self.plan_flavor):
            if len(self._pending_replans) < 64:
                self._pending_replans.add(sql)
        self._optimizer_counters["adaptive_replans"] = (
            self._optimizer_counters.get("adaptive_replans", 0) + 1
        )
        self._adaptive_events.extend(triggered)
        del self._adaptive_events[: -self.ADAPTIVE_EVENT_LIMIT]

    def executemany(self, statements: list[str]) -> list[QueryResult]:
        """Execute several scripts, returning one result per script."""
        return [self.execute(sql) for sql in statements]

    def _execute_statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, (Select, WithSelect)):
            return self._run_query(statement)
        if isinstance(statement, CreateTable):
            return self._create_table(statement)
        if isinstance(statement, CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        if isinstance(statement, DropTable):
            return self._drop(statement)
        if isinstance(statement, Analyze):
            return self._analyze(statement)
        if isinstance(statement, Explain):
            return self._explain(statement)
        raise SQLExecutionError(f"unsupported statement type {type(statement).__name__}")

    # --------------------------------------------------------------- handlers

    def _run_query(self, statement: Select | WithSelect) -> QueryResult:
        executor = SelectExecutor(self._tables, recursion_limit=self.recursion_limit)
        names, columns = executor.execute(statement)
        return self._materialize(names, columns)

    @staticmethod
    def _materialize(names: list[str], columns: dict[str, np.ndarray]) -> QueryResult:
        """Turn result columns into a row-oriented :class:`QueryResult`.

        ``ndarray.tolist`` converts whole columns to Python scalars at C
        speed, which beats per-value unboxing by an order of magnitude on
        dense final states; dictionary-encoded text decodes once here, at
        the representation boundary.
        """
        materialized = [to_pylist(columns[name]) for name in names]
        rows = [tuple(row) for row in zip(*materialized)] if materialized else []
        return QueryResult(list(names), rows)

    def _run_compiled_create(
        self,
        plan: CompiledCreateTableAs,
        trace=None,
        pool: WorkerPool | None = None,
        tracer: Tracer | None = None,
    ) -> QueryResult:
        if plan.name in self._tables:
            raise SQLExecutionError(f"table {plan.name!r} already exists")
        names, columns = plan.script.execute(
            self._tables,
            trace=trace,
            pool=pool,
            tracer=tracer,
            recursion_limit=self.recursion_limit,
        )
        self._tables[plan.name] = Table(
            plan.name,
            {name: columns[name] for name in names},
            dict_encode=self.enable_dict_encoding,
        )
        self._statistics.invalidate(plan.name)
        return QueryResult([], [], rowcount=self._tables[plan.name].num_rows)

    def _create_table(self, statement: CreateTable) -> QueryResult:
        if statement.name in self._tables:
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        column_types = [(column.name, column.type_name) for column in statement.columns]
        self._tables[statement.name] = Table.empty(
            statement.name, column_types, dict_encode=self.enable_dict_encoding
        )
        self._statistics.invalidate(statement.name)
        return QueryResult([], [], rowcount=0)

    def _create_table_as(self, statement: CreateTableAs) -> QueryResult:
        if statement.name in self._tables:
            raise SQLExecutionError(f"table {statement.name!r} already exists")
        executor = SelectExecutor(self._tables, recursion_limit=self.recursion_limit)
        names, columns = executor.execute(statement.query)
        self._tables[statement.name] = Table(
            statement.name,
            {name: columns[name] for name in names},
            dict_encode=self.enable_dict_encoding,
        )
        self._statistics.invalidate(statement.name)
        return QueryResult([], [], rowcount=self._tables[statement.name].num_rows)

    def _insert(self, statement: Insert) -> QueryResult:
        table = self.table(statement.table)
        rows = [tuple(_literal_value(value) for value in row) for row in statement.rows]
        inserted = table.append_rows(statement.columns, rows)
        if inserted:
            self._statistics.invalidate(statement.table)
        return QueryResult([], [], rowcount=inserted)

    def _delete(self, statement: Delete) -> QueryResult:
        table = self.table(statement.table)
        if statement.where is None:
            deleted = table.num_rows
            mask = np.ones(table.num_rows, dtype=bool)
        else:
            frame = table.frame(table.name)
            evaluator = ExpressionEvaluator(frame, table.num_rows)
            mask = evaluator.evaluate(statement.where).astype(bool)
            deleted = int(mask.sum())
        table.delete_where(mask)
        if deleted:
            self._statistics.invalidate(statement.table)
        return QueryResult([], [], rowcount=deleted)

    def _drop(self, statement: DropTable) -> QueryResult:
        if statement.name not in self._tables:
            if statement.if_exists:
                return QueryResult([], [], rowcount=0)
            raise SQLExecutionError(f"no such table: {statement.name}")
        del self._tables[statement.name]
        self._statistics.invalidate(statement.name)
        return QueryResult([], [], rowcount=0)

    # ------------------------------------------------- optimizer statements

    def _analyze(self, statement: Analyze) -> QueryResult:
        """ANALYZE [table]: refresh the statistics catalog."""
        return QueryResult([], [], rowcount=self._refresh_statistics(statement.table))

    def _explain(self, statement: Explain) -> QueryResult:
        """EXPLAIN [ANALYZE]: optimize, compile, (optionally execute), render.

        Plain EXPLAIN never executes the statement; EXPLAIN ANALYZE executes
        it for real (DML included, matching PostgreSQL) and reports actual
        per-relation cardinalities plus wall time next to the estimates.
        """
        cache_state = self._plan_cache.peek_state(
            statement.inner_sql, self._tables, self.plan_flavor
        )
        optimized, report, cost = self._optimizer().optimize(statement.statement)
        plan = compile_statement(optimized, cost)
        self._record_report(report)

        actual = None
        if statement.analyze:
            started = time.perf_counter()
            if isinstance(plan, CompiledScript):
                cardinalities, rowcount = self._run_script_with_actuals(plan)
            elif isinstance(plan, CompiledCreateTableAs):
                cardinalities, rows = self._run_create_with_actuals(plan)
                rowcount = rows
            else:
                executed = self._execute_statement(optimized)
                cardinalities, rowcount = (), executed.rowcount
            actual = ActualRun(
                seconds=time.perf_counter() - started,
                cardinalities=tuple(cardinalities),
                rowcount=rowcount,
            )
            if self.enable_adaptive and actual.cardinalities:
                # EXPLAIN ANALYZE's measured cardinalities feed the same
                # adaptive loop as ordinary executions: corrections are
                # recorded and a cached entry for the inner text (if any)
                # is flagged for re-planning.
                self._adaptive_feedback(
                    statement.inner_sql,
                    CompiledStatement(optimized, plan, report),
                    dict(actual.cardinalities),
                )

        lines = render_explain(statement.inner_sql, report, plan, cache_state, actual)
        return QueryResult(["plan"], [(line,) for line in lines])

    def _run_script_with_actuals(self, script: CompiledScript) -> tuple[list[tuple[str, int]], int]:
        """Execute a compiled script, capturing per-block actual cardinalities."""
        cardinalities: list[tuple[str, int]] = []
        _names, columns = script.execute(
            self._tables,
            trace=lambda label, rows: cardinalities.append((label, rows)),
            pool=self.worker_pool(),
            recursion_limit=self.recursion_limit,
        )
        rowcount = len(next(iter(columns.values()))) if columns else 0
        return cardinalities, rowcount

    def _run_create_with_actuals(self, plan: CompiledCreateTableAs) -> tuple[list[tuple[str, int]], int]:
        cardinalities: list[tuple[str, int]] = []
        result = self._run_compiled_create(
            plan,
            trace=lambda label, rows: cardinalities.append((label, rows)),
            pool=self.worker_pool(),
        )
        return cardinalities, result.rowcount
