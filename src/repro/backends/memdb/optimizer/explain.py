"""EXPLAIN [ANALYZE] rendering for the memdb optimizer.

The engine hands this module the optimizer's :class:`OptimizerReport` (what
the logical rewriter and the join-order search decided), the compiled
physical plan (which carries the costed fused-vs-generic decision per
query), the plan-cache provenance of the explained SQL text, and — for
``EXPLAIN ANALYZE`` — the actual per-relation cardinalities and wall time
from a real execution.  The output is a list of text lines, returned to the
caller as ordinary query rows (one ``plan`` column), so every backend
surface that can run SQL can read plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cost import FusionDecision, JoinOrderDecision, ParallelDecision, TopKDecision
from .rewrite import RewriteLog


@dataclass(frozen=True)
class QueryPlanInfo:
    """Optimizer summary of one query block (a CTE body or the main query).

    ``estimated_input_rows`` is the pre-limit cardinality estimate — what
    EXPLAIN ANALYZE's traced actuals and the adaptive feedback loop compare
    against.  It equals ``estimated_rows`` for blocks without a LIMIT.
    """

    label: str
    estimated_rows: float
    join_order: Optional[JoinOrderDecision] = None
    estimated_input_rows: Optional[float] = None

    @property
    def feedback_rows(self) -> float:
        """The estimate comparable to a block's traced pre-limit actual."""
        if self.estimated_input_rows is not None:
            return self.estimated_input_rows
        return self.estimated_rows


@dataclass
class OptimizerReport:
    """Everything the optimizer decided about one statement."""

    rewrites: RewriteLog = field(default_factory=RewriteLog)
    queries: list[QueryPlanInfo] = field(default_factory=list)
    enabled: bool = True

    def counters(self) -> dict:
        """Flat counters for aggregation into the engine's optimizer stats."""
        counters = dict(self.rewrites.as_dict())
        counters["join_reorders"] = sum(
            1 for query in self.queries if query.join_order is not None and query.join_order.reordered
        )
        return counters


@dataclass(frozen=True)
class ActualRun:
    """Measured execution of an EXPLAIN ANALYZE statement."""

    seconds: float
    #: (label, actual row count) per query block, aligned with the report.
    cardinalities: tuple[tuple[str, int], ...] = ()
    rowcount: int = 0


def _format_rows(value: float) -> str:
    if value >= 1e15:
        return f"{value:.2e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def render_explain(
    inner_sql: str,
    report: Optional[OptimizerReport],
    plan,
    cache_state: str,
    actual: Optional[ActualRun] = None,
) -> list[str]:
    """Render an EXPLAIN (ANALYZE) result as text lines.

    ``plan`` is a :class:`~..planner.CompiledScript` /
    :class:`~..planner.CompiledCreateTableAs` or ``None`` for statements that
    run on the interpreter (DDL, INSERT, DELETE).
    """
    from ..planner import CompiledCreateTableAs, CompiledScript  # local: avoid cycle

    lines = [f"EXPLAIN {inner_sql[:100]}{'...' if len(inner_sql) > 100 else ''}"]

    if report is not None and not report.enabled:
        lines.append("optimizer: disabled (statement compiled as written)")
    elif report is not None:
        rewrite_lines = report.rewrites.entries()
        if rewrite_lines:
            lines.append("logical rewrites:")
            lines.extend(f"  - {entry}" for entry in rewrite_lines)
        else:
            lines.append("logical rewrites: none applied")

    if isinstance(plan, CompiledCreateTableAs):
        lines.append(f"materialize into table {plan.name!r}:")
        plan = plan.script

    actual_by_label = dict(actual.cardinalities) if actual is not None else {}

    if isinstance(plan, CompiledScript):
        info_by_label = (
            {query.label: query for query in report.queries} if report is not None else {}
        )
        blocks = [(name, compiled) for name, compiled in plan.ctes] + [("main", plan.query)]
        for label, compiled in blocks:
            info = info_by_label.get(label)
            header = f"{label}:"
            if info is not None:
                header += f" estimated rows ~{_format_rows(info.estimated_rows)}"
                if info.estimated_input_rows is not None:
                    header += f" (pre-limit ~{_format_rows(info.estimated_input_rows)})"
                if label in actual_by_label:
                    header += f", actual {actual_by_label[label]} (pre-limit)"
            elif label in actual_by_label:
                header += f" actual rows {actual_by_label[label]}"
            lines.append(header)
            if info is not None and info.join_order is not None:
                lines.append(f"  join order: {info.join_order.describe()}")
            lines.append(f"  physical: {_physical_description(compiled)}")
    elif plan is None:
        lines.append("physical plan: interpreted statement (no compiled plan)")

    lines.append(f"plan cache: {cache_state}")
    if actual is not None:
        lines.append(
            f"actual: {actual.rowcount} row(s) in {actual.seconds * 1000:.3f} ms"
        )
    return lines


def _physical_description(compiled) -> str:
    """One-line description of a CompiledQuery's physical strategy."""
    compound = getattr(compiled, "compound", None)
    if compound is not None:
        # A CompiledCompoundCTE: base plan + (possibly recursive) step plan.
        kind = "UNION ALL" if compound.all else "UNION"
        if getattr(compiled, "recursive", False):
            return (
                f"recursive-fixpoint ({kind},"
                f" iterations={getattr(compiled, 'last_iterations', 0)}):"
                f" base [{_physical_description(compiled.base)}]"
                f" step [{_physical_description(compiled.step)}]"
            )
        return (
            f"compound ({kind}):"
            f" [{_physical_description(compiled.base)}]"
            f" + [{_physical_description(compiled.step)}]"
        )
    topk: Optional[TopKDecision] = getattr(compiled, "topk", None)
    tail = "" if topk is None else f" -> {topk.describe()}"
    parallel: Optional[ParallelDecision] = getattr(compiled, "parallel", None)
    if parallel is not None and parallel.eligible:
        tail += f" [{parallel.describe()}]"
    decision: Optional[FusionDecision] = getattr(compiled, "fusion", None)
    if decision is not None and decision.eligible:
        return decision.describe() + tail
    joins = len(getattr(compiled, "joins", ()) or ())
    if getattr(compiled, "grouped", False):
        base = "scan"
        if joins:
            base += f" -> {joins} hash join(s)"
        return f"{base} -> hash aggregate{tail}"
    if getattr(compiled, "windowed", False):
        base = "scan"
        if joins:
            base += f" -> {joins} hash join(s)"
        return f"{base} -> window{tail}"
    if joins:
        return f"scan -> {joins} hash join(s) -> project{tail}"
    return f"scan -> project{tail}"
