"""Logical rewrite rules applied to parsed ASTs before plan compilation.

Four rules, each a pure AST-to-AST function (the node classes are frozen
dataclasses, so rewrites rebuild rather than mutate):

* **constant folding** — arithmetic / bitwise operators over numeric
  literals evaluate at optimize time with the engine's SQL semantics.  The
  translator's generated expressions are full of ``~mask`` / shifted
  constants; folding them removes a per-execution numpy broadcast + ufunc
  per constant.
* **predicate pushdown** — WHERE conjuncts that reference a single table
  move onto that table's scan (``TableSource.filter``), shrinking join
  inputs; filters sitting on a single-use CTE reference migrate into the
  CTE body's WHERE (with output names substituted by their defining
  expressions).
* **projection pruning** — CTE output columns nothing downstream reads are
  dropped from the CTE's projection, so intermediate materializations carry
  only live columns.
* **single-use CTE inlining** — a CTE that is a simple projection/filter of
  one table and is referenced exactly once is spliced into its consumer,
  removing one intermediate materialization.

Every rule is conservative: when column ownership cannot be resolved
statically (a ``*`` projection, an ambiguous bare name), the rule backs off
and leaves the statement unchanged — the differential tests assert the
rewritten statement is observationally identical to the original on SQLite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional

from ..ast_nodes import (
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CommonTableExpression,
    CompoundSelect,
    CreateTableAs,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    TableSource,
    UnaryOp,
    WindowFunction,
    WindowSpec,
    WithSelect,
)
from ..executor import column_refs, contains_aggregate, item_output_name, select_has_windows
from ..table import Table

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


# ---------------------------------------------------------------------------
# Expression utilities (shared with the cost model)
# ---------------------------------------------------------------------------


def transform_expression(
    expression: Expression, fn: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild an expression bottom-up, applying ``fn`` to every node."""
    if isinstance(expression, UnaryOp):
        rebuilt: Expression = UnaryOp(
            expression.operator, transform_expression(expression.operand, fn)
        )
    elif isinstance(expression, BinaryOp):
        rebuilt = BinaryOp(
            expression.operator,
            transform_expression(expression.left, fn),
            transform_expression(expression.right, fn),
        )
    elif isinstance(expression, FunctionCall):
        rebuilt = replace(
            expression,
            arguments=tuple(transform_expression(a, fn) for a in expression.arguments),
        )
    elif isinstance(expression, WindowFunction):
        rebuilt = replace(
            expression,
            arguments=tuple(transform_expression(a, fn) for a in expression.arguments),
            spec=WindowSpec(
                tuple(transform_expression(e, fn) for e in expression.spec.partition_by),
                tuple(
                    replace(item, expression=transform_expression(item.expression, fn))
                    for item in expression.spec.order_by
                ),
                expression.spec.frame,
            ),
        )
    elif isinstance(expression, CaseExpression):
        rebuilt = CaseExpression(
            tuple(transform_expression(c, fn) for c in expression.conditions),
            tuple(transform_expression(r, fn) for r in expression.results),
            None
            if expression.default is None
            else transform_expression(expression.default, fn),
        )
    elif isinstance(expression, IsNull):
        rebuilt = IsNull(transform_expression(expression.operand, fn), expression.negated)
    elif isinstance(expression, InList):
        rebuilt = InList(
            transform_expression(expression.operand, fn),
            tuple(transform_expression(v, fn) for v in expression.values),
            expression.negated,
        )
    else:
        rebuilt = expression
    return fn(rebuilt)


def split_conjuncts(expression: Expression) -> list[Expression]:
    """Flatten a chain of ANDs into its conjuncts."""
    if isinstance(expression, BinaryOp) and expression.operator == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: list[Expression]) -> Optional[Expression]:
    """AND a list of conjuncts back together (``None`` for the empty list)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp("and", combined, conjunct)
    return combined


# ---------------------------------------------------------------------------
# Rule 1: constant folding
# ---------------------------------------------------------------------------


def _is_numeric_literal(expression: Expression) -> bool:
    return (
        isinstance(expression, Literal)
        and isinstance(expression.value, (int, float))
        and not isinstance(expression.value, bool)
    )


def _fits_int64(value: int) -> bool:
    return _INT64_MIN <= value <= _INT64_MAX


def _fold_node(expression: Expression, counter: list[int]) -> Expression:
    """Fold one already-rebuilt node if its operands are numeric literals.

    Folding mirrors the executor's SQL semantics exactly: bitwise operators
    work on int64, integer division truncates toward zero, and anything that
    could diverge (zero divisors, int64 overflow, NULLs, comparisons whose
    boolean results feed dtype-sensitive arithmetic) is left unfolded.
    """
    if isinstance(expression, UnaryOp) and _is_numeric_literal(expression.operand):
        value = expression.operand.value  # type: ignore[union-attr]
        if expression.operator == "-":
            counter[0] += 1
            return Literal(-value)
        if expression.operator == "+":
            counter[0] += 1
            return Literal(value)
        if expression.operator == "~" and isinstance(value, int):
            counter[0] += 1
            return Literal(~value)
        return expression

    if (
        isinstance(expression, BinaryOp)
        and _is_numeric_literal(expression.left)
        and _is_numeric_literal(expression.right)
    ):
        left = expression.left.value  # type: ignore[union-attr]
        right = expression.right.value  # type: ignore[union-attr]
        operator = expression.operator
        both_int = isinstance(left, int) and isinstance(right, int)
        result: object = None
        if operator in ("+", "-", "*"):
            result = {"+": left + right, "-": left - right, "*": left * right}[operator]
        elif operator in ("&", "|", "<<", ">>") and both_int:
            if operator in ("<<", ">>") and not (0 <= right < 64):
                return expression
            result = {
                "&": left & right,
                "|": left | right,
                "<<": left << right,
                ">>": left >> right,
            }[operator]
        elif operator == "/" and right != 0:
            if both_int:
                quotient = abs(left) // abs(right)
                result = quotient if (left < 0) == (right < 0) else -quotient
            else:
                result = left / right
        else:
            return expression
        if isinstance(result, int) and not _fits_int64(result):
            return expression
        counter[0] += 1
        return Literal(result)

    return expression


def fold_expression(expression: Expression) -> tuple[Expression, int]:
    """Constant-fold an expression; returns (folded expression, #folds)."""
    counter = [0]
    folded = transform_expression(expression, lambda node: _fold_node(node, counter))
    return folded, counter[0]


# ---------------------------------------------------------------------------
# Select-wide expression mapping
# ---------------------------------------------------------------------------


def map_select_expressions(
    select: Select, fn: Callable[[Expression], Expression]
) -> Select:
    """Apply an expression transform to every expression slot of a Select."""
    items = tuple(
        item
        if isinstance(item.expression, Star)
        else replace(item, expression=fn(item.expression))
        for item in select.items
    )
    source = select.source
    if source is not None and source.filter is not None:
        source = replace(source, filter=fn(source.filter))
    joins = tuple(
        replace(
            join,
            condition=fn(join.condition),
            source=join.source
            if join.source.filter is None
            else replace(join.source, filter=fn(join.source.filter)),
        )
        for join in select.joins
    )
    return replace(
        select,
        items=items,
        source=source,
        joins=joins,
        where=None if select.where is None else fn(select.where),
        group_by=tuple(fn(e) for e in select.group_by),
        having=None if select.having is None else fn(select.having),
        order_by=tuple(replace(o, expression=fn(o.expression)) for o in select.order_by),
    )


def fold_select(select: Select) -> tuple[Select, int]:
    """Constant-fold every expression of a Select."""
    total = [0]

    def fold(expression: Expression) -> Expression:
        folded, count = fold_expression(expression)
        total[0] += count
        return folded

    return map_select_expressions(select, fold), total[0]


# ---------------------------------------------------------------------------
# Scopes: which columns does each binding expose?
# ---------------------------------------------------------------------------


def select_output_names(select: Select) -> Optional[list[str]]:
    """The result-column names of a Select, or None when a ``*`` hides them.

    Delegates to the executor's :func:`~..executor.item_output_name` so the
    optimizer's view of output names can never diverge from what actually
    materializes.
    """
    names: list[str] = []
    for position, item in enumerate(select.items):
        if isinstance(item.expression, Star):
            return None
        names.append(item_output_name(item, position))
    return names


class Scope:
    """Maps the bindings of one Select to their known column sets.

    ``None`` for a binding means "columns unknown" (e.g. a CTE projecting
    ``*``); rules treat unknown bindings as owning *every* unresolved name,
    which disables the rewrite rather than risking a wrong attribution.
    """

    def __init__(
        self,
        select: Select,
        catalog: Mapping[str, Table],
        cte_columns: Mapping[str, Optional[list[str]]],
    ) -> None:
        self.bindings: dict[str, Optional[set[str]]] = {}
        for source in self._sources(select):
            if source.name in cte_columns:
                columns = cte_columns[source.name]
                self.bindings[source.binding] = None if columns is None else set(columns)
            elif source.name in catalog:
                self.bindings[source.binding] = set(catalog[source.name].column_names)
            else:
                self.bindings[source.binding] = None

    @staticmethod
    def _sources(select: Select) -> list[TableSource]:
        sources = [select.source] if select.source is not None else []
        sources.extend(join.source for join in select.joins)
        return sources

    def owner_of(self, ref: ColumnRef) -> Optional[str]:
        """The unique binding owning a column ref, or None when unresolvable."""
        if ref.table is not None:
            return ref.table if ref.table in self.bindings else None
        owners = []
        for binding, columns in self.bindings.items():
            if columns is None:
                return None  # an opaque binding might own it
            if ref.name in columns:
                owners.append(binding)
        return owners[0] if len(owners) == 1 else None


def referenced_stored_tables(query: Select | WithSelect) -> set[str]:
    """Stored-table names a query's scans resolve against.

    CTE names shadow the catalog in definition order — exactly how both the
    interpreter and compiled plans resolve them — so this is the one walker
    the rewrite rules *and* the engine's plan-cache schema fingerprint share
    for "which catalog tables does this query actually read".
    """
    names: set[str] = set()

    def from_select(select: Select, cte_names: set[str]) -> None:
        for source in Scope._sources(select):
            if source.name not in cte_names:
                names.add(source.name)

    if isinstance(query, Select):
        from_select(query, set())
        return names
    cte_names: set[str] = set()
    for cte in query.ctes:
        if isinstance(cte.query, CompoundSelect):
            # The recursive term's self-reference resolves to the CTE's own
            # frontier, never to a stored table — shadow it.
            from_select(cte.query.left, cte_names)
            from_select(cte.query.right, cte_names | {cte.name})
        else:
            from_select(cte.query, cte_names)
        cte_names.add(cte.name)
    from_select(query.query, cte_names)
    return names


# ---------------------------------------------------------------------------
# Rule 2: predicate pushdown (into scans, then through CTEs)
# ---------------------------------------------------------------------------


def push_predicates_into_scans(
    select: Select, scope: Scope, cte_names: frozenset[str] = frozenset()
) -> tuple[Select, int]:
    """Move single-table WHERE conjuncts onto the owning table's scan.

    With joins, a pushed conjunct shrinks the join input.  Without joins
    the move is only useful when the sole source is a CTE: the parked
    filter is the vehicle :func:`push_filters_into_ctes` later migrates
    into the CTE body, so the CTE materializes already-filtered rows.
    """
    if select.where is None:
        return select, 0
    if not select.joins and (select.source is None or select.source.name not in cte_names):
        return select, 0
    if contains_aggregate(select.where):
        return select, 0
    # An unaliased self-join binds two scans to one name; a predicate
    # attributed to that binding would attach to (and filter) both sides,
    # which is not equivalent — back off.
    sources = Scope._sources(select)
    if len({source.binding for source in sources}) != len(sources):
        return select, 0

    pushed: dict[str, list[Expression]] = {}
    residual: list[Expression] = []
    for conjunct in split_conjuncts(select.where):
        refs = column_refs(conjunct)
        owners = {scope.owner_of(ref) for ref in refs}
        if len(owners) == 1 and None not in owners and refs:
            pushed.setdefault(owners.pop(), []).append(conjunct)
        else:
            residual.append(conjunct)
    if not pushed:
        return select, 0

    def attach(source: TableSource) -> TableSource:
        conjuncts = pushed.get(source.binding)
        if not conjuncts:
            return source
        existing = [source.filter] if source.filter is not None else []
        return replace(source, filter=conjoin(existing + conjuncts))

    new_source = attach(select.source) if select.source is not None else None
    new_joins = tuple(replace(join, source=attach(join.source)) for join in select.joins)
    count = sum(len(conjuncts) for conjuncts in pushed.values())
    return (
        replace(select, source=new_source, joins=new_joins, where=conjoin(residual)),
        count,
    )


def _cte_is_filter_transparent(select: Select) -> bool:
    """Can a predicate on this CTE's output move into its WHERE clause?

    Window functions block the move: their partitions and frames are built
    from the body's *unfiltered* rows, so filtering earlier would change
    every rank / running total the consumer then filters on.
    """
    return not (
        select.group_by
        or select.having is not None
        or select.distinct
        or select.limit is not None
        or select.offset is not None
        or select_has_windows(select)
        or any(
            not isinstance(item.expression, Star) and contains_aggregate(item.expression)
            for item in select.items
        )
    )


def _output_expression_map(select: Select) -> Optional[dict[str, Expression]]:
    """Output column name -> defining expression (None when ``*`` hides it)."""
    names = select_output_names(select)
    if names is None:
        return None
    return {name: item.expression for name, item in zip(names, select.items)}


def _substitute_outputs(
    expression: Expression, binding: str, outputs: dict[str, Expression]
) -> Optional[Expression]:
    """Replace refs to a CTE binding's output columns with their definitions."""
    failed = [False]

    def substitute(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and (node.table == binding or node.table is None):
            if node.name in outputs:
                return outputs[node.name]
            failed[0] = True
        elif isinstance(node, ColumnRef):
            failed[0] = True
        return node

    substituted = transform_expression(expression, substitute)
    return None if failed[0] else substituted


def push_filters_into_ctes(statement: WithSelect) -> tuple[WithSelect, int]:
    """Migrate scan filters sitting on single-use CTE references into the CTE body.

    Runs after :func:`push_predicates_into_scans`, which parks single-table
    conjuncts on the ``TableSource``; when that source is a CTE referenced
    exactly once and the CTE body is filter-transparent (no grouping /
    aggregates / DISTINCT / LIMIT), the filter moves inside — output column
    names are substituted by their defining expressions so the predicate is
    evaluated on the body's own frame, before materialization.
    """
    # CTE names shadow the catalog only for queries defined *after* them
    # (our engine resolves CTE bodies in definition order), so both the
    # use-count and the migration target are restricted to genuinely
    # resolvable references — a catalog table that merely shares a later
    # CTE's name is never confused with it.
    order = {cte.name: index for index, cte in enumerate(statement.ctes)}
    uses: dict[str, int] = {}

    def visible(name: str, consumer_index: int) -> bool:
        return name in order and order[name] < consumer_index

    for index, cte in enumerate(statement.ctes):
        for source in Scope._sources(cte.query):
            if visible(source.name, index):
                uses[source.name] = uses.get(source.name, 0) + 1
    for source in Scope._sources(statement.query):
        if source.name in order:
            uses[source.name] = uses.get(source.name, 0) + 1

    bodies = {cte.name: cte.query for cte in statement.ctes}
    moved = 0

    def migrate(source: TableSource, consumer_index: int) -> TableSource:
        nonlocal moved
        resolves_to_cte = (
            visible(source.name, consumer_index)
            if consumer_index < len(statement.ctes)
            else source.name in order
        )
        if source.filter is None or not resolves_to_cte or uses.get(source.name, 0) != 1:
            return source
        body = bodies[source.name]
        if not _cte_is_filter_transparent(body):
            return source
        outputs = _output_expression_map(body)
        if outputs is None:
            return source
        substituted = _substitute_outputs(source.filter, source.binding, outputs)
        if substituted is None:
            return source
        existing = [body.where] if body.where is not None else []
        bodies[source.name] = replace(body, where=conjoin(existing + [substituted]))
        moved += 1
        return replace(source, filter=None)

    def migrate_select(select: Select, consumer_index: int) -> Select:
        new_source = migrate(select.source, consumer_index) if select.source is not None else None
        new_joins = tuple(
            replace(join, source=migrate(join.source, consumer_index)) for join in select.joins
        )
        return replace(select, source=new_source, joins=new_joins)

    # Walk consumers in definition order so a filter can cascade through a
    # chain of single-use CTEs within one optimizer pass.
    new_ctes = []
    for index, cte in enumerate(statement.ctes):
        new_ctes.append(cte.name)
        bodies[cte.name] = migrate_select(bodies[cte.name], index)
    new_query = migrate_select(statement.query, len(statement.ctes))
    return (
        WithSelect(
            tuple(CommonTableExpression(name, bodies[name]) for name in new_ctes),
            new_query,
        ),
        moved,
    )


# ---------------------------------------------------------------------------
# Rule 3: projection (dead-column) pruning in CTEs
# ---------------------------------------------------------------------------


def prune_cte_projections(statement: WithSelect) -> tuple[WithSelect, int]:
    """Drop CTE output columns that no downstream query references."""
    cte_outputs: dict[str, Optional[list[str]]] = {
        cte.name: select_output_names(cte.query) for cte in statement.ctes
    }

    # needed[cte] = set of column names referenced downstream; None = all.
    needed: dict[str, Optional[set[str]]] = {cte.name: set() for cte in statement.ctes}

    def require_all(name: str) -> None:
        if name in needed:
            needed[name] = None

    def scan_select(select: Select) -> None:
        binding_to_cte = {}
        for source in Scope._sources(select):
            if source.name in needed:
                binding_to_cte[source.binding] = source.name

        def note_ref(ref: ColumnRef) -> None:
            if ref.table is not None:
                cte = binding_to_cte.get(ref.table)
                if cte is not None and needed[cte] is not None:
                    needed[cte].add(ref.name)
                return
            # A bare name may come from any source; require it from every
            # CTE bound here that exposes (or might expose) it.
            for binding, cte in binding_to_cte.items():
                outputs = cte_outputs[cte]
                if outputs is None:
                    require_all(cte)
                elif ref.name in outputs and needed[cte] is not None:
                    needed[cte].add(ref.name)

        def scan_expression(expression: Expression) -> None:
            for ref in column_refs(expression):
                note_ref(ref)

        for item in select.items:
            if isinstance(item.expression, Star):
                if item.expression.table is None:
                    for cte in binding_to_cte.values():
                        require_all(cte)
                else:
                    cte = binding_to_cte.get(item.expression.table)
                    if cte is not None:
                        require_all(cte)
            else:
                scan_expression(item.expression)
        for source in Scope._sources(select):
            if source.filter is not None:
                scan_expression(source.filter)
        for join in select.joins:
            scan_expression(join.condition)
        if select.where is not None:
            scan_expression(select.where)
        for key in select.group_by:
            scan_expression(key)
        if select.having is not None:
            scan_expression(select.having)
        for order in select.order_by:
            scan_expression(order.expression)

    for cte in statement.ctes:
        scan_select(cte.query)
    scan_select(statement.query)

    pruned = 0
    new_ctes = []
    for cte in statement.ctes:
        outputs = cte_outputs[cte.name]
        keep = needed[cte.name]
        if outputs is None or keep is None:
            new_ctes.append(cte)
            continue
        # DISTINCT deduplicates over the full projection: dropping a column
        # would change the row set, not just its width.
        if cte.query.distinct:
            new_ctes.append(cte)
            continue
        # The body's own ORDER BY resolves bare names through the projected
        # output columns (aliases shadow source columns), so any output it
        # names must survive pruning.
        self_needed = set(keep)
        for order in cte.query.order_by:
            for ref in column_refs(order.expression):
                if ref.table is None:
                    self_needed.add(ref.name)
        kept_items = [
            (name, item)
            for name, item in zip(outputs, cte.query.items)
            if name in self_needed
        ]
        if not kept_items:
            # A relation needs at least one column; keep the first.
            kept_items = [(outputs[0], cte.query.items[0])]
        dropped = len(cte.query.items) - len(kept_items)
        if dropped == 0:
            new_ctes.append(cte)
            continue
        pruned += dropped
        # Dropping earlier items shifts positions, which would rename
        # anonymous ``col{N}`` outputs — pin every kept item to its
        # pre-prune name with an explicit alias.
        pinned = tuple(
            item if item.alias == name else replace(item, alias=name)
            for name, item in kept_items
        )
        new_ctes.append(CommonTableExpression(cte.name, replace(cte.query, items=pinned)))
    return WithSelect(tuple(new_ctes), statement.query), pruned


# ---------------------------------------------------------------------------
# Rule 4: single-use CTE inlining
# ---------------------------------------------------------------------------


def _cte_is_inlinable(select: Select) -> bool:
    """Inlinable = a plain projection/filter over exactly one table.

    Bodies with window functions never inline: splicing a window expression
    into a consumer's WHERE/GROUP BY would move it out of the SELECT list
    (illegal), and even a projection splice would re-scope its partitions
    to the consumer's joined/filtered rows.
    """
    return (
        select.source is not None
        and not select.joins
        and not select.group_by
        and select.having is None
        and not select.distinct
        and select.limit is None
        and select.offset is None
        and not select.order_by
        and select.source.filter is None
        and select_output_names(select) is not None
        and not select_has_windows(select)
        and not any(contains_aggregate(item.expression) for item in select.items)
    )


def _consumer_references(select: Select, cte_name: str) -> int:
    return sum(1 for source in Scope._sources(select) if source.name == cte_name)


def inline_single_use_ctes(statement: WithSelect) -> tuple[WithSelect, int]:
    """Splice single-use, single-table CTEs into their consumer.

    Only queries defined *after* a CTE can resolve its name (an earlier CTE
    body referencing the same name sees a catalog table instead), so
    consumer detection is definition-order-aware.
    """
    ctes = list(statement.ctes)
    query = statement.query
    inlined = 0

    changed = True
    while changed:
        changed = False
        for index, cte in enumerate(ctes):
            if not _cte_is_inlinable(cte.query):
                continue
            consumers = [
                ("cte", position)
                for position, other in enumerate(ctes)
                if position > index and _consumer_references(other.query, cte.name) > 0
            ] + (
                [("main", -1)] if _consumer_references(query, cte.name) > 0 else []
            )
            if len(consumers) != 1:
                continue
            kind, position = consumers[0]
            # The spliced-in table name must resolve to the same relation in
            # the consumer's scope as it did in the producer's: a CTE with
            # that name defined between producer and consumer (or visible to
            # only one of them) would capture the reference.
            inner_name = cte.query.source.name
            visibility_differs = False
            for j, other in enumerate(ctes):
                if j == index or other.name != inner_name:
                    continue
                visible_to_producer = j < index
                visible_to_consumer = kind == "main" or j < position
                if visible_to_producer != visible_to_consumer:
                    visibility_differs = True
                    break
            if visibility_differs:
                continue
            consumer = query if kind == "main" else ctes[position].query
            rewritten = _inline_into(consumer, cte)
            if rewritten is None:
                continue
            if kind == "main":
                query = rewritten
            else:
                ctes[position] = CommonTableExpression(ctes[position].name, rewritten)
            del ctes[index]
            inlined += 1
            changed = True
            break

    return WithSelect(tuple(ctes), query), inlined


def _inline_into(consumer: Select, cte: CommonTableExpression) -> Optional[Select]:
    """Rewrite one consumer Select with the CTE spliced in, or None if unsafe."""
    body = cte.query
    outputs = _output_expression_map(body)
    if outputs is None:
        return None
    # A `*` in the consumer would expand the underlying table's columns
    # instead of the CTE's projection — refuse.
    if any(isinstance(item.expression, Star) for item in consumer.items):
        return None

    # Find the single reference and its binding.
    sources = Scope._sources(consumer)
    matches = [source for source in sources if source.name == cte.name]
    if len(matches) != 1:
        return None
    reference = matches[0]
    binding = reference.binding

    inner = body.source
    inner_binding = inner.binding
    # The inlined table's binding must not collide with any other binding.
    other_bindings = {source.binding for source in sources if source is not reference}
    if inner_binding in other_bindings:
        return None

    # The body's bare column refs resolved against its single source; once
    # spliced into the consumer (possibly a multi-table scope where bare
    # names are ambiguous) they must be qualified with that source's
    # binding to keep resolving to the same columns.
    def qualify(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and node.table is None:
            return ColumnRef(node.name, table=inner_binding)
        return node

    outputs = {
        name: transform_expression(expression, qualify)
        for name, expression in outputs.items()
    }

    # A bare ORDER BY name that matches one of the consumer's *output*
    # names resolves to the output column (outputs shadow source columns in
    # the ordering frame, before and after inlining), so those refs are
    # left untouched — substituting them would point a grouped/DISTINCT
    # consumer's ORDER BY at source columns that no longer exist after
    # aggregation.  Every other expression slot resolves against the source
    # frame and is substituted.
    consumer_output_names = {
        item_output_name(item, position)
        for position, item in enumerate(consumer.items)
        if not isinstance(item.expression, Star)
    }

    def order_protected(ref: ColumnRef) -> bool:
        return ref.table is None and ref.name in consumer_output_names

    # Bare column references are only safe to substitute when the CTE is the
    # consumer's sole source: with joins in play a bare name might belong to
    # (or collide with) another table once the underlying table's columns
    # replace the CTE's projection, so back off entirely.
    all_refs = [
        ref
        for item in consumer.items
        if not isinstance(item.expression, Star)
        for ref in column_refs(item.expression)
    ]
    for expr in [consumer.where, consumer.having, *consumer.group_by]:
        if expr is not None:
            all_refs.extend(column_refs(expr))
    for order in consumer.order_by:
        all_refs.extend(ref for ref in column_refs(order.expression) if not order_protected(ref))
    for join in consumer.joins:
        all_refs.extend(column_refs(join.condition))
    for source in sources:
        if source.filter is not None:
            all_refs.extend(column_refs(source.filter))
    has_bare = any(ref.table is None for ref in all_refs)
    if consumer.joins and has_bare:
        return None
    if not consumer.joins and any(
        ref.table is None and ref.name not in outputs for ref in all_refs
    ):
        return None

    failed = [False]

    def substitute(node: Expression) -> Expression:
        if isinstance(node, ColumnRef):
            if node.table == binding:
                if node.name in outputs:
                    return outputs[node.name]
                failed[0] = True
            elif node.table is None and node.name in outputs:
                return outputs[node.name]
        return node

    def substitute_order(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and order_protected(node):
            return node
        return substitute(node)

    def rewrite_expr(expression: Expression) -> Expression:
        return transform_expression(expression, substitute)

    def rewrite_order_expr(expression: Expression) -> Expression:
        return transform_expression(expression, substitute_order)

    # Keep the consumer's visible column names stable across substitution.
    def rewrite_item(item: SelectItem, position: int) -> SelectItem:
        if isinstance(item.expression, Star):
            return item
        name = item.alias
        if name is None and isinstance(item.expression, ColumnRef):
            name = item.expression.name
        new_expression = rewrite_expr(item.expression)
        if new_expression is item.expression:
            return item
        return SelectItem(new_expression, name or item.alias)

    new_items = tuple(rewrite_item(item, i) for i, item in enumerate(consumer.items))

    # Merge the body's WHERE and any pushed filter on the reference into the
    # replacement scan's filter (all single-table by construction).
    filters: list[Expression] = []
    if body.where is not None:
        filters.append(transform_expression(body.where, qualify))
    if reference.filter is not None:
        filtered = _substitute_outputs(reference.filter, binding, outputs)
        if filtered is None:
            return None
        filters.append(filtered)
    replacement = TableSource(inner.name, inner.alias, filter=conjoin(filters))

    def rewrite_source(source: TableSource) -> TableSource:
        if source is reference:
            return replacement
        if source.filter is not None:
            return replace(source, filter=rewrite_expr(source.filter))
        return source

    new_source = rewrite_source(consumer.source) if consumer.source is not None else None
    new_joins = tuple(
        replace(join, source=rewrite_source(join.source), condition=rewrite_expr(join.condition))
        for join in consumer.joins
    )
    rewritten = replace(
        consumer,
        items=new_items,
        source=new_source,
        joins=new_joins,
        where=None if consumer.where is None else rewrite_expr(consumer.where),
        group_by=tuple(rewrite_expr(e) for e in consumer.group_by),
        having=None if consumer.having is None else rewrite_expr(consumer.having),
        order_by=tuple(
            replace(o, expression=rewrite_order_expr(o.expression)) for o in consumer.order_by
        ),
    )
    return None if failed[0] else rewritten


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


@dataclass
class RewriteLog:
    """What the rewriter did to one statement (rendered by EXPLAIN)."""

    constant_folds: int = 0
    predicates_pushed: int = 0
    cte_filters_pushed: int = 0
    columns_pruned: int = 0
    ctes_inlined: int = 0

    def entries(self) -> list[str]:
        """Human-readable one-liners for the applied rules."""
        lines = []
        if self.constant_folds:
            lines.append(f"constant folding: {self.constant_folds} expression(s)")
        if self.ctes_inlined:
            lines.append(f"cte inlining: {self.ctes_inlined} single-use CTE(s)")
        if self.predicates_pushed:
            lines.append(f"predicate pushdown: {self.predicates_pushed} conjunct(s) onto scans")
        if self.cte_filters_pushed:
            lines.append(f"cte pushdown: {self.cte_filters_pushed} filter(s) into CTE bodies")
        if self.columns_pruned:
            lines.append(f"projection pruning: {self.columns_pruned} dead column(s)")
        return lines

    def total(self) -> int:
        return (
            self.constant_folds
            + self.predicates_pushed
            + self.cte_filters_pushed
            + self.columns_pruned
            + self.ctes_inlined
        )

    def as_dict(self) -> dict:
        return {
            "constant_folds": self.constant_folds,
            "predicates_pushed": self.predicates_pushed,
            "cte_filters_pushed": self.cte_filters_pushed,
            "columns_pruned": self.columns_pruned,
            "ctes_inlined": self.ctes_inlined,
        }


def rewrite_query(
    query: Select | WithSelect,
    catalog: Mapping[str, Table],
) -> tuple[Select | WithSelect, RewriteLog]:
    """Apply every rewrite rule to one query; returns (query, log)."""
    log = RewriteLog()

    if isinstance(query, WithSelect):
        if query.recursive or any(
            isinstance(cte.query, CompoundSelect) or cte.columns for cte in query.ctes
        ):
            # Recursive / UNION-bodied / column-aliased WITH clauses only get
            # constant folding: the structural rules (inlining, pushdown,
            # pruning) all assume single-Select bodies whose output names are
            # their item names, and a recursive term's self-reference must
            # never be rewritten into a scan of a stored table.
            new_ctes = []
            for cte in query.ctes:
                if isinstance(cte.query, CompoundSelect):
                    left, left_folds = fold_select(cte.query.left)
                    right, right_folds = fold_select(cte.query.right)
                    log.constant_folds += left_folds + right_folds
                    body: Select | CompoundSelect = CompoundSelect(
                        left, right, cte.query.all
                    )
                else:
                    body, folds = fold_select(cte.query)
                    log.constant_folds += folds
                new_ctes.append(CommonTableExpression(cte.name, body, cte.columns))
            folded_main, folds = fold_select(query.query)
            log.constant_folds += folds
            return WithSelect(tuple(new_ctes), folded_main, query.recursive), log

        new_ctes = []
        for cte in query.ctes:
            folded, folds = fold_select(cte.query)
            log.constant_folds += folds
            new_ctes.append(CommonTableExpression(cte.name, folded))
        folded_main, folds = fold_select(query.query)
        log.constant_folds += folds
        statement: WithSelect = WithSelect(tuple(new_ctes), folded_main)

        # Duplicate CTE names (last definition wins at execution) defeat the
        # name-keyed bookkeeping of the WITH-level rules — skip them.  Scope
        # construction below remains correct because it tracks the last
        # definition seen so far, matching execution order.
        names = [cte.name for cte in statement.ctes]
        unique_names = len(set(names)) == len(names)

        if unique_names:
            statement, inlined = inline_single_use_ctes(statement)
            log.ctes_inlined += inlined

        cte_columns: dict[str, Optional[list[str]]] = {}
        new_ctes = []
        for cte in statement.ctes:
            scope = Scope(cte.query, catalog, cte_columns)
            pushed_query, pushed = push_predicates_into_scans(
                cte.query, scope, frozenset(cte_columns)
            )
            log.predicates_pushed += pushed
            new_ctes.append(CommonTableExpression(cte.name, pushed_query))
            cte_columns[cte.name] = select_output_names(pushed_query)
        scope = Scope(statement.query, catalog, cte_columns)
        pushed_main, pushed = push_predicates_into_scans(
            statement.query, scope, frozenset(cte_columns)
        )
        log.predicates_pushed += pushed
        statement = WithSelect(tuple(new_ctes), pushed_main)

        if unique_names:
            statement, moved = push_filters_into_ctes(statement)
            log.cte_filters_pushed += moved

            statement, pruned = prune_cte_projections(statement)
            log.columns_pruned += pruned

        if not statement.ctes:
            return statement.query, log
        return statement, log

    folded, folds = fold_select(query)
    log.constant_folds += folds
    scope = Scope(folded, catalog, {})
    pushed_query, pushed = push_predicates_into_scans(folded, scope)
    log.predicates_pushed += pushed
    return pushed_query, log


def rewrite_statement(
    statement: Statement, catalog: Mapping[str, Table]
) -> tuple[Statement, RewriteLog]:
    """Rewrite any statement kind the optimizer covers (others pass through)."""
    if isinstance(statement, (Select, WithSelect)):
        return rewrite_query(statement, catalog)
    if isinstance(statement, CreateTableAs):
        query, log = rewrite_query(statement.query, catalog)
        return replace(statement, query=query), log
    return statement, RewriteLog()
