"""Statistics catalog for the memdb cost-based optimizer.

One :class:`TableStats` per analyzed table, holding the row count plus
per-column :class:`ColumnStats`.  Beyond the min / max / NDV / null-fraction
summary, ``ANALYZE`` now collects a *distribution* per column:

* a **most-common-value (MCV) list** — the values whose frequency clearly
  exceeds the uniform expectation, each with its fraction of the table.
  Equality predicates on skewed columns stop assuming uniformity;
* an **equi-depth histogram** over the remaining (non-MCV, non-null) values
  of numeric columns — bucket boundaries chosen so every bucket holds the
  same number of rows, which keeps resolution where the data actually is.
  Range predicates interpolate inside the matching bucket instead of
  interpolating over the whole [min, max] span.

Statistics are refreshed explicitly by the ``ANALYZE`` statement and
invalidated automatically whenever the engine mutates a table (INSERT /
DELETE / DROP / CREATE ... AS), so the cost model can trust that a *present*
entry describes the current data.  When no entry exists the cost model falls
back to the live catalog row count and conservative defaults — an
un-analyzed database still optimizes, just with looser bounds.

The catalog additionally stores the **adaptive feedback** corrections: when
an execution (or ``EXPLAIN ANALYZE``) observes a block producing far more
rows than estimated, the engine records a per-``(table, predicate shape)``
correction factor here.  The cost model multiplies matching estimates by the
factor on the next planning pass, so a re-planned query does not repeat the
misestimate.  Corrections are keyed by the *shape* of the predicate (columns
and operators, literals elided) because that is what survives re-planning,
and they are dropped together with the table's statistics on DML — fresh
data invalidates old observations exactly like it invalidates old
histograms (the incremental, update-aware view of query answering).

Corrections also *age*: a workload can drift back (literals move into a
sparse region, correlated predicates stop correlating) without any DML ever
touching the table, which would otherwise pin a stale pessimistic factor
forever.  :meth:`StatisticsCatalog.observe_correction` watches every
corrected block's actual-vs-estimated ratio; after
:data:`CORRECTION_DECAY_AFTER` consecutive gross overestimates the factor
decays toward 1 (re-anchored to the observed level), so estimates recover
for workloads that drift both ways.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..column import DictArray
from ..table import Table

#: Maximum number of most-common values kept per column.
MCV_LIST_SIZE = 8
#: A value becomes an MCV only when its frequency exceeds the uniform
#: expectation by this factor (PostgreSQL uses a similar over-average rule);
#: uniform columns therefore keep an empty MCV list and a pure histogram.
MCV_OVER_UNIFORM = 1.25
#: Number of equi-depth histogram buckets.
HISTOGRAM_BUCKETS = 16
#: Corrections are clamped into this range (a correction can only *raise*
#: an estimate: the UES discipline guarantees estimates never underestimate
#: with fresh statistics, so only observed underestimates are actionable).
CORRECTION_MAX = 1e9
#: Consecutive gross-overestimate observations of a corrected block before
#: its factor decays: one outlier execution (an unusually selective literal)
#: must not throw away a correction the rest of the workload still needs.
CORRECTION_DECAY_AFTER = 3


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics plus distribution sketch of one column."""

    name: str
    #: numpy dtype kind: "i" (int), "f" (float), "O" (object/text).
    kind: str
    ndv: int
    null_fraction: float
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    #: (value, fraction of *all* rows) for the most common values.
    mcv: tuple[tuple[object, float], ...] = ()
    #: Equi-depth bucket boundaries (len = buckets + 1) over the non-MCV,
    #: non-null values of a numeric column; empty when not collected.
    histogram: tuple[float, ...] = ()
    #: Fraction of all rows covered by the histogram population.
    histogram_fraction: float = 0.0

    # ----------------------------------------------------- distribution math

    @property
    def non_null_fraction(self) -> float:
        return max(0.0, 1.0 - self.null_fraction)

    @property
    def mcv_fraction(self) -> float:
        """Total fraction of rows held by the MCV list."""
        return float(sum(fraction for _value, fraction in self.mcv))

    def has_distribution(self) -> bool:
        """True when ANALYZE collected an MCV list or histogram."""
        return bool(self.mcv) or bool(self.histogram)

    def eq_fraction(self, value: object) -> Optional[float]:
        """Estimated fraction of rows equal to ``value`` (None = no info).

        MCV hits return the measured frequency; misses spread the non-MCV
        mass uniformly over the remaining distinct values.  When the MCV
        list is exhaustive (``ndv`` values all listed) an unseen literal
        matches nothing.
        """
        if not self.has_distribution():
            if self.ndv > 0:
                return self.non_null_fraction / self.ndv
            return None
        for candidate, fraction in self.mcv:
            if candidate == value:
                return fraction
        remaining_ndv = self.ndv - len(self.mcv)
        if remaining_ndv <= 0:
            return 0.0
        remaining_mass = max(0.0, self.non_null_fraction - self.mcv_fraction)
        return remaining_mass / remaining_ndv

    def _fraction_at_most(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of *all* rows with column {<, <=} value."""
        total = 0.0
        for candidate, fraction in self.mcv:
            if not isinstance(candidate, (int, float)):
                continue
            if candidate < value or (inclusive and candidate == value):
                total += fraction
        bounds = self.histogram
        if bounds and self.histogram_fraction > 0.0:
            if value < bounds[0]:
                covered = 0.0
            elif value >= bounds[-1]:
                covered = 1.0
            else:
                bucket = max(0, bisect_right(bounds, value) - 1)
                bucket = min(bucket, len(bounds) - 2)
                low, high = bounds[bucket], bounds[bucket + 1]
                within = 1.0 if high <= low else (value - low) / (high - low)
                covered = (bucket + within) / (len(bounds) - 1)
            total += covered * self.histogram_fraction
        return total

    def range_fraction(self, operator: str, value: object) -> Optional[float]:
        """Estimated selectivity of ``column <op> value`` from the sketch.

        Returns ``None`` when no distribution was collected or the literal
        is not numeric, signalling the caller to use its fallback model.
        """
        if self.kind == "O" or not self.has_distribution():
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        literal = float(value)
        if operator == "<":
            fraction = self._fraction_at_most(literal, inclusive=False)
        elif operator == "<=":
            fraction = self._fraction_at_most(literal, inclusive=True)
        elif operator == ">":
            fraction = self.non_null_fraction - self._fraction_at_most(literal, inclusive=True)
        elif operator == ">=":
            fraction = self.non_null_fraction - self._fraction_at_most(literal, inclusive=False)
        else:
            return None
        return min(1.0, max(0.0, fraction))


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics of one analyzed table."""

    table: str
    row_count: int
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        """Statistics of one column, or ``None`` when unknown."""
        return self.columns.get(name)

    def frequency(self, name: str) -> float:
        """Estimated max frequency of a column's values (>= 1).

        With an MCV list the top value's measured frequency is the exact
        maximum; otherwise rows / NDV is the uniform approximation.
        """
        stats = self.columns.get(name)
        if stats is None or stats.ndv <= 0:
            return float(max(self.row_count, 1))
        if stats.mcv:
            top = max(fraction for _value, fraction in stats.mcv)
            return max(1.0, top * self.row_count)
        return max(1.0, self.row_count / stats.ndv)


def _distribution(
    values: np.ndarray, size: int
) -> tuple[tuple[tuple[object, float], ...], tuple[float, ...], float]:
    """MCV list + equi-depth histogram of one numeric column's non-null values."""
    total = len(values)
    if total == 0 or size == 0:
        return (), (), 0.0
    unique, counts = np.unique(values, return_counts=True)
    mcv: list[tuple[object, float]] = []
    mcv_values: set[float] = set()
    if len(unique) > 1:
        uniform = total / len(unique)
        order = np.argsort(counts)[::-1]
        for index in order[:MCV_LIST_SIZE]:
            count = int(counts[index])
            if count < 2 or count < uniform * MCV_OVER_UNIFORM:
                break
            value = unique[index].item()
            mcv.append((value, count / size))
            mcv_values.add(value)
    if mcv:
        keep = ~np.isin(values, np.asarray(sorted(mcv_values)))
        remaining = values[keep]
    else:
        remaining = values
    histogram: tuple[float, ...] = ()
    histogram_fraction = 0.0
    if len(remaining) >= 2 and len(np.unique(remaining)) >= 2:
        buckets = min(HISTOGRAM_BUCKETS, max(1, len(remaining) // 2))
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        histogram = tuple(float(b) for b in np.quantile(remaining, quantiles))
        histogram_fraction = len(remaining) / size
    return tuple(mcv), histogram, histogram_fraction


def _object_mcv(non_null: list[object], size: int) -> tuple[tuple[object, float], ...]:
    """MCV list of an object (text) column."""
    if not non_null or size == 0:
        return ()
    counter = Counter(non_null)
    if len(counter) <= 1:
        return ()
    uniform = len(non_null) / len(counter)
    mcv = []
    for value, count in counter.most_common(MCV_LIST_SIZE):
        if count < 2 or count < uniform * MCV_OVER_UNIFORM:
            break
        mcv.append((value, count / size))
    return tuple(mcv)


def _dict_mcv(
    counts: np.ndarray, dictionary: np.ndarray, non_null_count: int, size: int
) -> tuple[tuple[object, float], ...]:
    """MCV list straight from dictionary code counts (no decode pass)."""
    ndv = int((counts > 0).sum())
    if ndv <= 1 or size == 0:
        return ()
    uniform = non_null_count / ndv
    order = np.argsort(-counts, kind="stable")
    mcv: list[tuple[object, float]] = []
    for index in order[:MCV_LIST_SIZE]:
        count = int(counts[index])
        if count < 2 or count < uniform * MCV_OVER_UNIFORM:
            break
        mcv.append((str(dictionary[index]), count / size))
    return tuple(mcv)


def _column_stats(name: str, values: np.ndarray) -> ColumnStats:
    """Compute min/max/NDV/null-fraction plus the distribution sketch."""
    size = int(len(values))
    if isinstance(values, DictArray):
        # Dictionary-encoded text: NDV and the MCV list fall out of one
        # bincount over the codes — *exact*, and no object materialization.
        codes = values.codes
        valid = codes >= 0
        non_null_count = int(valid.sum())
        null_fraction = 0.0 if size == 0 else (size - non_null_count) / size
        if non_null_count:
            counts = np.bincount(codes[valid], minlength=len(values.dictionary))
        else:
            counts = np.zeros(len(values.dictionary), dtype=np.int64)
        return ColumnStats(
            name,
            "O",
            ndv=int((counts > 0).sum()),
            null_fraction=null_fraction,
            mcv=_dict_mcv(counts, values.dictionary, non_null_count, size),
        )
    if values.dtype == object:
        non_null = [value for value in values.tolist() if value is not None]
        ndv = len(set(non_null))
        null_fraction = 0.0 if size == 0 else (size - len(non_null)) / size
        return ColumnStats(
            name, "O", ndv, null_fraction, mcv=_object_mcv(non_null, size)
        )
    if values.dtype.kind == "f":
        nan_mask = np.isnan(values)
        non_null = values[~nan_mask]
        null_fraction = 0.0 if size == 0 else float(nan_mask.sum()) / size
    else:
        non_null = values
        null_fraction = 0.0
    if len(non_null) == 0:
        return ColumnStats(name, values.dtype.kind, 0, null_fraction)
    mcv, histogram, histogram_fraction = _distribution(non_null, size)
    return ColumnStats(
        name,
        values.dtype.kind,
        ndv=int(len(np.unique(non_null))),
        null_fraction=null_fraction,
        minimum=float(non_null.min()),
        maximum=float(non_null.max()),
        mcv=mcv,
        histogram=histogram,
        histogram_fraction=histogram_fraction,
    )


class StatisticsCatalog:
    """Per-database store of table statistics (the ANALYZE target).

    The catalog also keeps counters (analyze runs, invalidations, feedback
    events) that the benchmarking report surfaces next to the plan-cache
    statistics, plus the adaptive-feedback correction factors described in
    the module docstring.
    """

    __slots__ = (
        "_tables",
        "_corrections",
        "_overestimate_streaks",
        "analyze_count",
        "invalidation_count",
        "feedback_count",
        "decay_count",
    )

    def __init__(self) -> None:
        self._tables: dict[str, TableStats] = {}
        #: (table name, predicate shape) -> multiplicative correction (>= 1).
        self._corrections: dict[tuple[str, str], float] = {}
        #: Consecutive observations where a corrected estimate grossly
        #: overshot the actual (the decay/aging trigger).
        self._overestimate_streaks: dict[tuple[str, str], int] = {}
        self.analyze_count = 0
        self.invalidation_count = 0
        self.feedback_count = 0
        self.decay_count = 0

    def analyze(self, table: Table) -> TableStats:
        """Compute and store fresh statistics for one table.

        Fresh statistics supersede any feedback recorded against the old
        data, so the table's corrections are dropped alongside.
        """
        stats = TableStats(
            table=table.name,
            row_count=table.num_rows,
            columns={
                name: _column_stats(name, table.column(name)) for name in table.column_names
            },
        )
        self._tables[table.name] = stats
        self._drop_corrections(table.name)
        self.analyze_count += 1
        return stats

    def get(self, name: str) -> Optional[TableStats]:
        """Stored statistics of one table (``None`` when never analyzed / stale)."""
        return self._tables.get(name)

    def invalidate(self, name: str) -> None:
        """Drop a table's statistics and corrections (engine calls on DML/DDL)."""
        if self._tables.pop(name, None) is not None:
            self.invalidation_count += 1
        self._drop_corrections(name)

    def clear(self) -> None:
        """Drop every entry (database teardown)."""
        if self._tables:
            self.invalidation_count += len(self._tables)
        self._tables.clear()
        self._corrections.clear()
        self._overestimate_streaks.clear()

    def table_names(self) -> list[str]:
        """Names of all analyzed tables."""
        return sorted(self._tables)

    # -------------------------------------------------- adaptive corrections

    def record_correction(self, table: str, shape: str, ratio: float) -> float:
        """Fold an observed actual/estimated ratio into a correction factor.

        The stored factor composes multiplicatively: the estimate that
        produced ``ratio`` already included the previous factor, so the new
        factor is ``old * ratio``.  Factors never drop below 1 (upper-bound
        estimates are allowed to overestimate) and are clamped above.
        Returns the stored factor.
        """
        key = (table, shape)
        updated = self._corrections.get(key, 1.0) * max(ratio, 0.0)
        updated = min(max(updated, 1.0), CORRECTION_MAX)
        self._corrections[key] = updated
        self._overestimate_streaks.pop(key, None)
        self.feedback_count += 1
        return updated

    def observe_correction(self, table: str, shape: str, ratio: float, threshold: float) -> float | None:
        """Age a correction from one observed actual/estimated ``ratio``.

        The decay half of the feedback loop (record_correction is the
        growth half): a workload that drifted *down* again — the data
        shrank back, or the literals moved to a sparse region — keeps
        producing ``ratio`` far below 1 against the corrected estimate.
        After :data:`CORRECTION_DECAY_AFTER` *consecutive* observations
        where the estimate overshot by more than ``threshold``x, the factor
        re-anchors to the observed level (``factor * ratio``, clamped to
        >= 1), so estimates recover instead of staying pessimized forever.
        Any observation inside the threshold band resets the streak.

        Returns the decayed factor, or ``None`` when nothing changed.
        """
        key = (table, shape)
        factor = self._corrections.get(key)
        if factor is None or factor <= 1.0:
            self._overestimate_streaks.pop(key, None)
            return None
        if ratio * max(threshold, 1.0) > 1.0:
            # The corrected estimate is within a threshold factor of the
            # actual (or still underestimating): the correction is earning
            # its keep, so the streak restarts.
            self._overestimate_streaks.pop(key, None)
            return None
        streak = self._overestimate_streaks.get(key, 0) + 1
        if streak < CORRECTION_DECAY_AFTER:
            self._overestimate_streaks[key] = streak
            return None
        self._overestimate_streaks.pop(key, None)
        decayed = min(max(factor * max(ratio, 0.0), 1.0), CORRECTION_MAX)
        self._corrections[key] = decayed
        self.decay_count += 1
        return decayed

    def correction(self, table: str, shape: str) -> float:
        """The correction factor for one (table, predicate shape), default 1."""
        return self._corrections.get((table, shape), 1.0)

    def corrections(self) -> dict[tuple[str, str], float]:
        """A snapshot of every stored correction factor."""
        return dict(self._corrections)

    def _drop_corrections(self, table: str) -> None:
        for key in [key for key in self._corrections if key[0] == table]:
            del self._corrections[key]
        for key in [key for key in self._overestimate_streaks if key[0] == table]:
            del self._overestimate_streaks[key]

    # --------------------------------------------------------------- summary

    def summary(self) -> dict:
        """Counters plus a compact per-table digest (for reports / sessions)."""
        return {
            "analyzed_tables": len(self._tables),
            "analyze_count": self.analyze_count,
            "invalidation_count": self.invalidation_count,
            "feedback_count": self.feedback_count,
            "decay_count": self.decay_count,
            "corrections": {
                f"{table}|{shape}": factor
                for (table, shape), factor in sorted(self._corrections.items())
            },
            "tables": {
                name: {
                    "rows": stats.row_count,
                    "columns": {
                        column: {
                            "ndv": cs.ndv,
                            "null_fraction": cs.null_fraction,
                            "min": cs.minimum,
                            "max": cs.maximum,
                            "mcv": len(cs.mcv),
                            "histogram_buckets": max(0, len(cs.histogram) - 1),
                        }
                        for column, cs in stats.columns.items()
                    },
                }
                for name, stats in sorted(self._tables.items())
            },
        }
