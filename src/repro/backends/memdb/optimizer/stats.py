"""Statistics catalog for the memdb cost-based optimizer.

One :class:`TableStats` per analyzed table, holding the row count plus
per-column :class:`ColumnStats` (min / max / number of distinct values /
null fraction).  Statistics are refreshed explicitly by the ``ANALYZE``
statement and invalidated automatically whenever the engine mutates a table
(INSERT / DELETE / DROP / CREATE ... AS), so the cost model can trust that a
*present* entry describes the current data.  When no entry exists the cost
model falls back to the live catalog row count and conservative defaults —
an un-analyzed database still optimizes, just with looser bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column."""

    name: str
    #: numpy dtype kind: "i" (int), "f" (float), "O" (object/text).
    kind: str
    ndv: int
    null_fraction: float
    minimum: Optional[float] = None
    maximum: Optional[float] = None


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics of one analyzed table."""

    table: str
    row_count: int
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        """Statistics of one column, or ``None`` when unknown."""
        return self.columns.get(name)

    def frequency(self, name: str) -> float:
        """Estimated max frequency (rows / NDV) of a column's values (>= 1)."""
        stats = self.columns.get(name)
        if stats is None or stats.ndv <= 0:
            return float(max(self.row_count, 1))
        return max(1.0, self.row_count / stats.ndv)


def _column_stats(name: str, values: np.ndarray) -> ColumnStats:
    """Compute min/max/NDV/null-fraction for one numpy column."""
    size = int(len(values))
    if values.dtype == object:
        non_null = [value for value in values.tolist() if value is not None]
        ndv = len(set(non_null))
        null_fraction = 0.0 if size == 0 else (size - len(non_null)) / size
        return ColumnStats(name, "O", ndv, null_fraction)
    if values.dtype.kind == "f":
        nan_mask = np.isnan(values)
        non_null = values[~nan_mask]
        null_fraction = 0.0 if size == 0 else float(nan_mask.sum()) / size
    else:
        non_null = values
        null_fraction = 0.0
    if len(non_null) == 0:
        return ColumnStats(name, values.dtype.kind, 0, null_fraction)
    return ColumnStats(
        name,
        values.dtype.kind,
        ndv=int(len(np.unique(non_null))),
        null_fraction=null_fraction,
        minimum=float(non_null.min()),
        maximum=float(non_null.max()),
    )


class StatisticsCatalog:
    """Per-database store of table statistics (the ANALYZE target).

    The catalog also keeps counters (analyze runs, invalidations) that the
    benchmarking report surfaces next to the plan-cache statistics.
    """

    __slots__ = ("_tables", "analyze_count", "invalidation_count")

    def __init__(self) -> None:
        self._tables: dict[str, TableStats] = {}
        self.analyze_count = 0
        self.invalidation_count = 0

    def analyze(self, table: Table) -> TableStats:
        """Compute and store fresh statistics for one table."""
        stats = TableStats(
            table=table.name,
            row_count=table.num_rows,
            columns={
                name: _column_stats(name, table.column(name)) for name in table.column_names
            },
        )
        self._tables[table.name] = stats
        self.analyze_count += 1
        return stats

    def get(self, name: str) -> Optional[TableStats]:
        """Stored statistics of one table (``None`` when never analyzed / stale)."""
        return self._tables.get(name)

    def invalidate(self, name: str) -> None:
        """Drop the statistics of one table (called by the engine on DML/DDL)."""
        if self._tables.pop(name, None) is not None:
            self.invalidation_count += 1

    def clear(self) -> None:
        """Drop every entry (database teardown)."""
        if self._tables:
            self.invalidation_count += len(self._tables)
        self._tables.clear()

    def table_names(self) -> list[str]:
        """Names of all analyzed tables."""
        return sorted(self._tables)

    def summary(self) -> dict:
        """Counters plus a compact per-table digest (for reports / sessions)."""
        return {
            "analyzed_tables": len(self._tables),
            "analyze_count": self.analyze_count,
            "invalidation_count": self.invalidation_count,
            "tables": {
                name: {
                    "rows": stats.row_count,
                    "columns": {
                        column: {
                            "ndv": cs.ndv,
                            "null_fraction": cs.null_fraction,
                            "min": cs.minimum,
                            "max": cs.maximum,
                        }
                        for column, cs in stats.columns.items()
                    },
                }
                for name, stats in sorted(self._tables.items())
            },
        }
