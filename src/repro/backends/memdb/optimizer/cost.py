"""Cost model: cardinality estimation, join ordering, operator choice.

Cardinalities follow the UES ("upper-bound estimation") discipline from the
pessimistic-optimization literature: a join's size is bounded by

    |L JOIN R|  <=  min(|L| * f_R,  |R| * f_L)

where ``f_X`` is the maximum frequency of the join key on side ``X``
(approximated as ``rows / NDV`` from the statistics catalog, or the side's
row count when the key is opaque).  Upper bounds never *under*-estimate, so
the greedy join-order search — repeatedly appending the eligible join with
the smallest bound — cannot be lured into a blow-up by an optimistic guess,
which is the property that makes UES robust without histograms.

Histograms refine the bounds without breaking them: equality and range
selectivities consult the per-column MCV list and equi-depth histogram
collected by ``ANALYZE`` (see :mod:`.stats`) and only fall back to the
uniform min/max/NDV model when no distribution was collected.

The same estimates drive the physical choices: the fused join-aggregate
versus the generic scan-join-group pipeline (both costs computed from the
bounded join cardinality and the column widths each strategy touches, see
:class:`FusionDecision`), and the top-k operator versus full
sort-then-slice for ``ORDER BY ... LIMIT`` queries (see
:class:`TopKDecision`).

Adaptive feedback enters through :func:`select_shape`: every query block
has a canonical *predicate shape* (tables, join structure, predicate
operators and columns — literals elided), and the statistics catalog may
hold a correction factor for ``(base table, shape)`` recorded from observed
actual-vs-estimated cardinalities.  :meth:`CostModel.estimate_select_rows`
multiplies matching estimates by the factor, so a re-planned statement does
not repeat a misestimate the engine has already seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

import math

from ..ast_nodes import (
    BinaryOp,
    ColumnRef,
    CompoundSelect,
    Expression,
    InList,
    IsNull,
    Literal,
    Select,
    Star,
    TableSource,
    UnaryOp,
)
from ..executor import _self_reference_count, limit_bounds, select_has_windows
from ..table import Table
from .rewrite import column_refs, contains_aggregate, split_conjuncts
from .stats import StatisticsCatalog, TableStats

#: Row count assumed for tables the catalog knows nothing about.
DEFAULT_ROWS = 1000.0
#: Fallback selectivities (PostgreSQL-style defaults).
EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0
GENERIC_SELECTIVITY = 0.25
#: Estimated comparisons per row of a bounded-heap top-k pass.
TOPK_ROW_COST = 1.0
#: Scheduling overhead of one morsel-parallel block, in row-equivalents:
#: dispatching morsels to the pool and merging their results costs about as
#: much as scanning this many rows serially.  The serial-vs-parallel
#: break-even follows as ``rows / workers + OVERHEAD < rows``.
PARALLEL_OVERHEAD_ROWS = 16_384.0
#: Assumed fixpoint depth of a recursive CTE when no better information is
#: available — hierarchical workloads (trees with ~branching^depth fan-out)
#: converge within a handful of levels, and UES-style pessimism on the
#: per-step bound already guards the product against blow-ups.
RECURSIVE_FIXPOINT_ITERATIONS = 8.0


def _conjunct_shape(conjunct: Expression) -> str:
    """Canonical shape of one predicate conjunct (columns + operator, no literals)."""
    columns = ",".join(sorted({ref.name for ref in column_refs(conjunct)}))
    if isinstance(conjunct, BinaryOp) and conjunct.operator in ("=", "!=", "<", "<=", ">", ">="):
        operator = conjunct.operator if conjunct.operator in ("=", "!=") else "range"
        return f"{operator}({columns})"
    if isinstance(conjunct, InList):
        return f"{'not-in' if conjunct.negated else 'in'}({columns})"
    if isinstance(conjunct, IsNull):
        return f"{'notnull' if conjunct.negated else 'isnull'}({columns})"
    return f"pred({columns})"


def select_shape(select: Select) -> str:
    """Canonical predicate shape of one query block.

    Two blocks share a shape when they scan the same relations with the
    same join structure and predicate *skeleton* (operators and columns;
    literal values elided).  This is the key adaptive feedback corrections
    are stored under: it survives re-planning and parameter changes, while
    distinguishing structurally different queries over the same table.
    """
    parts: list[str] = []
    predicates: list[str] = []
    if select.source is not None:
        parts.append(f"from:{select.source.name}")
        if select.source.filter is not None:
            predicates.extend(
                _conjunct_shape(c) for c in split_conjuncts(select.source.filter)
            )
    for join in select.joins:
        parts.append(f"join:{join.source.name}")
        if join.source.filter is not None:
            predicates.extend(
                _conjunct_shape(c) for c in split_conjuncts(join.source.filter)
            )
    if select.where is not None:
        predicates.extend(_conjunct_shape(c) for c in split_conjuncts(select.where))
    parts.extend(sorted(predicates))
    if select.group_by:
        parts.append(f"group:{len(select.group_by)}")
    if select.distinct:
        parts.append("distinct")
    if select_has_windows(select):
        # Windowed and plain projections of the same scan are different
        # physical shapes; corrections learned on one must not leak.
        parts.append("window")
    return "|".join(parts)


@dataclass(frozen=True)
class JoinOrderDecision:
    """Outcome of the greedy join-order search for one Select."""

    original: tuple[str, ...]
    chosen: tuple[str, ...]
    #: Estimated cardinality after each join, aligned with ``chosen``.
    step_estimates: tuple[float, ...] = ()
    reordered: bool = False

    def describe(self) -> str:
        arrow = " -> ".join(self.chosen)
        suffix = "" if not self.reordered else f" (reordered from {' -> '.join(self.original)})"
        return f"{arrow}{suffix}"


@dataclass(frozen=True)
class FusionDecision:
    """Costed choice between the fused join-aggregate and the generic pipeline."""

    eligible: bool
    use_fused: bool
    fused_cost: float = math.inf
    generic_cost: float = math.inf
    estimated_join_rows: float = 0.0
    estimated_groups: float = 0.0

    def describe(self) -> str:
        if not self.eligible:
            return "generic pipeline (shape not fusable)"
        if self.use_fused:
            return (
                f"fused join-aggregate [cost {self.fused_cost:.1f}"
                f" < generic {self.generic_cost:.1f}]"
            )
        return (
            f"generic pipeline [cost {self.generic_cost:.1f}"
            f" <= fused {self.fused_cost:.1f}]"
        )


@dataclass(frozen=True)
class TopKDecision:
    """Costed choice between bounded-heap top-k and full sort-then-slice.

    ``k`` is the number of ordered rows the query actually needs
    (``LIMIT + OFFSET``); the top-k operator partitions the input around the
    k-th ranked primary key and only fully sorts the surviving candidates,
    so its cost scales with the input size plus ``k log k`` instead of
    ``n log n``.
    """

    k: int
    use_topk: bool
    estimated_input_rows: float = 0.0
    sort_cost: float = math.inf
    topk_cost: float = math.inf

    def describe(self) -> str:
        if self.use_topk:
            return (
                f"top-k (k={self.k}) [cost {self.topk_cost:.1f}"
                f" < sort {self.sort_cost:.1f}, est input ~{self.estimated_input_rows:.0f}]"
            )
        return (
            f"sort+limit [cost {self.sort_cost:.1f}"
            f" <= top-k {self.topk_cost:.1f}, est input ~{self.estimated_input_rows:.0f}]"
        )


@dataclass(frozen=True)
class ParallelDecision:
    """Costed choice between serial and morsel-parallel block execution.

    ``estimated_rows`` is the block's pre-limit input-cardinality bound (the
    driving size of its scans, probes and aggregations).  The parallel cost
    divides that work across the workers and adds the pool's scheduling
    overhead; the block runs parallel only when the model expects a net win,
    so small blocks — where dispatch would dominate — stay serial.  Results
    are byte-identical either way; the choice is purely a matter of cost.
    """

    eligible: bool
    use_parallel: bool
    workers: int = 1
    estimated_rows: float = 0.0
    serial_cost: float = math.inf
    parallel_cost: float = math.inf
    reason: str = ""

    def describe(self) -> str:
        if not self.eligible:
            return f"serial ({self.reason or 'parallel execution disabled'})"
        if self.use_parallel:
            return (
                f"morsel-parallel ({self.workers} workers)"
                f" [cost {self.parallel_cost:.1f} < serial {self.serial_cost:.1f},"
                f" est input ~{self.estimated_rows:.0f}]"
            )
        return (
            f"serial [cost {self.serial_cost:.1f}"
            f" <= parallel {self.parallel_cost:.1f}, est input ~{self.estimated_rows:.0f}]"
        )


def ordered_prefix_rows(select: Select) -> Optional[int]:
    """``LIMIT + OFFSET`` when the query needs only an ordered prefix.

    ``None`` when there is no ORDER BY, no LIMIT, or the limit is negative —
    delegating the SQLite normalization rules to the executor's
    :func:`~..executor.limit_bounds` so the cost model's ``k`` can never
    disagree with the slice the executor actually takes.
    """
    if not select.order_by:
        return None
    _start, stop = limit_bounds(select)
    return stop


class CostModel:
    """Estimates cardinalities and operator costs from catalog + statistics.

    ``derived_rows`` carries cardinality estimates for relations that are
    not stored tables — the CTE outputs estimated earlier in the same
    optimization pass — keyed by relation name.
    """

    def __init__(
        self,
        catalog: Mapping[str, Table] | None = None,
        statistics: StatisticsCatalog | None = None,
        derived_rows: Mapping[str, float] | None = None,
        enable_topk: bool = True,
        enable_parallel: bool = False,
        parallel_workers: int = 1,
        parallel_threshold_rows: float | None = None,
    ) -> None:
        self._catalog = catalog or {}
        self._statistics = statistics
        self._derived = dict(derived_rows or {})
        self.enable_topk = bool(enable_topk)
        self.enable_parallel = bool(enable_parallel)
        self.parallel_workers = max(1, int(parallel_workers))
        #: Optional break-even override: when set, a block goes parallel as
        #: soon as its estimated rows reach this value (tests force the
        #: parallel operators onto tiny inputs with 0).
        self.parallel_threshold_rows = (
            None if parallel_threshold_rows is None else float(parallel_threshold_rows)
        )

    # ----------------------------------------------------------- primitives

    def set_derived_rows(self, name: str, rows: float) -> None:
        """Record the estimated output cardinality of a CTE."""
        self._derived[name] = max(0.0, rows)

    def table_stats(self, name: str) -> Optional[TableStats]:
        if self._statistics is None:
            return None
        return self._statistics.get(name)

    def table_rows(self, name: str) -> float:
        """Best available row-count estimate for a named relation."""
        stats = self.table_stats(name)
        if stats is not None:
            return float(stats.row_count)
        if name in self._catalog:
            return float(self._catalog[name].num_rows)
        if name in self._derived:
            return self._derived[name]
        return DEFAULT_ROWS

    def _column(self, table: str, column: str):
        stats = self.table_stats(table)
        return None if stats is None else stats.column(column)

    def key_frequency(self, table: str, key: Expression) -> float:
        """Max frequency of a join key (rows / NDV); rows when opaque."""
        rows = max(1.0, self.table_rows(table))
        if isinstance(key, ColumnRef):
            column = self._column(table, key.name)
            if column is not None and column.ndv > 0:
                return max(1.0, rows / column.ndv)
        else:
            refs = column_refs(key)
            if len(refs) == 1:
                # A deterministic function of one column has at most that
                # column's NDV distinct values, so the frequency bound holds.
                column = self._column(table, refs[0].name)
                if column is not None and column.ndv > 0:
                    return max(1.0, rows / column.ndv)
        return rows

    # ---------------------------------------------------------- selectivity

    def selectivity(self, predicate: Expression, table: str) -> float:
        """Estimated fraction of a table's rows surviving a predicate."""
        total = 1.0
        for conjunct in split_conjuncts(predicate):
            total *= self._conjunct_selectivity(conjunct, table)
        return min(1.0, max(total, 0.0))

    def _conjunct_selectivity(self, conjunct: Expression, table: str) -> float:
        if isinstance(conjunct, BinaryOp) and conjunct.operator in ("=", "!=", "<", "<=", ">", ">="):
            column, literal = self._column_literal_sides(conjunct, table)
            if column is not None:
                if conjunct.operator == "=":
                    fraction = column.eq_fraction(literal)
                    if fraction is not None:
                        return fraction
                    return EQ_SELECTIVITY
                if conjunct.operator == "!=":
                    fraction = column.eq_fraction(literal)
                    if fraction is not None:
                        return max(0.0, column.non_null_fraction - fraction)
                    return 1.0 - EQ_SELECTIVITY
                # Histogram + MCV estimate first, min/max interpolation after.
                fraction = column.range_fraction(conjunct.operator, literal)
                if fraction is not None:
                    return fraction
                return self._range_selectivity(column, conjunct.operator, literal)
            return EQ_SELECTIVITY if conjunct.operator == "=" else RANGE_SELECTIVITY
        if isinstance(conjunct, InList):
            base = self._lookup_ref_stats(conjunct.operand, table)
            estimate = 0.0
            for value in conjunct.values:
                fraction = None
                if base is not None and isinstance(value, Literal):
                    fraction = base.eq_fraction(value.value)
                if fraction is None:
                    fraction = (
                        1.0 / base.ndv if base is not None and base.ndv > 0 else EQ_SELECTIVITY
                    )
                estimate += fraction
            return min(1.0, max(0.0, 1.0 - estimate if conjunct.negated else estimate))
        if isinstance(conjunct, IsNull):
            base = self._lookup_ref_stats(conjunct.operand, table)
            if base is not None:
                return 1.0 - base.null_fraction if conjunct.negated else base.null_fraction
            return GENERIC_SELECTIVITY
        return GENERIC_SELECTIVITY

    def _lookup_ref_stats(self, expression: Expression, table: str):
        if isinstance(expression, ColumnRef):
            return self._column(table, expression.name)
        return None

    def _column_literal_sides(self, comparison: BinaryOp, table: str):
        """(column stats, literal value) of a col-vs-literal comparison."""
        left, right = comparison.left, comparison.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return self._column(table, left.name), right.value
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            return self._column(table, right.name), left.value
        return None, None

    @staticmethod
    def _range_selectivity(column, operator: str, literal: object) -> float:
        if (
            column.minimum is None
            or column.maximum is None
            or not isinstance(literal, (int, float))
            or column.maximum <= column.minimum
        ):
            return RANGE_SELECTIVITY
        span = column.maximum - column.minimum
        fraction = (float(literal) - column.minimum) / span
        fraction = min(1.0, max(0.0, fraction))
        if operator in ("<", "<="):
            return max(fraction, 1e-6)
        return max(1.0 - fraction, 1e-6)

    def scan_rows(self, source: TableSource) -> float:
        """Estimated rows surviving a (possibly filtered) scan."""
        rows = self.table_rows(source.name)
        if source.filter is not None:
            rows *= self.selectivity(source.filter, source.name)
        return rows

    # ------------------------------------------------------------ join math

    @staticmethod
    def join_upper_bound(
        left_rows: float, left_freq: float, right_rows: float, right_freq: float
    ) -> float:
        """The UES bound min(|L| * f_R, |R| * f_L) (never an underestimate)."""
        return max(0.0, min(left_rows * right_freq, right_rows * left_freq))

    # ------------------------------------------------------- join ordering

    def order_joins(self, select: Select) -> tuple[Select, Optional[JoinOrderDecision]]:
        """Greedy upper-bound join ordering; returns the (possibly) reordered Select.

        Reordering only fires when it is provably output-equivalent: at least
        two inner joins, fully qualified join conditions (so conditions can be
        attributed to bindings), and an order-insensitive SELECT shape — a
        grouped/aggregated projection (group order comes from the hash
        aggregate, not the input) or an explicit ORDER BY, and never a bare
        ``*`` (whose column order follows the join order).
        """
        if select.source is None or len(select.joins) < 2:
            return select, None
        if any(join.kind != "inner" for join in select.joins):
            return select, None
        if select_has_windows(select):
            # Tie-breaking inside window partitions follows the stable sort
            # of the *input* order, which a join reorder would change.
            return select, None
        all_bindings = [select.source.binding] + [join.source.binding for join in select.joins]
        if len(set(all_bindings)) != len(all_bindings):
            return select, None  # self-join reuses a binding; attribution is ambiguous
        has_star = any(
            isinstance(item.expression, Star) and item.expression.table is None
            for item in select.items
        )
        grouped = bool(select.group_by) or any(
            not isinstance(item.expression, Star) and contains_aggregate(item.expression)
            for item in select.items
        )
        if has_star or not (grouped or select.order_by):
            return select, None

        # Which bindings does each join's condition touch?
        join_refs: list[set[str]] = []
        bindings = {select.source.binding} | {join.source.binding for join in select.joins}
        for join in select.joins:
            refs = column_refs(join.condition)
            if any(ref.table is None for ref in refs):
                return select, None  # cannot attribute; keep written order
            touched = {ref.table for ref in refs}
            if not touched <= bindings:
                return select, None
            join_refs.append(touched)

        original = tuple(join.source.binding for join in select.joins)
        available = {select.source.binding}
        current_rows = self.scan_rows(select.source)
        remaining = list(range(len(select.joins)))
        chosen: list[int] = []
        estimates: list[float] = []

        while remaining:
            eligible = [
                index
                for index in remaining
                if (join_refs[index] - {select.joins[index].source.binding}) <= available
            ]
            if not eligible:
                return select, None  # disconnected condition; keep written order
            best_index = None
            best_rows = math.inf
            for index in eligible:
                candidate = self._join_estimate(current_rows, select.joins[index])
                if candidate < best_rows:
                    best_rows = candidate
                    best_index = index
            chosen.append(best_index)  # type: ignore[arg-type]
            estimates.append(best_rows)
            current_rows = best_rows
            available.add(select.joins[best_index].source.binding)  # type: ignore[index]
            remaining.remove(best_index)  # type: ignore[arg-type]

        ordered = tuple(select.joins[index] for index in chosen)
        decision = JoinOrderDecision(
            original=original,
            chosen=tuple(join.source.binding for join in ordered),
            step_estimates=tuple(estimates),
            reordered=ordered != select.joins,
        )
        if not decision.reordered:
            return select, decision
        return replace(select, joins=ordered), decision

    def _join_estimate(self, left_rows: float, join) -> float:
        right_rows = self.scan_rows(join.source)
        right_freq = self._condition_side_frequency(join.condition, join.source)
        # The intermediate's key frequency is unknown; its row count is a
        # safe (if loose) stand-in, which reduces the bound to |L| * f_R.
        return self.join_upper_bound(left_rows, max(1.0, left_rows), right_rows, right_freq)

    def _condition_side_frequency(self, condition: Expression, source: TableSource) -> float:
        """Max frequency of the join key on the newly joined side."""
        if isinstance(condition, BinaryOp) and condition.operator == "=":
            for side in (condition.left, condition.right):
                refs = column_refs(side)
                if refs and all(ref.table == source.binding for ref in refs):
                    # Map through the alias: stats live under the table name.
                    key = side
                    if isinstance(key, ColumnRef):
                        key = ColumnRef(key.name, table=None)
                    return self.key_frequency(source.name, key)
        return max(1.0, self.table_rows(source.name))

    # -------------------------------------------------- query-level estimate

    def estimate_select_rows(self, select: Select) -> float:
        """Upper-bound estimate of a Select's output cardinality.

        Applies any adaptive correction factor recorded for this block's
        (base table, predicate shape) before the LIMIT cap: corrections are
        learned from pre-limit block cardinalities, and the cap would
        otherwise mask them.
        """
        rows = self.estimate_select_input_rows(select)
        _start, stop = limit_bounds(select)
        if stop is not None:
            rows = min(rows, float(stop))
        return rows

    def estimate_select_input_rows(self, select: Select) -> float:
        """Upper-bound estimate of a Select's *pre-limit* cardinality."""
        if select.source is None:
            rows = 1.0
        else:
            rows = self.scan_rows(select.source)
            for join in select.joins:
                rows = self._join_estimate(rows, join)
        if select.where is not None and select.source is not None:
            rows *= self.selectivity(select.where, select.source.name)
        grouped = bool(select.group_by) or any(
            not isinstance(item.expression, Star) and contains_aggregate(item.expression)
            for item in select.items
        )
        if grouped:
            rows = self._group_estimate(select, rows)
        if self._statistics is not None and select.source is not None:
            rows *= self._statistics.correction(select.source.name, select_shape(select))
        return rows

    def compound_cte_estimate(self, name: str, compound: CompoundSelect, recursive: bool) -> float:
        """Cardinality heuristic for a ``UNION [ALL]`` CTE body.

        The base term estimates normally; the recursive term is estimated
        with the CTE's own name bound to the base estimate (its frontier is
        at most the previous step's output) and, when it genuinely
        self-references, multiplied by the assumed fixpoint depth.  The
        total is registered as the CTE's derived cardinality so downstream
        blocks see it.
        """
        base = self.estimate_select_rows(compound.left)
        self.set_derived_rows(name, max(1.0, base))
        step = self.estimate_select_rows(compound.right)
        iterations = (
            RECURSIVE_FIXPOINT_ITERATIONS
            if recursive and _self_reference_count(compound.right, name)
            else 1.0
        )
        total = base + step * iterations
        self.set_derived_rows(name, total)
        return total

    def _group_estimate(self, select: Select, input_rows: float) -> float:
        if not select.group_by:
            return 1.0
        ndv_product = 1.0
        known = False
        for key in select.group_by:
            refs = column_refs(key)
            if len(refs) == 1:
                stats = None
                for source in [select.source, *[j.source for j in select.joins]]:
                    if source is None:
                        continue
                    if refs[0].table in (source.binding, None):
                        stats = self._column(source.name, refs[0].name)
                        if stats is not None:
                            break
                if stats is not None and stats.ndv > 0:
                    ndv_product *= stats.ndv
                    known = True
                    continue
            return input_rows  # opaque key: groups bounded only by input
        if not known:
            return input_rows
        return min(input_rows, ndv_product)

    # ----------------------------------------------------- operator choice

    def fusion_decision(
        self,
        select: Select,
        needed_columns: int,
    ) -> FusionDecision:
        """Cost the fused join-aggregate against the generic pipeline.

        Called by the planner once the fused operator's *eligibility* is
        established; the choice itself is made on estimated work:

        * generic = join + materialize every column of the joined frame +
          hash-aggregate over the materialized rows;
        * fused = join indices + gather only the columns the group key and
          SUM arguments read + bincount.
        """
        left = select.source
        right = select.joins[0].source if select.joins else None
        if left is None or right is None:
            return FusionDecision(eligible=False, use_fused=False)

        left_rows = self.scan_rows(left)
        right_rows = self.scan_rows(right)
        right_freq = self._condition_side_frequency(select.joins[0].condition, right)
        join_rows = self.join_upper_bound(
            left_rows, max(1.0, left_rows), right_rows, right_freq
        )
        groups = self._group_estimate(select, join_rows)

        left_width = self._table_width(left.name)
        right_width = self._table_width(right.name)
        total_width = left_width + right_width
        outputs = len(select.items)

        join_cost = left_rows + right_rows + join_rows
        sort_cost = join_rows * max(1.0, math.log2(join_rows + 2))
        generic_cost = (
            join_cost
            + join_rows * total_width          # materialize the joined frame
            + sort_cost                        # group-key factorization
            + join_rows * outputs              # per-output aggregation passes
        )
        fused_cost = (
            join_cost
            + join_rows * max(1, needed_columns)  # gather only live columns
            + sort_cost
            + join_rows * max(0, outputs - 1)     # bincount per aggregate
        )
        return FusionDecision(
            eligible=True,
            use_fused=fused_cost < generic_cost,
            fused_cost=fused_cost,
            generic_cost=generic_cost,
            estimated_join_rows=join_rows,
            estimated_groups=groups,
        )

    def topk_decision(self, select: Select) -> Optional[TopKDecision]:
        """Cost the top-k operator against full sort for ORDER BY ... LIMIT.

        Returns ``None`` when the query does not need an ordered prefix
        (no ORDER BY, no LIMIT, or an unbounded negative LIMIT).
        """
        k = ordered_prefix_rows(select)
        if k is None:
            return None
        rows = max(1.0, self.estimate_select_input_rows(select))
        sort_cost = rows * max(1.0, math.log2(rows + 2))
        # Partition pass over the input plus a full sort of the ~k survivors.
        candidates = min(rows, float(max(k, 1)) * 2.0)
        topk_cost = rows * TOPK_ROW_COST + candidates * max(1.0, math.log2(candidates + 2))
        use_topk = self.enable_topk and k > 0 and topk_cost < sort_cost
        return TopKDecision(
            k=k,
            use_topk=use_topk,
            estimated_input_rows=rows,
            sort_cost=sort_cost,
            topk_cost=topk_cost,
        )

    def parallel_decision(self, select: Select) -> ParallelDecision:
        """Cost morsel-parallel execution of one block against serial.

        The driving size is the larger of the base scan and the pre-limit
        block cardinality (a selective filter still has to *scan* every
        input row, and a fan-out join has to probe and aggregate every
        output row).  Work parallelizes across the workers; the pool's
        dispatch-and-merge overhead is charged per block.
        """
        workers = self.parallel_workers
        if select_has_windows(select):
            # The window operator is a single sort-once pass over every
            # partition; morsel-splitting it would tear partitions apart.
            return ParallelDecision(
                eligible=False,
                use_parallel=False,
                workers=workers,
                reason="window functions execute serially (partition-wide sort)",
            )
        if not self.enable_parallel or workers < 2:
            reason = "parallel execution disabled" if not self.enable_parallel else "single worker"
            return ParallelDecision(eligible=False, use_parallel=False, workers=workers, reason=reason)
        rows = self.estimate_select_input_rows(select)
        if select.source is not None:
            rows = max(rows, self.table_rows(select.source.name))
        serial_cost = rows
        if self.parallel_threshold_rows is not None:
            overhead = self.parallel_threshold_rows * (workers - 1) / workers
        else:
            overhead = PARALLEL_OVERHEAD_ROWS
        parallel_cost = rows / workers + overhead
        return ParallelDecision(
            eligible=True,
            use_parallel=parallel_cost < serial_cost,
            workers=workers,
            estimated_rows=rows,
            serial_cost=serial_cost,
            parallel_cost=parallel_cost,
        )

    def _table_width(self, name: str) -> int:
        if name in self._catalog:
            # Representation-aware width: numeric and dictionary-encoded
            # columns move 8-byte words, object columns move Python
            # references plus boxed values (weight 4).  All-numeric tables
            # keep their historical per-column weight of 1.
            return max(1, self._catalog[name].width_weight())
        stats = self.table_stats(name)
        if stats is not None and stats.columns:
            return max(1, len(stats.columns))
        return 3
