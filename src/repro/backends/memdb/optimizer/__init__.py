"""Cost-based query optimizer for the embedded columnar engine.

The subsystem sits between the parser and the planner::

    tokenizer -> parser -> [optimizer] -> planner -> executor

and is deliberately self-contained (SpecDB-style feature decomposition): the
engine calls :meth:`Optimizer.optimize` with a parsed statement and gets
back a rewritten statement, an :class:`~.explain.OptimizerReport` describing
every decision, and the :class:`~.cost.CostModel` the planner then uses for
physical choices (today: fused join-aggregate vs generic pipeline).

Components
----------

* :mod:`.stats` — per-table statistics (row count, per-column
  min/max/NDV/null fraction), refreshed by ``ANALYZE`` and invalidated by
  the engine on DML;
* :mod:`.rewrite` — logical AST rewrites: constant folding, predicate
  pushdown through joins and CTEs, projection pruning, single-use CTE
  inlining;
* :mod:`.cost` — UES-style upper-bound cardinality estimation, greedy
  join ordering, and the costed operator choice;
* :mod:`.explain` — ``EXPLAIN [ANALYZE]`` report structures and rendering.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional

from ..ast_nodes import CompoundSelect, CreateTableAs, Select, Statement, WithSelect
from ..table import Table
from .cost import (
    CostModel,
    FusionDecision,
    JoinOrderDecision,
    ParallelDecision,
    TopKDecision,
    select_shape,
)
from .explain import ActualRun, OptimizerReport, QueryPlanInfo, render_explain
from .rewrite import RewriteLog, rewrite_statement
from .stats import ColumnStats, StatisticsCatalog, TableStats

__all__ = [
    "ActualRun",
    "ColumnStats",
    "CostModel",
    "FusionDecision",
    "JoinOrderDecision",
    "Optimizer",
    "OptimizerReport",
    "ParallelDecision",
    "QueryPlanInfo",
    "RewriteLog",
    "StatisticsCatalog",
    "TableStats",
    "TopKDecision",
    "render_explain",
    "select_shape",
]


class Optimizer:
    """Rewrites statements and plans join orders against one database's state."""

    def __init__(
        self,
        catalog: Mapping[str, Table],
        statistics: Optional[StatisticsCatalog] = None,
        enabled: bool = True,
        enable_topk: bool = True,
        enable_parallel: bool = False,
        parallel_workers: int = 1,
        parallel_threshold_rows: float | None = None,
    ) -> None:
        self._catalog = catalog
        self._statistics = statistics
        self.enabled = enabled
        self.enable_topk = enable_topk
        self.enable_parallel = enable_parallel
        self.parallel_workers = parallel_workers
        self.parallel_threshold_rows = parallel_threshold_rows

    def cost_model(self) -> CostModel:
        """A cost model bound to the current catalog and statistics."""
        return CostModel(
            self._catalog,
            self._statistics,
            enable_topk=self.enable_topk,
            enable_parallel=self.enable_parallel,
            parallel_workers=self.parallel_workers,
            parallel_threshold_rows=self.parallel_threshold_rows,
        )

    def optimize(self, statement: Statement) -> tuple[Statement, OptimizerReport, CostModel]:
        """Optimize one parsed statement.

        Returns the rewritten statement, the decision report (for EXPLAIN and
        the engine's counters), and the cost model the planner should use for
        physical operator choices.  Statement kinds the optimizer does not
        cover (DDL, INSERT, DELETE, ...) pass through unchanged.
        """
        cost = self.cost_model()
        if not self.enabled:
            return statement, OptimizerReport(enabled=False), cost
        if not isinstance(statement, (Select, WithSelect, CreateTableAs)):
            return statement, OptimizerReport(), cost

        rewritten, log = rewrite_statement(statement, self._catalog)
        report = OptimizerReport(rewrites=log)

        if isinstance(rewritten, CreateTableAs):
            query, report.queries = self._plan_queries(rewritten.query, cost)
            return replace(rewritten, query=query), report, cost
        query, report.queries = self._plan_queries(rewritten, cost)
        return query, report, cost

    def _plan_queries(
        self, query: Select | WithSelect, cost: CostModel
    ) -> tuple[Select | WithSelect, list[QueryPlanInfo]]:
        """Join-order every query block and estimate its output cardinality."""
        if isinstance(query, Select):
            ordered, decision = cost.order_joins(query)
            info = self._block_info(
                "main", cost, ordered, cost.estimate_select_rows(ordered), decision
            )
            return ordered, [info]

        infos: list[QueryPlanInfo] = []
        new_ctes = []
        for cte in query.ctes:
            if isinstance(cte.query, CompoundSelect):
                # UNION [ALL] bodies (recursive fixpoints included) keep
                # their written join order; the heuristic estimate still
                # registers the CTE's cardinality for downstream blocks.
                estimate = cost.compound_cte_estimate(cte.name, cte.query, query.recursive)
                infos.append(QueryPlanInfo(cte.name, estimate))
                new_ctes.append(cte)
                continue
            ordered, decision = cost.order_joins(cte.query)
            estimate = cost.estimate_select_rows(ordered)
            # Later blocks see this CTE's estimated cardinality.
            cost.set_derived_rows(cte.name, estimate)
            infos.append(self._block_info(cte.name, cost, ordered, estimate, decision))
            new_ctes.append(replace(cte, query=ordered))
        ordered_main, decision = cost.order_joins(query.query)
        infos.append(
            self._block_info(
                "main", cost, ordered_main, cost.estimate_select_rows(ordered_main), decision
            )
        )
        return WithSelect(tuple(new_ctes), ordered_main, query.recursive), infos

    @staticmethod
    def _block_info(label, cost, select, estimate, decision) -> QueryPlanInfo:
        """One block's plan info, carrying the pre-limit estimate when it differs."""
        input_rows = None
        if select.limit is not None:
            input_rows = cost.estimate_select_input_rows(select)
        return QueryPlanInfo(label, estimate, decision, estimated_input_rows=input_rows)
