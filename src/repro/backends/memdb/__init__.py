"""Embedded columnar SQL engine (numpy-vectorized DuckDB substitute).

Execution architecture
----------------------

Statements flow through three layers:

1. **Parse** (:mod:`.tokenizer`, :mod:`.parser`): SQL text to frozen AST
   dataclasses (:mod:`.ast_nodes`).
2. **Plan** (:mod:`.planner`): ``Select`` / ``WithSelect`` /
   ``CREATE TABLE .. AS SELECT`` ASTs compile into physical plans — operator
   pipelines of scan → hash-join → filter → project / hash-aggregate →
   distinct/order/limit, with all per-statement analysis (aggregate
   detection, join-side splitting, projection naming) done once at compile
   time.  The paper's per-gate shape ``SELECT key, SUM(..), SUM(..) FROM
   T JOIN G .. GROUP BY key`` compiles to a *fused join-aggregate* operator
   that pushes the grouped SUMs through the hash join in one pass, gathering
   only the columns the aggregates read instead of materializing the joined
   frame.
3. **Execute** (:mod:`.executor`): vectorized numpy operators over columnar
   :class:`~.table.Table` storage.  Statement kinds the planner does not
   cover (INSERT, DELETE, DDL) run on the interpreter; every SELECT shape the
   engine supports is plannable, and :class:`~.executor.SelectExecutor`
   remains the reference implementation built from the same operator
   primitives (the differential tests execute both paths).

Plan caching
------------

:class:`~.engine.MemDatabase` memoizes compiled scripts in an LRU
:class:`~.engine.PlanCache` keyed by the **exact SQL text**.  Plans store
table *names*, never data — each execution re-resolves names against the
current catalog — so a cached plan re-binds to fresh gate/state tables, and
one process-wide cache (see :func:`~.engine.shared_plan_cache`) can serve
every database instance.  That is what makes parameter sweeps cheap: each
point re-executes byte-identical CTE / CREATE-AS texts and skips
tokenize/parse/plan entirely.  Cache rules: entries are immutable (frozen
ASTs + stateless plans); scripts that raise (parse, compile or execution
errors) are never cached; plan-bearing and parse-only scripts evict LRU in
separate tiers of ``maxsize`` entries each, and oversized parse-only texts
are not cached at all; a ``PlanCache(0)`` disables caching.
"""

from .engine import MemDatabase, PlanCache, shared_plan_cache
from .executor import QueryResult
from .parser import parse_one, parse_sql
from .planner import compile_statement
from .table import Table
from .tokenizer import Token, tokenize

__all__ = [
    "MemDatabase",
    "PlanCache",
    "shared_plan_cache",
    "QueryResult",
    "parse_one",
    "parse_sql",
    "compile_statement",
    "Table",
    "Token",
    "tokenize",
]
