"""Embedded columnar SQL engine (numpy-vectorized DuckDB substitute).

Execution architecture
----------------------

Statements flow through four layers:

1. **Parse** (:mod:`.tokenizer`, :mod:`.parser`): SQL text to frozen AST
   dataclasses (:mod:`.ast_nodes`).
2. **Optimize** (:mod:`.optimizer`): the cost-based optimizer rewrites the
   AST (constant folding, predicate pushdown through joins and CTEs,
   projection pruning, single-use CTE inlining), orders joins greedily by
   UES-style upper-bound cardinality estimates from the per-table
   statistics catalog (refreshed via ``ANALYZE``, invalidated on DML), and
   hands the planner a cost model for physical choices.  ``EXPLAIN
   [ANALYZE]`` renders every decision plus estimated-vs-actual
   cardinalities and plan-cache provenance.
3. **Plan** (:mod:`.planner`): optimized ``Select`` / ``WithSelect`` /
   ``CREATE TABLE .. AS SELECT`` ASTs compile into physical plans — operator
   pipelines of (filtered) scan → hash-join → filter → project /
   hash-aggregate → distinct/order/limit, with all per-statement analysis
   (aggregate detection, join-side splitting, projection naming) done once
   at compile time.  The paper's per-gate shape ``SELECT key, SUM(..),
   SUM(..) FROM T JOIN G .. GROUP BY key`` is *eligible* for a fused
   join-aggregate operator that pushes the grouped SUMs through the hash
   join in one pass; whether it is used is decided by the cost model, not
   the syntax.
4. **Execute** (:mod:`.executor`): vectorized numpy operators over columnar
   :class:`~.table.Table` storage.  Statement kinds the planner does not
   cover (INSERT, DELETE, DDL) run on the interpreter; every SELECT shape the
   engine supports is plannable, and :class:`~.executor.SelectExecutor`
   remains the reference implementation built from the same operator
   primitives (the differential tests execute both paths).

Plan caching
------------

:class:`~.engine.MemDatabase` memoizes compiled scripts in an LRU
:class:`~.engine.PlanCache` keyed by the **exact SQL text** and validated
on every hit against a **schema fingerprint** (table name → column
names/dtypes) of the stored tables the plans reference.  Plans store table
*names*, never data — each execution re-resolves names against the current
catalog — so a cached plan re-binds to fresh gate/state tables, and one
process-wide cache (see :func:`~.engine.shared_plan_cache`) can serve every
database instance; the fingerprint check is what makes that safe when a
table is dropped and recreated with a different shape.  That is what makes
parameter sweeps cheap: each point re-executes byte-identical CTE /
CREATE-AS texts and skips tokenize/parse/optimize/plan entirely.  Cache
rules: entries are immutable (frozen ASTs + stateless plans); scripts that
raise (parse, compile or execution errors) are never cached, nor are
EXPLAIN / ANALYZE statements; plan-bearing and parse-only scripts evict LRU
in separate tiers of ``maxsize`` entries each, and oversized parse-only
texts are not cached at all; a ``PlanCache(0)`` disables caching.
"""

from .engine import MemDatabase, PlanCache, shared_plan_cache
from .executor import QueryResult
from .optimizer import CostModel, Optimizer, StatisticsCatalog
from .parser import parse_one, parse_sql
from .planner import compile_statement
from .table import Table
from .tokenizer import Token, tokenize

__all__ = [
    "MemDatabase",
    "PlanCache",
    "shared_plan_cache",
    "QueryResult",
    "CostModel",
    "Optimizer",
    "StatisticsCatalog",
    "parse_one",
    "parse_sql",
    "compile_statement",
    "Table",
    "Token",
    "tokenize",
]
