"""Embedded columnar SQL engine (numpy-vectorized DuckDB substitute)."""

from .engine import MemDatabase
from .executor import QueryResult
from .parser import parse_one, parse_sql
from .table import Table
from .tokenizer import Token, tokenize

__all__ = ["MemDatabase", "QueryResult", "parse_one", "parse_sql", "Table", "Token", "tokenize"]
