"""Recursive-descent SQL parser for the embedded columnar engine.

Grammar (informal)::

    statement   := select | with_select | create_table | create_table_as
                 | insert | delete | drop
    select      := SELECT [DISTINCT] items FROM source join* [WHERE expr]
                   [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT n [OFFSET m]]
    expr        := or_expr with the usual precedence chain
                   (OR < AND < NOT < comparison < bitwise or < bitwise and
                    < shifts < additive < multiplicative < unary)

Operator precedence follows SQLite, which is what the translation layer's
generated expressions (bitwise masks inside comparisons) rely on.
"""

from __future__ import annotations

from ...errors import SQLParseError
from .ast_nodes import (
    Analyze,
    BinaryOp,
    CaseExpression,
    ColumnDefinition,
    ColumnRef,
    CommonTableExpression,
    CompoundSelect,
    CreateTable,
    CreateTableAs,
    Delete,
    DropTable,
    Explain,
    Expression,
    FrameBound,
    FunctionCall,
    InList,
    Insert,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    TableSource,
    UnaryOp,
    WindowFunction,
    WindowSpec,
    WithSelect,
)
from .tokenizer import END, IDENTIFIER, KEYWORD, NUMBER, OPERATOR, PUNCT, STRING, Token, tokenize

#: Aggregate function names recognized by the executor.
AGGREGATE_FUNCTIONS = {"sum", "count", "min", "max", "avg", "total"}


class Parser:
    """Parses one SQL statement from a token stream."""

    def __init__(self, tokens: list[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._position = 0

    # ------------------------------------------------------------- utilities

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != END:
            self._position += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        return self._peek().matches(kind, text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(kind, text):
            expectation = text or kind
            raise SQLParseError(
                f"expected {expectation!r} but found {token.text!r} at offset {token.position} in: {self._sql[:120]}..."
            )
        return self._advance()

    def at_end(self) -> bool:
        """True when all meaningful tokens have been consumed."""
        return self._check(END)

    # ------------------------------------------------------------ statements

    def parse_statement(self) -> Statement:
        """Parse a single statement (semicolons are handled by the engine)."""
        if self._check(KEYWORD, "explain"):
            return self._parse_explain()
        if self._check(KEYWORD, "analyze"):
            return self._parse_analyze()
        if self._check(KEYWORD, "with"):
            return self._parse_with_select()
        if self._check(KEYWORD, "select"):
            return self._parse_select()
        if self._check(KEYWORD, "create"):
            return self._parse_create()
        if self._check(KEYWORD, "insert"):
            return self._parse_insert()
        if self._check(KEYWORD, "delete"):
            return self._parse_delete()
        if self._check(KEYWORD, "drop"):
            return self._parse_drop()
        token = self._peek()
        raise SQLParseError(f"unsupported statement starting with {token.text!r}")

    def _parse_explain(self) -> Explain:
        self._expect(KEYWORD, "explain")
        analyze = bool(self._accept(KEYWORD, "analyze"))
        start = self._peek().position
        statement = self.parse_statement()
        if isinstance(statement, (Analyze, Explain)):
            raise SQLParseError("EXPLAIN cannot wrap EXPLAIN or ANALYZE statements")
        inner_sql = self._sql[start:self._peek().position].strip().rstrip(";").strip()
        return Explain(statement, analyze=analyze, inner_sql=inner_sql)

    def _parse_analyze(self) -> Analyze:
        self._expect(KEYWORD, "analyze")
        table = None
        if self._check(IDENTIFIER):
            table = self._advance().text
        return Analyze(table)

    def _parse_with_select(self) -> WithSelect:
        self._expect(KEYWORD, "with")
        recursive = bool(self._accept(KEYWORD, "recursive"))
        ctes: list[CommonTableExpression] = []
        while True:
            name = self._expect(IDENTIFIER).text
            columns: list[str] = []
            if self._accept(PUNCT, "("):
                columns.append(self._expect(IDENTIFIER).text)
                while self._accept(PUNCT, ","):
                    columns.append(self._expect(IDENTIFIER).text)
                self._expect(PUNCT, ")")
            self._expect(KEYWORD, "as")
            self._expect(PUNCT, "(")
            query: Select | CompoundSelect = self._parse_select()
            if self._check(KEYWORD, "union"):
                self._advance()
                union_all = bool(self._accept(KEYWORD, "all"))
                right = self._parse_select()
                if self._check(KEYWORD, "union"):
                    raise SQLParseError("CTE bodies support a single UNION [ALL]")
                query = CompoundSelect(query, right, all=union_all)
            self._expect(PUNCT, ")")
            ctes.append(CommonTableExpression(name, query, tuple(columns)))
            if not self._accept(PUNCT, ","):
                break
        query = self._parse_select()
        return WithSelect(tuple(ctes), query, recursive=recursive)

    def _parse_select(self) -> Select:
        self._expect(KEYWORD, "select")
        distinct = bool(self._accept(KEYWORD, "distinct"))
        items = [self._parse_select_item()]
        while self._accept(PUNCT, ","):
            items.append(self._parse_select_item())

        source: TableSource | None = None
        joins: list[Join] = []
        if self._accept(KEYWORD, "from"):
            source = self._parse_table_source()
            while True:
                kind = None
                if self._check(KEYWORD, "join"):
                    self._advance()
                    kind = "inner"
                elif self._check(KEYWORD, "inner") and self._peek(1).matches(KEYWORD, "join"):
                    self._advance()
                    self._advance()
                    kind = "inner"
                elif self._check(KEYWORD, "left"):
                    self._advance()
                    self._expect(KEYWORD, "join")
                    kind = "left"
                else:
                    break
                join_source = self._parse_table_source()
                self._expect(KEYWORD, "on")
                condition = self._parse_expression()
                joins.append(Join(join_source, condition, kind))

        where = None
        if self._accept(KEYWORD, "where"):
            where = self._parse_expression()

        group_by: list[Expression] = []
        if self._check(KEYWORD, "group"):
            self._advance()
            self._expect(KEYWORD, "by")
            group_by.append(self._parse_expression())
            while self._accept(PUNCT, ","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept(KEYWORD, "having"):
            having = self._parse_expression()

        order_by: list[OrderItem] = []
        if self._check(KEYWORD, "order"):
            self._advance()
            self._expect(KEYWORD, "by")
            order_by.append(self._parse_order_item())
            while self._accept(PUNCT, ","):
                order_by.append(self._parse_order_item())

        limit = None
        offset = None
        if self._accept(KEYWORD, "limit"):
            limit = self._parse_signed_int()
            if self._accept(KEYWORD, "offset"):
                offset = self._parse_signed_int()

        return Select(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_signed_int(self) -> int:
        """An optionally signed integer literal (LIMIT / OFFSET operands).

        Integral floats (``2.0``) are accepted, non-integral ones rejected —
        SQLite's "datatype mismatch" rule for LIMIT/OFFSET.
        """
        sign = 1
        while self._check(OPERATOR) and self._peek().text in ("-", "+"):
            if self._advance().text == "-":
                sign = -sign
        token = self._expect(NUMBER)
        value = float(token.text)
        if not value.is_integer():
            raise SQLParseError(
                f"LIMIT/OFFSET requires an integer, got {token.text!r} (datatype mismatch)"
            )
        return sign * int(value)

    def _parse_select_item(self) -> SelectItem:
        if self._check(OPERATOR, "*"):
            self._advance()
            return SelectItem(Star())
        # table.* projection
        if (
            self._check(IDENTIFIER)
            and self._peek(1).matches(PUNCT, ".")
            and self._peek(2).matches(OPERATOR, "*")
        ):
            table = self._advance().text
            self._advance()
            self._advance()
            return SelectItem(Star(table=table))
        expression = self._parse_expression()
        alias = None
        if self._accept(KEYWORD, "as"):
            alias = self._expect(IDENTIFIER).text
        elif self._check(IDENTIFIER):
            alias = self._advance().text
        return SelectItem(expression, alias)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept(KEYWORD, "desc"):
            descending = True
        elif self._accept(KEYWORD, "asc"):
            descending = False
        return OrderItem(expression, descending)

    def _parse_table_source(self) -> TableSource:
        name = self._expect(IDENTIFIER).text
        alias = None
        if self._accept(KEYWORD, "as"):
            alias = self._expect(IDENTIFIER).text
        elif self._check(IDENTIFIER):
            alias = self._advance().text
        return TableSource(name, alias)

    def _parse_create(self) -> Statement:
        self._expect(KEYWORD, "create")
        temporary = bool(self._accept(KEYWORD, "temp") or self._accept(KEYWORD, "temporary"))
        self._expect(KEYWORD, "table")
        name = self._expect(IDENTIFIER).text
        if self._accept(KEYWORD, "as"):
            if self._check(KEYWORD, "with"):
                query: Select | WithSelect = self._parse_with_select()
            else:
                query = self._parse_select()
            return CreateTableAs(name, query, temporary)
        self._expect(PUNCT, "(")
        columns: list[ColumnDefinition] = []
        while True:
            column_name = self._expect(IDENTIFIER).text
            type_name = self._expect(IDENTIFIER).text
            not_null = False
            while True:
                if self._accept(KEYWORD, "not"):
                    self._expect(KEYWORD, "null")
                    not_null = True
                elif self._accept(KEYWORD, "primary"):
                    self._expect(KEYWORD, "key")
                else:
                    break
            columns.append(ColumnDefinition(column_name, type_name.upper(), not_null))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ")")
        return CreateTable(name, tuple(columns), temporary)

    def _parse_insert(self) -> Insert:
        self._expect(KEYWORD, "insert")
        self._expect(KEYWORD, "into")
        table = self._expect(IDENTIFIER).text
        columns: list[str] = []
        if self._accept(PUNCT, "("):
            columns.append(self._expect(IDENTIFIER).text)
            while self._accept(PUNCT, ","):
                columns.append(self._expect(IDENTIFIER).text)
            self._expect(PUNCT, ")")
        self._expect(KEYWORD, "values")
        rows: list[tuple[Expression, ...]] = []
        while True:
            self._expect(PUNCT, "(")
            values = [self._parse_expression()]
            while self._accept(PUNCT, ","):
                values.append(self._parse_expression())
            self._expect(PUNCT, ")")
            rows.append(tuple(values))
            if not self._accept(PUNCT, ","):
                break
        return Insert(table, tuple(columns), tuple(rows))

    def _parse_delete(self) -> Delete:
        self._expect(KEYWORD, "delete")
        self._expect(KEYWORD, "from")
        table = self._expect(IDENTIFIER).text
        where = None
        if self._accept(KEYWORD, "where"):
            where = self._parse_expression()
        return Delete(table, where)

    def _parse_drop(self) -> DropTable:
        self._expect(KEYWORD, "drop")
        self._expect(KEYWORD, "table")
        if_exists = False
        if self._accept(KEYWORD, "if"):
            self._expect(KEYWORD, "exists")
            if_exists = True
        name = self._expect(IDENTIFIER).text
        return DropTable(name, if_exists)

    # ----------------------------------------------------------- expressions

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._check(KEYWORD, "or"):
            self._advance()
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._check(KEYWORD, "and"):
            self._advance()
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._check(KEYWORD, "not"):
            self._advance()
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_bitor()
        while True:
            if self._check(OPERATOR) and self._peek().text in ("=", "<", ">", "<=", ">=", "<>", "!="):
                operator = self._advance().text
                operator = "!=" if operator == "<>" else operator
                left = BinaryOp(operator, left, self._parse_bitor())
                continue
            if self._check(KEYWORD, "is"):
                self._advance()
                negated = bool(self._accept(KEYWORD, "not"))
                self._expect(KEYWORD, "null")
                left = IsNull(left, negated)
                continue
            if self._check(KEYWORD, "in") or (
                self._check(KEYWORD, "not") and self._peek(1).matches(KEYWORD, "in")
            ):
                negated = False
                if self._check(KEYWORD, "not"):
                    self._advance()
                    negated = True
                self._advance()  # IN
                self._expect(PUNCT, "(")
                values = [self._parse_expression()]
                while self._accept(PUNCT, ","):
                    values.append(self._parse_expression())
                self._expect(PUNCT, ")")
                left = InList(left, tuple(values), negated)
                continue
            return left

    def _parse_bitor(self) -> Expression:
        left = self._parse_bitand()
        while self._check(OPERATOR, "|"):
            self._advance()
            left = BinaryOp("|", left, self._parse_bitand())
        return left

    def _parse_bitand(self) -> Expression:
        left = self._parse_shift()
        while self._check(OPERATOR, "&"):
            self._advance()
            left = BinaryOp("&", left, self._parse_shift())
        return left

    def _parse_shift(self) -> Expression:
        left = self._parse_additive()
        while self._check(OPERATOR) and self._peek().text in ("<<", ">>"):
            operator = self._advance().text
            left = BinaryOp(operator, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._check(OPERATOR) and self._peek().text in ("+", "-", "||"):
            operator = self._advance().text
            left = BinaryOp(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._check(OPERATOR) and self._peek().text in ("*", "/", "%"):
            operator = self._advance().text
            left = BinaryOp(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self._check(OPERATOR) and self._peek().text in ("-", "+", "~"):
            operator = self._advance().text
            return UnaryOp(operator, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()

        if token.kind == NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))

        if token.kind == STRING:
            self._advance()
            return Literal(token.text)

        if token.matches(KEYWORD, "null"):
            self._advance()
            return Literal(None)

        if token.matches(KEYWORD, "case"):
            return self._parse_case()

        if token.matches(PUNCT, "("):
            self._advance()
            expression = self._parse_expression()
            self._expect(PUNCT, ")")
            return expression

        if token.kind == IDENTIFIER:
            # Function call?
            if self._peek(1).matches(PUNCT, "("):
                name = self._advance().text
                self._advance()  # (
                distinct = bool(self._accept(KEYWORD, "distinct"))
                is_star = False
                arguments: list[Expression] = []
                if self._check(OPERATOR, "*"):
                    self._advance()
                    is_star = True
                elif not self._check(PUNCT, ")"):
                    arguments.append(self._parse_expression())
                    while self._accept(PUNCT, ","):
                        arguments.append(self._parse_expression())
                self._expect(PUNCT, ")")
                if self._check(KEYWORD, "over"):
                    self._advance()
                    if distinct:
                        raise SQLParseError("DISTINCT is not supported in window functions")
                    spec = self._parse_window_spec()
                    return WindowFunction(
                        name.lower(), tuple(arguments), spec, is_star=is_star
                    )
                return FunctionCall(
                    name.lower(), tuple(arguments), is_star=is_star, distinct=distinct
                )
            # Qualified or bare column reference.
            name = self._advance().text
            if self._accept(PUNCT, "."):
                column = self._expect(IDENTIFIER).text
                return ColumnRef(column, table=name)
            return ColumnRef(name)

        raise SQLParseError(f"unexpected token {token.text!r} at offset {token.position}")

    def _parse_window_spec(self) -> WindowSpec:
        """``( [PARTITION BY exprs] [ORDER BY keys] [ROWS BETWEEN ... AND ...] )``."""
        self._expect(PUNCT, "(")
        partition: list[Expression] = []
        if self._accept(KEYWORD, "partition"):
            self._expect(KEYWORD, "by")
            partition.append(self._parse_expression())
            while self._accept(PUNCT, ","):
                partition.append(self._parse_expression())
        order: list[OrderItem] = []
        if self._check(KEYWORD, "order"):
            self._advance()
            self._expect(KEYWORD, "by")
            order.append(self._parse_order_item())
            while self._accept(PUNCT, ","):
                order.append(self._parse_order_item())
        frame = None
        if self._accept(KEYWORD, "rows"):
            self._expect(KEYWORD, "between")
            start = self._parse_frame_bound()
            self._expect(KEYWORD, "and")
            end = self._parse_frame_bound()
            frame = (start, end)
        self._expect(PUNCT, ")")
        return WindowSpec(tuple(partition), tuple(order), frame)

    def _parse_frame_bound(self) -> FrameBound:
        if self._accept(KEYWORD, "unbounded"):
            if self._accept(KEYWORD, "preceding"):
                return FrameBound("unbounded_preceding")
            self._expect(KEYWORD, "following")
            return FrameBound("unbounded_following")
        if self._accept(KEYWORD, "current"):
            self._expect(KEYWORD, "row")
            return FrameBound("current")
        offset = self._parse_signed_int()
        if offset < 0:
            raise SQLParseError("window frame offsets must be non-negative")
        if self._accept(KEYWORD, "preceding"):
            return FrameBound("preceding", offset)
        self._expect(KEYWORD, "following")
        return FrameBound("following", offset)

    def _parse_case(self) -> CaseExpression:
        self._expect(KEYWORD, "case")
        conditions: list[Expression] = []
        results: list[Expression] = []
        while self._accept(KEYWORD, "when"):
            conditions.append(self._parse_expression())
            self._expect(KEYWORD, "then")
            results.append(self._parse_expression())
        default = None
        if self._accept(KEYWORD, "else"):
            default = self._parse_expression()
        self._expect(KEYWORD, "end")
        if not conditions:
            raise SQLParseError("CASE expression needs at least one WHEN branch")
        return CaseExpression(tuple(conditions), tuple(results), default)


def parse_sql(sql: str) -> list[Statement]:
    """Parse a SQL script (one or more ;-separated statements)."""
    tokens = tokenize(sql)
    statements: list[Statement] = []
    parser = Parser(tokens, sql)
    while not parser.at_end():
        statements.append(parser.parse_statement())
        while parser._accept(PUNCT, ";"):
            pass
    if not statements:
        raise SQLParseError("empty SQL statement")
    return statements


def parse_one(sql: str) -> Statement:
    """Parse exactly one statement, raising if the script contains several."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise SQLParseError(f"expected one statement, found {len(statements)}")
    return statements[0]
