"""Columnar table storage for the embedded engine (v2: encoded columns).

A :class:`Table` stores each column as an :class:`EncodedColumn` — int64 /
float64 chunks for numerics, dictionary-encoded ``int32`` codes plus a
sorted value dictionary for text (object chunks in the
``REPRO_MEMDB_DICT=0`` ablation) — with a packed validity bitmap per
chunk.  The compute layer sees a contiguous materialization per column:
a plain numpy array for numerics, a
:class:`~repro.backends.memdb.column.DictArray` for encoded text.  That is
what makes the engine "columnar and vectorized" in the DuckDB sense: every
operator works on whole column vectors (codes where possible) instead of
Python rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ...errors import SQLExecutionError
from .column import DictArray, EncodedColumn, dict_encoding_default

#: SQL type names mapped to numpy dtypes.
_TYPE_MAP = {
    "INTEGER": np.int64,
    "INT": np.int64,
    "BIGINT": np.int64,
    "SMALLINT": np.int64,
    "REAL": np.float64,
    "DOUBLE": np.float64,
    "FLOAT": np.float64,
    "NUMERIC": np.float64,
    "TEXT": object,
    "VARCHAR": object,
    "STRING": object,
}


def dtype_for_sql_type(type_name: str) -> type:
    """numpy dtype for a declared SQL column type (defaults to float64)."""
    return _TYPE_MAP.get(type_name.upper(), np.float64)


class Table:
    """A named collection of equally-long encoded columns."""

    __slots__ = ("name", "_columns", "_dtypes", "_schema_signature", "_dict_encode")

    def __init__(
        self,
        name: str,
        columns: dict[str, np.ndarray | DictArray],
        dict_encode: bool | None = None,
    ) -> None:
        self.name = name
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SQLExecutionError(f"table {name!r}: column lengths differ ({lengths})")
        # dict_encode=None is *representation-preserving*: DictArray inputs
        # stay encoded, object arrays stay object.  CTE materialization uses
        # this so an ablated engine (enable_dict_encoding=False) can never
        # re-introduce the encoded representation mid-query; the engine
        # passes an explicit flag at CREATE TABLE / INSERT sites.
        self._dict_encode = dict_encode
        self._columns: dict[str, EncodedColumn] = {}
        for column, values in columns.items():
            if isinstance(values, EncodedColumn):
                self._columns[column] = values
            elif isinstance(values, DictArray):
                self._columns[column] = EncodedColumn.from_array(values, dict_encode=dict_encode)
            else:
                array = np.asarray(values)
                encode = dict_encode if array.dtype.kind in ("O", "U") else None
                self._columns[column] = EncodedColumn.from_array(array, dict_encode=encode)
        self._dtypes = {column: encoded.dtype for column, encoded in self._columns.items()}
        # Column set and *logical* dtypes are fixed for the table's lifetime
        # (append_rows coerces to the declared dtypes; dictionary growth
        # never changes the logical type), so the signature the plan cache
        # checks on every hit is computed exactly once.  Text columns sign
        # as "object" regardless of encoding, keeping compiled plans
        # representation-agnostic.
        self._schema_signature = tuple(
            (column, str(dtype)) for column, dtype in self._dtypes.items()
        )

    # ------------------------------------------------------------- factories

    @classmethod
    def empty(
        cls,
        name: str,
        column_types: Sequence[tuple[str, str]],
        dict_encode: bool | None = None,
    ) -> "Table":
        """An empty table with declared column types."""
        columns = {
            column: np.empty(0, dtype=dtype_for_sql_type(type_name))
            for column, type_name in column_types
        }
        encode = dict_encoding_default() if dict_encode is None else bool(dict_encode)
        table = cls(name, columns, dict_encode=encode)
        # np.empty(0, object) materializes as an object column; re-seed text
        # columns as empty dictionary columns when encoding is on so the
        # first INSERT lands in the encoded representation.
        if encode:
            for column, type_name in column_types:
                if dtype_for_sql_type(type_name) == object:
                    table._columns[column] = EncodedColumn.empty(object, dict_encode=True)
        return table

    # ------------------------------------------------------------ properties

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return list(self._columns.keys())

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        if not self._columns:
            return 0
        first = next(iter(self._columns.values()))
        return int(first.num_rows)

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def dict_encoded(self) -> bool:
        """True when any text column uses dictionary encoding."""
        if any(encoded.kind == "dict" for encoded in self._columns.values()):
            return True
        return bool(self._dict_encode)

    def column(self, name: str) -> np.ndarray | DictArray:
        """The contiguous vector backing one column (cached materialization)."""
        if name not in self._columns:
            raise SQLExecutionError(f"table {self.name!r} has no column {name!r}")
        return self._columns[name].materialize()

    def encoded_column(self, name: str) -> EncodedColumn:
        """The storage-layer column (chunks, bitmaps, dictionary)."""
        if name not in self._columns:
            raise SQLExecutionError(f"table {self.name!r} has no column {name!r}")
        return self._columns[name]

    def has_column(self, name: str) -> bool:
        """True if the column exists."""
        return name in self._columns

    def estimated_bytes(self) -> int:
        """Approximate in-memory size of the encoded column data."""
        return int(sum(encoded.nbytes() for encoded in self._columns.values()))

    def column_width_weight(self, name: str) -> int:
        """Relative cost-model weight of moving one value of this column."""
        if name not in self._columns:
            return 1
        return self._columns[name].width_weight()

    def width_weight(self) -> int:
        """Summed column weights (cost model's representation-aware width)."""
        if not self._columns:
            return 1
        return sum(encoded.width_weight() for encoded in self._columns.values())

    def storage_stats(self) -> dict:
        """Storage accounting per column plus table totals."""
        columns = {name: encoded.storage_stats() for name, encoded in self._columns.items()}
        return {
            "rows": self.num_rows,
            "dict_encoded": self.dict_encoded,
            "total_bytes": self.estimated_bytes(),
            "columns": columns,
        }

    def schema_signature(self) -> tuple[tuple[str, str], ...]:
        """Column names and logical dtypes in declaration order.

        The plan cache fingerprints compiled scripts on this signature so a
        dropped-and-recreated table with a different shape can never re-bind
        a stale plan.  Dictionary growth does not change the signature.
        """
        return self._schema_signature

    # --------------------------------------------------------------- mutation

    def append_rows(self, column_order: Sequence[str], rows: Iterable[Sequence[object]]) -> int:
        """Append literal rows (INSERT ... VALUES); returns the number of rows added."""
        rows = list(rows)
        if not rows:
            return 0
        order = list(column_order) if column_order else self.column_names
        missing = [column for column in order if column not in self._columns]
        if missing:
            raise SQLExecutionError(f"table {self.name!r} has no column(s) {missing}")
        if set(order) != set(self.column_names):
            raise SQLExecutionError(
                f"INSERT must provide all columns of {self.name!r} ({self.column_names}); got {order}"
            )
        for row in rows:
            if len(row) != len(order):
                raise SQLExecutionError(
                    f"INSERT row has {len(row)} values for {len(order)} columns in {self.name!r}"
                )
        by_column: dict[str, list[object]] = {column: [] for column in order}
        for row in rows:
            for column, value in zip(order, row):
                by_column[column].append(value)
        # Validate every column before mutating any, so a bad row leaves the
        # table unchanged.
        converted = {
            column: self._coerce_values(column, by_column[column]) for column in self.column_names
        }
        for column, new_values in converted.items():
            self._columns[column].append(new_values)
        return len(rows)

    def _coerce_values(self, column: str, values: list[object]) -> np.ndarray:
        """Build a column chunk with the *declared* dtype, rejecting misfits.

        Inferring a dtype from the literals and re-casting would silently
        truncate floats inserted into integer columns and mangle object
        columns; incompatible values raise a clear error instead.
        """
        dtype = self._dtypes[column]
        kind = np.dtype(dtype).kind if dtype != object else "O"
        if kind == "O":
            for value in values:
                if value is not None and not isinstance(value, str):
                    raise SQLExecutionError(
                        f"cannot insert {value!r} into text column {column!r} of table {self.name!r}"
                    )
            chunk = np.empty(len(values), dtype=object)
            chunk[:] = values
            return chunk
        if kind in "iu":
            coerced_ints: list[int] = []
            for value in values:
                # Integral-valued floats (2.0) and numeric strings ('2') store
                # losslessly, matching SQLite's INTEGER affinity and DuckDB's
                # implicit cast; anything lossy raises.
                if isinstance(value, str):
                    try:
                        # int() first: a float round-trip would corrupt
                        # integer strings above 2^53.
                        value = int(value)
                    except ValueError:
                        value = self._parse_numeric_string(value, column, "integer")
                if isinstance(value, (bool, np.bool_, int, np.integer)):
                    coerced_ints.append(int(value))
                elif isinstance(value, (float, np.floating)) and float(value).is_integer():
                    coerced_ints.append(int(value))
                else:
                    raise SQLExecutionError(
                        f"cannot insert {value!r} into integer column {column!r} of table {self.name!r}"
                    )
            try:
                return np.asarray(coerced_ints, dtype=dtype)
            except OverflowError:
                raise SQLExecutionError(
                    f"integer out of 64-bit range for column {column!r} of table {self.name!r}"
                ) from None
        # Float column: numbers only; NULL becomes NaN.  Strings — numeric
        # or not — are rejected: '1.5' silently coercing into a DOUBLE
        # column violated declared-dtype strictness (integer columns keep
        # their string affinity because that path is lossless).
        coerced: list[float] = []
        for value in values:
            if value is None:
                coerced.append(float("nan"))
            elif isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool):
                coerced.append(float(value))
            else:
                raise SQLExecutionError(
                    f"cannot insert {value!r} into real column {column!r} of table {self.name!r}"
                )
        return np.asarray(coerced, dtype=dtype)

    def _parse_numeric_string(self, value: str, column: str, kind: str) -> float:
        try:
            return float(value)
        except ValueError:
            raise SQLExecutionError(
                f"cannot insert {value!r} into {kind} column {column!r} of table {self.name!r}"
            ) from None

    def delete_where(self, mask: np.ndarray) -> int:
        """Delete the rows where ``mask`` is true; returns the number deleted."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.num_rows:
            raise SQLExecutionError("DELETE mask length does not match the table")
        keep = ~mask
        deleted = int(mask.sum())
        for column in self.column_names:
            self._columns[column].delete_where(keep)
        return deleted

    # ----------------------------------------------------------------- views

    def frame(self, binding: str | None = None) -> dict[str, np.ndarray | DictArray]:
        """Column dictionary keyed by both qualified and bare names."""
        binding = binding or self.name
        frame: dict[str, np.ndarray | DictArray] = {}
        for column in self._columns:
            values = self._columns[column].materialize()
            frame[f"{binding}.{column}"] = values
            frame.setdefault(column, values)
        return frame

    def rows(self) -> list[tuple]:
        """Materialize all rows as Python tuples (column order preserved)."""
        columns = [self.column(name) for name in self.column_names]
        return [
            tuple(
                column[index].item() if hasattr(column[index], "item") else column[index]
                for column in columns
            )
            for index in range(self.num_rows)
        ]

    def copy(self, name: str | None = None) -> "Table":
        """A deep copy (used when a CTE result must not alias a stored table)."""
        clone = Table.__new__(Table)
        clone.name = name or self.name
        clone._dict_encode = self._dict_encode
        clone._columns = {column: encoded.copy() for column, encoded in self._columns.items()}
        clone._dtypes = dict(self._dtypes)
        clone._schema_signature = self._schema_signature
        return clone

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={self.column_names}, rows={self.num_rows})"
