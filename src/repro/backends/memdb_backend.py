"""Execution backend wrapping the embedded columnar engine.

This backend plays the role DuckDB plays in the paper: a vectorized,
columnar, analytical engine executing the generated SQL.  Because DuckDB
cannot be installed in the offline reproduction environment, the engine is
implemented from scratch in :mod:`repro.backends.memdb`; when a real DuckDB
is available, :class:`repro.backends.duckdb_backend.DuckDBBackend` runs the
identical SQL unchanged.
"""

from __future__ import annotations

from ..errors import BackendError
from ..sql.dialect import MEMDB
from .base import MODE_CTE, RelationalBackend
from .memdb.engine import MemDatabase


class MemDBBackend(RelationalBackend):
    """Runs translated circuits on the embedded columnar SQL engine."""

    name = "memdb"
    dialect = MEMDB

    def __init__(
        self,
        mode: str = MODE_CTE,
        prune_epsilon: float | None = None,
        fuse: bool = False,
        max_fused_qubits: int = 2,
        keep_intermediate: bool = False,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
    ) -> None:
        super().__init__(
            mode=mode,
            prune_epsilon=prune_epsilon,
            fuse=fuse,
            max_fused_qubits=max_fused_qubits,
            keep_intermediate=keep_intermediate,
            max_state_bytes=max_state_bytes,
            prune_atol=prune_atol,
        )
        self._database: MemDatabase | None = None

    # ------------------------------------------------------------ connection

    def _connect(self) -> None:
        self._database = MemDatabase()

    def _disconnect(self) -> None:
        if self._database is not None:
            self._database.clear()
        self._database = None

    def _require_database(self) -> MemDatabase:
        if self._database is None:
            raise BackendError("memdb backend is not connected")
        return self._database

    # --------------------------------------------------------------- execute

    def _execute(self, sql: str) -> None:
        self._require_database().execute(sql)

    def _fetch(self, sql: str) -> list[tuple]:
        return list(self._require_database().execute(sql).rows)

    def _table_row_count(self, table: str) -> int:
        # Cheaper than COUNT(*): the catalog already knows the row count.
        return self._require_database().row_count(table)

    @property
    def database(self) -> MemDatabase | None:
        """The underlying engine instance (only valid while connected)."""
        return self._database
