"""Execution backend wrapping the embedded columnar engine.

This backend plays the role DuckDB plays in the paper: a vectorized,
columnar, analytical engine executing the generated SQL.  Because DuckDB
cannot be installed in the offline reproduction environment, the engine is
implemented from scratch in :mod:`repro.backends.memdb`; when a real DuckDB
is available, :class:`repro.backends.duckdb_backend.DuckDBBackend` runs the
identical SQL unchanged.
"""

from __future__ import annotations

from ..errors import BackendError
from ..obs.schema import unified_engine_stats
from ..obs.tracing import Tracer, tracing_env_enabled
from ..sql.dialect import MEMDB
from ..sql.translator import SQLTranslation
from .base import MODE_CTE, RelationalBackend
from .memdb.engine import MemDatabase, PlanCache, shared_plan_cache


class MemDBBackend(RelationalBackend):
    """Runs translated circuits on the embedded columnar SQL engine.

    The engine instance is kept for the lifetime of the backend: each run
    starts from an empty catalog (tables are dropped on connect/disconnect),
    but compiled plans persist in the plan cache, so repeated runs of
    structurally identical circuits — the parameter-sweep loop — skip SQL
    parsing and planning entirely and only re-bind fresh gate/state tables.
    By default the cache is additionally shared process-wide, which means
    even a fresh backend per sweep point starts warm.

    Parameters (beyond :class:`RelationalBackend`)
    ----------
    plan_cache:
        Optional private :class:`~.memdb.engine.PlanCache`; default is the
        process-wide shared cache.  Pass ``PlanCache(0)`` to disable caching
        (used by benchmarks to measure cold-parse cost).
    enable_adaptive:
        Adaptive re-optimization: compiled executions compare estimated to
        actual block cardinalities; gross underestimates record correction
        factors and flag the cached plan for re-planning (see
        :class:`~.memdb.engine.MemDatabase`).  Disable to pin stale plans
        (benchmark ablation).
    enable_topk:
        Allow the costed top-k operator for ORDER BY ... LIMIT; disable to
        force full sort-then-slice (benchmark ablation).
    enable_parallel / parallel_workers / parallel_threshold_rows:
        Morsel-driven parallel execution of compiled plans (scans, filters,
        hash-join probes, partitioned aggregation) on the engine's shared
        worker pool; per-block serial-vs-parallel choices are costed (with
        an optional break-even override in estimated rows), and results
        stay byte-identical to serial execution.  ``enable_parallel=None``
        follows the ``REPRO_MEMDB_PARALLEL`` environment variable.
    enable_dict_encoding:
        Dictionary-encode TEXT columns (int32 codes + sorted value
        dictionary) in the embedded engine's columnar storage; results are
        byte-identical either way (benchmark ablation).
        ``enable_dict_encoding=None`` follows the ``REPRO_MEMDB_DICT``
        environment variable (default on).
    enable_tracing / tracer:
        Span-based query tracing (see :mod:`repro.obs` and
        :class:`~.memdb.engine.MemDatabase`): every traced execution
        produces a span tree, dispatched to the tracer's ring buffer,
        slow-query log and export sinks.  An explicit ``tracer`` wins;
        ``enable_tracing=None`` follows ``REPRO_TRACE`` (off when unset).
    """

    name = "memdb"
    dialect = MEMDB

    def __init__(
        self,
        mode: str = MODE_CTE,
        prune_epsilon: float | None = None,
        fuse: bool = False,
        max_fused_qubits: int = 2,
        keep_intermediate: bool = False,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
        plan_cache: PlanCache | None = None,
        enable_optimizer: bool = True,
        enable_adaptive: bool = True,
        enable_topk: bool = True,
        enable_parallel: bool | None = None,
        parallel_workers: int | None = None,
        parallel_threshold_rows: int | None = None,
        enable_dict_encoding: bool | None = None,
        enable_tracing: bool | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(
            mode=mode,
            prune_epsilon=prune_epsilon,
            fuse=fuse,
            max_fused_qubits=max_fused_qubits,
            keep_intermediate=keep_intermediate,
            max_state_bytes=max_state_bytes,
            prune_atol=prune_atol,
        )
        self._plan_cache = plan_cache
        self._enable_optimizer = enable_optimizer
        self._enable_adaptive = enable_adaptive
        self._enable_topk = enable_topk
        self._enable_parallel = enable_parallel
        self._parallel_workers = parallel_workers
        self._parallel_threshold_rows = parallel_threshold_rows
        self._enable_dict_encoding = enable_dict_encoding
        self._enable_tracing = enable_tracing
        self._tracer = tracer
        self._database: MemDatabase | None = None
        self._connected = False

    # ------------------------------------------------------------ connection

    def _connect(self) -> None:
        if self._database is None:
            self._database = MemDatabase(
                plan_cache=self._plan_cache,
                enable_optimizer=self._enable_optimizer,
                enable_adaptive=self._enable_adaptive,
                enable_topk=self._enable_topk,
                enable_parallel=self._enable_parallel,
                parallel_workers=self._parallel_workers,
                parallel_threshold_rows=self._parallel_threshold_rows,
                enable_dict_encoding=self._enable_dict_encoding,
                enable_tracing=self._enable_tracing,
                tracer=self._tracer,
            )
        else:
            self._database.clear()
        self._connected = True

    def _disconnect(self) -> None:
        # Drop the tables (one run's state must not leak into the next) but
        # keep the engine so its plan-cache binding survives across runs.
        if self._database is not None:
            self._database.clear()
        self._connected = False

    def plan_cache_stats(self) -> dict:
        """Plan-cache statistics of this backend's cache (valid any time)."""
        cache = self._plan_cache if self._plan_cache is not None else shared_plan_cache()
        return cache.stats()

    # ------------------------------------------------ compile-bind-execute

    def _prepare_plans(self, translation: SQLTranslation, provenance: dict) -> None:
        """Bind the compiled circuit straight into the engine's plan cache.

        In CTE mode the hot query is a pure WITH-SELECT, so ``compile()``
        sets up the gate/state tables exactly as a run would and prepares
        the query plan eagerly: even the executable's *first* execution
        re-binds a cached plan instead of paying tokenize/parse/optimize.
        When the query text is already cached (a recompile of the same
        circuit structure) the table setup is skipped entirely, so repeated
        one-shot ``run()`` calls never pay it twice.  Materialized mode
        interleaves CREATE TABLE AS with its own products and keeps the
        lazy compile-on-first-execute path.
        """
        if self.mode != MODE_CTE:
            provenance["plan_cache"] = {"prepared": False, "reason": "materialized mode compiles lazily"}
            return
        cache = self._plan_cache if self._plan_cache is not None else shared_plan_cache()
        if cache.maxsize <= 0:
            provenance["plan_cache"] = {"prepared": False, "reason": "plan cache disabled"}
            return
        query = translation.cte_query(pretty=False)
        # The engine owns the plan-cache flavor (optimizer + parallel
        # configuration), so connect first — a fresh engine is cheap — and
        # peek with its flavor.  Text-only peek (no catalog): a stale entry
        # is caught and recompiled by the schema-fingerprint check at
        # execution time.
        self._connect()
        try:
            database = self._require_database()
            if cache.peek_state(query, catalog=None, flavor=database.plan_flavor) == "hit":
                provenance["plan_cache"] = {"prepared": True, "state_at_compile": "hit"}
                return
            # The setup statements are executed in full (not DDL-only): the
            # cost model falls back to live catalog row counts when ANALYZE
            # has not run, so preparing against empty tables would cache
            # plans costed at zero cardinality for every later execution.
            # Gate tables are tiny (<= 4 rows each, deduplicated per
            # distinct gate), so a cold compile's extra setup is bounded;
            # warm compiles return early above.
            for statement in translation.setup_statements():
                self._execute(statement)
            outcome = database.prepare(query)
        finally:
            self._disconnect()
        provenance["plan_cache"] = {"prepared": True, "state_at_compile": outcome}

    def _execution_provenance(self, executable) -> dict:
        provenance = {"plan_cache": self.plan_cache_stats()}
        if self._database is not None:
            # Surface the adaptive loop's activity (re-plans requested,
            # corrections learned) on the executable, next to the cache state,
            # plus the parallel subsystem's per-execution counters.
            provenance["adaptive"] = self._database.adaptive_stats()
            provenance["parallel"] = self._database.parallel_stats()
        return provenance

    def parallel_stats(self) -> dict:
        """Morsel-parallel subsystem state (configuration + pool counters)."""
        if self._database is None:
            return {
                "enabled": bool(self._enable_parallel),
                "workers": self._parallel_workers,
                "threshold_rows": None,
                "parallel_plan_executions": 0,
                "pool": {},
            }
        return self._database.parallel_stats()

    def optimizer_stats(self) -> dict:
        """Optimizer activity counters + statistics-catalog summary.

        Empty counters until the first run (the engine is created lazily).
        """
        if self._database is None:
            return {
                "enabled": self._enable_optimizer,
                "counters": {},
                "statistics": {},
                "adaptive": {"enabled": self._enable_adaptive, "replans": 0, "corrections": 0},
            }
        return self._database.optimizer_stats()

    def storage_stats(self) -> dict:
        """Columnar storage accounting of the live tables (empty when idle).

        Per table: rows, whether text columns are dictionary-encoded, and
        per-column code/dictionary/validity-bitmap byte sizes (see
        :meth:`~.memdb.engine.MemDatabase.storage_stats`).
        """
        if self._database is None:
            return {"dict_encoding": self._enable_dict_encoding, "total_bytes": 0, "tables": {}}
        return self._database.storage_stats()

    def tracing_stats(self) -> dict:
        """Tracer activity and sink state (config-derived until the first run)."""
        if self._database is not None:
            return self._database.tracing_stats()
        if self._tracer is not None:
            return self._tracer.stats()
        enabled = (
            bool(tracing_env_enabled()) if self._enable_tracing is None else self._enable_tracing
        )
        if not enabled:
            return {"enabled": False}
        return {"enabled": True, "traces": 0, "spans": 0, "ring_size": 0}

    def recent_traces(self) -> list[dict]:
        """The tracer's ring-buffered span trees, oldest first ([] untraced)."""
        tracer = self._database.tracer if self._database is not None else self._tracer
        return tracer.recent_traces() if tracer is not None else []

    def slow_queries(self) -> list[dict]:
        """Slow-query log entries (span tree + plan snapshot), oldest first."""
        tracer = self._database.tracer if self._database is not None else self._tracer
        return tracer.slow_queries() if tracer is not None else []

    def engine_stats(self) -> dict:
        """Every subsystem's statistics in the unified versioned schema.

        See :func:`repro.obs.schema.unified_engine_stats`: canonical
        top-level ``plan_cache`` / ``optimizer`` / ``adaptive`` /
        ``parallel`` / ``storage`` / ``tracing`` sections plus roll-up
        aggregates; ``optimizer["adaptive"]`` stays aliased (same object as
        the top-level ``adaptive``) for pre-schema readers.
        """
        return unified_engine_stats(
            self.plan_cache_stats(),
            self.optimizer_stats(),
            self.parallel_stats(),
            self.storage_stats(),
            self.tracing_stats(),
        )

    # --------------------------------------------------------------- explain

    def explain_circuit(self, circuit, analyze: bool = False, refresh_statistics: bool = True) -> str:
        """EXPLAIN (optionally ANALYZE) the circuit's generated CTE query.

        Sets up the gate/state tables exactly as a run would, optionally
        refreshes the optimizer's statistics catalog (``ANALYZE``), and
        returns the engine's plan rendering — chosen rewrites, join order,
        the costed fused-vs-generic decision, estimated (vs actual)
        cardinalities and plan-cache provenance.
        """
        translation = self.translate(circuit)
        self._connect()
        try:
            for statement in translation.setup_statements():
                self._execute(statement)
            if refresh_statistics:
                self._require_database().execute("ANALYZE")
            keyword = "EXPLAIN ANALYZE" if analyze else "EXPLAIN"
            result = self._require_database().execute(
                f"{keyword} {translation.cte_query(pretty=False)}"
            )
            return "\n".join(row[0] for row in result.rows)
        finally:
            self._disconnect()

    def _require_database(self) -> MemDatabase:
        if not self._connected or self._database is None:
            raise BackendError("memdb backend is not connected")
        return self._database

    # --------------------------------------------------------------- execute

    def _execute(self, sql: str) -> None:
        self._require_database().execute(sql)

    def _fetch(self, sql: str) -> list[tuple]:
        return list(self._require_database().execute(sql).rows)

    def _table_row_count(self, table: str) -> int:
        # Cheaper than COUNT(*): the catalog already knows the row count.
        return self._require_database().row_count(table)

    @property
    def database(self) -> MemDatabase | None:
        """The underlying engine instance (``None`` until the first run)."""
        return self._database
