"""Shared machinery of the RDBMS execution backends (the Simulation Layer).

A relational backend is "just another simulator" from the caller's point of
view: it implements :class:`~repro.simulators.base.BaseSimulator`, so results
carry the same metadata and plug into the same benchmarking framework as the
state-vector / MPS / DD baselines.  Internally it

1. asks the Translation Layer for the relational program of the circuit,
2. creates the gate tables and the initial state table ``T0``,
3. executes the program either as one CTE query (Fig. 2c) or step by step
   in materialized mode (out-of-core; per-step row statistics and pruning),
4. reads the final state table back into a :class:`SparseState`.

Concrete subclasses only provide connection management and raw statement
execution for their engine (SQLite, DuckDB, memdb).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..errors import BackendError, ResourceLimitExceeded
from ..output.result import SparseState
from ..simulators.base import BaseSimulator, EvolutionStats, Executable
from ..sql.dialect import Dialect
from ..sql.translator import SQLTranslation, SQLTranslator

#: Bytes per state-table row: s BIGINT + r DOUBLE + i DOUBLE.
ROW_BYTES = 24

#: Supported execution modes.
MODE_CTE = "cte"
MODE_MATERIALIZED = "materialized"


class RelationalBackend(BaseSimulator):
    """Base class for SQL-executing simulators.

    Parameters
    ----------
    mode:
        ``"cte"`` runs the whole circuit as a single WITH-query (the paper's
        Fig. 2c shape, letting the engine's optimizer pipeline all gates);
        ``"materialized"`` creates one state table per gate, enabling
        out-of-core execution, per-step statistics and pruning.
    prune_epsilon:
        Drop rows whose probability mass is at or below this threshold after
        every materialized step (ignored in CTE mode).
    fuse / max_fused_qubits:
        Enable the gate-fusion optimizer of the Translation Layer.
    keep_intermediate:
        In materialized mode, keep every ``T{k}`` table instead of dropping
        the predecessor (useful for inspecting intermediate states, as in the
        paper's educational scenario).
    max_state_bytes:
        Budget on the relational state size (rows * 24 bytes); exceeded
        intermediate states raise :class:`ResourceLimitExceeded`.  Only
        enforced per-step in materialized mode.
    """

    #: Dialect of the concrete engine; set by subclasses.
    dialect: Dialect

    def __init__(
        self,
        mode: str = MODE_CTE,
        prune_epsilon: float | None = None,
        fuse: bool = False,
        max_fused_qubits: int = 2,
        keep_intermediate: bool = False,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
    ) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        if mode not in (MODE_CTE, MODE_MATERIALIZED):
            raise BackendError(f"unknown execution mode {mode!r}; expected 'cte' or 'materialized'")
        self.mode = mode
        self.prune_epsilon = prune_epsilon
        self.fuse = fuse
        self.max_fused_qubits = max_fused_qubits
        self.keep_intermediate = keep_intermediate

    # ------------------------------------------------------- engine contract

    @abstractmethod
    def _connect(self) -> None:
        """Open a fresh connection / database for one simulation run."""

    @abstractmethod
    def _disconnect(self) -> None:
        """Close the connection and release resources."""

    @abstractmethod
    def _execute(self, sql: str) -> None:
        """Execute a statement, discarding any result."""

    @abstractmethod
    def _fetch(self, sql: str) -> list[tuple]:
        """Execute a query and return all rows."""

    def _table_row_count(self, table: str) -> int:
        """Row count of a state table (used for per-step statistics)."""
        rows = self._fetch(f"SELECT COUNT(*) FROM {table}")
        return int(rows[0][0]) if rows else 0

    # --------------------------------------------------------------- running

    def translator(self) -> SQLTranslator:
        """The translator configured to this backend's dialect and options."""
        return SQLTranslator(
            dialect=self.dialect,
            prune_epsilon=self.prune_epsilon,
            fuse=self.fuse,
            max_fused_qubits=self.max_fused_qubits,
        )

    def translate(self, circuit: QuantumCircuit, initial_state: SparseState | None = None) -> SQLTranslation:
        """Translate a circuit without executing it (for inspection / reports)."""
        return self.translator().translate(circuit, initial_state=initial_state)

    # --------------------------------------------------- compile-bind-execute

    #: Parameter value used to translate a *representative* binding of a
    #: parameterized template at compile time.  The generated CTE / CREATE-AS
    #: texts depend only on the circuit structure (parameter values only move
    #: gate-table literals), so plans prepared from this binding serve every
    #: later bind.  0.5 avoids degenerate angles (rotations by 0 collapse to
    #: diagonal matrices with fewer nonzero gate rows).
    _REPRESENTATIVE_PARAMETER = 0.5

    def _compile(self, circuit: QuantumCircuit) -> dict:
        """Translate at compile time and hand the plans to the engine.

        For a fully bound circuit the translation itself is cached on the
        executable (execute skips the Translation Layer entirely).  For a
        parameterized template a representative binding is translated so the
        engine can prepare plans for the structure every bind will share.
        """
        artifact: dict = {}
        if circuit.is_parameterized:
            representative = circuit.bind_parameters(
                {parameter: self._REPRESENTATIVE_PARAMETER for parameter in circuit.parameters}
            )
            translation = self.translate(representative)
        else:
            translation = self.translate(circuit)
            artifact["translation"] = translation
        provenance: dict = {"translation": translation.describe()}
        self._prepare_plans(translation, provenance)
        artifact["provenance"] = provenance
        return artifact

    def _prepare_plans(self, translation: SQLTranslation, provenance: dict) -> None:
        """Hook: compile the translation's plans into the engine (default: no-op)."""

    def _evolve_compiled(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        translation = None
        if initial_state is None and circuit is executable.circuit:
            translation = executable.artifact.get("translation")
        if translation is None:
            translation = self.translate(circuit, initial_state=initial_state)
        return self._evolve_translation(translation, stats)

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        return self._evolve_translation(self.translate(circuit, initial_state=initial_state), stats)

    def _evolve_translation(self, translation: SQLTranslation, stats: EvolutionStats) -> SparseState:
        self._connect()
        try:
            rows = self._execute_translation(translation, stats)
        finally:
            self._disconnect()
        stats.extras["sql"] = {
            "mode": self.mode,
            "dialect": self.dialect.name,
            **translation.describe(),
        }
        return SparseState.from_rows(translation.num_qubits, rows)

    def _execute_translation(self, translation: SQLTranslation, stats: EvolutionStats) -> list[tuple]:
        for statement in translation.setup_statements():
            self._execute(statement)
        initial_rows = len(translation.initial_rows)
        stats.observe(initial_rows, ROW_BYTES * initial_rows)

        if self.mode == MODE_CTE:
            rows = self._fetch(translation.cte_query(pretty=False))
            stats.observe(len(rows), ROW_BYTES * len(rows))
            self._check_budget(ROW_BYTES * len(rows), "final state")
            return [(int(s), float(r), float(i)) for s, r, i in rows]

        # Materialized mode: run step by step, recording row counts.
        step_rows: list[int] = []
        for item in translation.materialized_statements(keep_intermediate=self.keep_intermediate):
            self._execute(item["sql"])
            if item["kind"] == "create":
                count = self._table_row_count(item["table"])
                step_rows.append(count)
                estimate = ROW_BYTES * count
                stats.observe(count, estimate)
                self._check_budget(estimate, f"state table {item['table']}")
        stats.extras["step_rows"] = step_rows
        rows = self._fetch(translation.final_select())
        return [(int(s), float(r), float(i)) for s, r, i in rows]

    # ------------------------------------------------------------- utilities

    def execute_analysis_query(self, circuit: QuantumCircuit, query_builder, *args) -> list[tuple]:
        """Run the circuit, then an Output-Layer query against the final state table.

        ``query_builder`` is one of the functions in :mod:`repro.sql.queries`
        taking the final table name as its first argument (plus ``*args``).
        The whole pipeline — simulation and analysis — runs inside the RDBMS.
        """
        translation = self.translate(circuit)
        self._connect()
        try:
            for statement in translation.setup_statements():
                self._execute(statement)
            for item in translation.materialized_statements(keep_intermediate=self.keep_intermediate):
                self._execute(item["sql"])
            return self._fetch(query_builder(translation.final_table, *args))
        finally:
            self._disconnect()

    def run_script(self, statements: Sequence[str]) -> list[tuple]:
        """Execute arbitrary statements on a fresh connection (last result returned)."""
        self._connect()
        try:
            result: list[tuple] = []
            for statement in statements[:-1]:
                self._execute(statement)
            if statements:
                result = self._fetch(statements[-1])
            return result
        finally:
            self._disconnect()

    def capacity_rows(self) -> int | None:
        """How many state rows fit in the configured byte budget (None = unlimited)."""
        if self.max_state_bytes is None:
            return None
        return self.max_state_bytes // ROW_BYTES
