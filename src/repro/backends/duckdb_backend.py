"""Optional DuckDB execution backend.

The paper's Simulation Layer supports DuckDB 1.1; this backend runs the same
translated SQL on DuckDB *when the package is installed*.  In the offline
reproduction environment DuckDB is unavailable, so importing this module is
safe but constructing the backend raises
:class:`~repro.errors.BackendUnavailableError` with a pointer to the embedded
columnar substitute (:class:`~repro.backends.memdb_backend.MemDBBackend`).
"""

from __future__ import annotations

import importlib
import importlib.util

from ..errors import BackendError, BackendUnavailableError
from ..sql.dialect import DUCKDB
from .base import MODE_CTE, RelationalBackend


def duckdb_available() -> bool:
    """True if the ``duckdb`` package can be imported."""
    return importlib.util.find_spec("duckdb") is not None


class DuckDBBackend(RelationalBackend):
    """Runs translated circuits on DuckDB (requires the ``duckdb`` package)."""

    name = "duckdb"
    dialect = DUCKDB

    def __init__(
        self,
        mode: str = MODE_CTE,
        database_path: str | None = None,
        prune_epsilon: float | None = None,
        fuse: bool = False,
        max_fused_qubits: int = 2,
        keep_intermediate: bool = False,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
        memory_limit: str | None = None,
    ) -> None:
        if not duckdb_available():
            raise BackendUnavailableError(
                "the 'duckdb' package is not installed; use MemDBBackend (the embedded "
                "columnar engine) or install duckdb>=1.1 to enable this backend"
            )
        super().__init__(
            mode=mode,
            prune_epsilon=prune_epsilon,
            fuse=fuse,
            max_fused_qubits=max_fused_qubits,
            keep_intermediate=keep_intermediate,
            max_state_bytes=max_state_bytes,
            prune_atol=prune_atol,
        )
        self.database_path = database_path
        self.memory_limit = memory_limit
        self._connection = None

    # ------------------------------------------------------------ connection

    def _connect(self) -> None:
        duckdb = importlib.import_module("duckdb")
        target = self.database_path if self.database_path is not None else ":memory:"
        try:
            self._connection = duckdb.connect(target)
            if self.memory_limit:
                self._connection.execute(f"SET memory_limit = '{self.memory_limit}'")
        except Exception as exc:  # duckdb raises its own exception types
            raise BackendError(f"could not open DuckDB database {target!r}: {exc}") from exc

    def _disconnect(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # --------------------------------------------------------------- execute

    def _require_connection(self):
        if self._connection is None:
            raise BackendError("DuckDB backend is not connected")
        return self._connection

    def _execute(self, sql: str) -> None:
        try:
            self._require_connection().execute(sql)
        except Exception as exc:
            raise BackendError(f"DuckDB error for statement {sql[:120]!r}: {exc}") from exc

    def _fetch(self, sql: str) -> list[tuple]:
        try:
            return self._require_connection().execute(sql).fetchall()
        except Exception as exc:
            raise BackendError(f"DuckDB error for query {sql[:120]!r}: {exc}") from exc
