"""Benchmark records and timing metrics.

Every benchmark run produces a flat list of :class:`BenchmarkRecord` rows —
one per (workload, size, method) combination — holding the performance
metrics the paper's Output Layer displays: execution time, memory usage of
the state representation, and success/failure status (a method that exceeds
its memory budget records ``status="out_of_memory"`` instead of aborting the
whole comparison).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import BenchmarkError

#: Run status values.
STATUS_OK = "ok"
STATUS_OOM = "out_of_memory"
STATUS_ERROR = "error"
STATUS_SKIPPED = "skipped"


@dataclass
class BenchmarkRecord:
    """One benchmark measurement."""

    workload: str
    num_qubits: int
    method: str
    status: str = STATUS_OK
    wall_time_s: float = 0.0
    peak_state_rows: int = 0
    peak_state_bytes: int = 0
    final_nonzero: int = 0
    num_gates: int = 0
    error: str = ""
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat dictionary for CSV/JSON export."""
        row = {
            "workload": self.workload,
            "num_qubits": self.num_qubits,
            "method": self.method,
            "status": self.status,
            "wall_time_s": self.wall_time_s,
            "peak_state_rows": self.peak_state_rows,
            "peak_state_bytes": self.peak_state_bytes,
            "final_nonzero": self.final_nonzero,
            "num_gates": self.num_gates,
            "error": self.error,
        }
        row.update({f"extra_{key}": value for key, value in self.extra.items()})
        return row

    @property
    def succeeded(self) -> bool:
        """True when the run completed within its budgets."""
        return self.status == STATUS_OK


@dataclass
class TimingStats:
    """Aggregate of repeated timing measurements."""

    samples: list[float]

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples) if len(self.samples) > 1 else 0.0

    def to_dict(self) -> dict:
        return {
            "best_s": self.best,
            "mean_s": self.mean,
            "median_s": self.median,
            "stdev_s": self.stdev,
            "repeats": len(self.samples),
        }


def time_callable(function: Callable[[], object], repeats: int = 3, warmup: int = 0) -> TimingStats:
    """Time a zero-argument callable ``repeats`` times (after ``warmup`` calls)."""
    if repeats < 1:
        raise BenchmarkError("repeats must be at least 1")
    for _round in range(warmup):
        function()
    samples: list[float] = []
    for _round in range(repeats):
        started = time.perf_counter()
        function()
        samples.append(time.perf_counter() - started)
    return TimingStats(samples)


def speedup(baseline: Sequence[BenchmarkRecord], candidate: Sequence[BenchmarkRecord]) -> dict[tuple[str, int], float]:
    """Per-(workload, size) speedup of ``candidate`` over ``baseline`` (time ratio)."""
    base_index = {(record.workload, record.num_qubits): record for record in baseline if record.succeeded}
    ratios: dict[tuple[str, int], float] = {}
    for record in candidate:
        key = (record.workload, record.num_qubits)
        reference = base_index.get(key)
        if reference is None or not record.succeeded or record.wall_time_s <= 0:
            continue
        ratios[key] = reference.wall_time_s / record.wall_time_s
    return ratios
