"""Memory accounting and budgets for the capacity experiments.

The headline numbers the paper cites (appendix B4 of the extended report) are
obtained under a fixed memory limit: "with a 2.0 GB memory limit, the RDBMS
approach simulated up to 3,118x more qubits than a conventional simulation
method for sparse circuits".  This module provides the budget arithmetic used
to reproduce the *shape* of that result:

* the dense state-vector needs ``16 * 2**n`` bytes regardless of sparsity;
* the relational representation needs ``24 * rows`` bytes, where ``rows`` is
  the number of nonzero amplitudes (2 for a GHZ state, independent of n);
* given a budget, each representation has a maximum simulable qubit count.

Physical process memory can also be sampled (``resource`` / ``tracemalloc``)
for reporting, but budget enforcement is logical so experiments are
deterministic and platform-independent.
"""

from __future__ import annotations

import resource
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import BenchmarkError

#: Bytes per dense complex128 amplitude.
STATEVECTOR_BYTES_PER_AMPLITUDE = 16
#: Bytes per relational state row (s BIGINT, r DOUBLE, i DOUBLE).
RELATIONAL_BYTES_PER_ROW = 24

#: The memory limit used in the paper's referenced experiment.
PAPER_MEMORY_LIMIT_BYTES = 2 * 1024 ** 3


def statevector_bytes(num_qubits: int) -> int:
    """Memory needed by a dense state vector on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise BenchmarkError("num_qubits must be positive")
    return STATEVECTOR_BYTES_PER_AMPLITUDE * (1 << num_qubits)


def relational_bytes(rows: int) -> int:
    """Memory needed by a relational state with ``rows`` nonzero amplitudes."""
    if rows < 0:
        raise BenchmarkError("row count must be non-negative")
    return RELATIONAL_BYTES_PER_ROW * rows


def max_statevector_qubits(budget_bytes: int) -> int:
    """Largest ``n`` with ``16 * 2**n <= budget_bytes``."""
    if budget_bytes < STATEVECTOR_BYTES_PER_AMPLITUDE * 2:
        return 0
    n = 0
    while statevector_bytes(n + 1) <= budget_bytes:
        n += 1
    return n


def max_relational_qubits(budget_bytes: int, rows_for_circuit) -> int:
    """Largest ``n`` whose relational state fits the budget.

    ``rows_for_circuit`` maps a qubit count to the peak number of nonzero
    amplitudes of the workload (e.g. ``lambda n: 2`` for GHZ).  The search is
    capped at the 62-qubit limit of the 64-bit integer encoding.
    """
    best = 0
    for n in range(1, 63):
        if relational_bytes(int(rows_for_circuit(n))) <= budget_bytes:
            best = n
        else:
            break
    return best


def capacity_ratio(budget_bytes: int, rows_for_circuit) -> dict:
    """Capacity comparison under a budget: the paper's "k x more qubits" claim.

    Returns the max qubit counts of both representations plus their ratio and
    the ratio of representable state-space sizes (2**n), which is the factor
    the paper quotes.
    """
    dense = max_statevector_qubits(budget_bytes)
    relational = max_relational_qubits(budget_bytes, rows_for_circuit)
    return {
        "budget_bytes": budget_bytes,
        "statevector_max_qubits": dense,
        "relational_max_qubits": relational,
        "extra_qubits": relational - dense,
        "qubit_ratio": (relational / dense) if dense else float("inf"),
    }


# ---------------------------------------------------------------------------
# Encoded columnar storage accounting
# ---------------------------------------------------------------------------


def encoded_storage_report(storage_stats: dict) -> dict:
    """Condense an engine ``storage_stats()`` dict into the bench report shape.

    Splits each table's footprint into the three encoded-storage components
    — value/code chunks, dictionaries, validity bitmaps — and reports the
    object-array bytes a dictionary-encoded text column *would* have needed
    (8-byte references plus one boxed str per distinct value is the floor;
    the per-row ``str`` objects the ablated engine actually allocates are
    counted via its own report instead), so the columnar benchmarks can
    print dict-on vs dict-off sizes side by side.
    """
    tables = {}
    totals = {"data_bytes": 0, "dictionary_bytes": 0, "validity_bytes": 0}
    for table_name, table_stats in storage_stats.get("tables", {}).items():
        columns = {}
        for column_name, column_stats in table_stats.get("columns", {}).items():
            entry = {
                "kind": column_stats["kind"],
                "data_bytes": column_stats["data_bytes"],
                "dictionary_bytes": column_stats["dictionary_bytes"],
                "validity_bytes": column_stats["validity_bytes"],
                "dictionary_size": column_stats["dictionary_size"],
                "null_count": column_stats["null_count"],
            }
            if column_stats["kind"] == "dict":
                entry["object_bytes_floor"] = (
                    8 * column_stats["rows"] + column_stats["dictionary_bytes"]
                )
            columns[column_name] = entry
            for key in totals:
                totals[key] += column_stats[key]
        tables[table_name] = {
            "rows": table_stats.get("rows", 0),
            "total_bytes": table_stats.get("total_bytes", 0),
            "columns": columns,
        }
    return {
        "dict_encoding": storage_stats.get("dict_encoding"),
        "total_bytes": storage_stats.get("total_bytes", 0),
        **totals,
        "tables": tables,
    }


# ---------------------------------------------------------------------------
# Physical memory sampling (reporting only)
# ---------------------------------------------------------------------------


def peak_rss_bytes() -> int:
    """Peak resident set size of this process so far (Linux: ru_maxrss is KiB)."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int(usage.ru_maxrss) * 1024


@dataclass
class AllocationReport:
    """Result of tracing Python allocations around a code block."""

    current_bytes: int
    peak_bytes: int


@contextmanager
def trace_allocations():
    """Context manager measuring Python-level allocations via ``tracemalloc``.

    Yields an :class:`AllocationReport` that is filled in when the block
    exits.  Nested tracing is not supported (tracemalloc is process-global).
    """
    report = AllocationReport(0, 0)
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    baseline, _baseline_peak = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        yield report
    finally:
        current, peak = tracemalloc.get_traced_memory()
        report.current_bytes = max(0, current - baseline)
        report.peak_bytes = max(0, peak - baseline)
        if not already_tracing:
            tracemalloc.stop()


class MemoryBudget:
    """A byte budget shared by capacity experiments.

    Provides convenience constructors for the budgets used in the benchmark
    harness (the paper's 2 GB limit and scaled-down laptop variants).
    """

    def __init__(self, limit_bytes: int) -> None:
        if limit_bytes <= 0:
            raise BenchmarkError("memory budget must be positive")
        self.limit_bytes = int(limit_bytes)

    @classmethod
    def paper_limit(cls) -> "MemoryBudget":
        """The 2.0 GB limit of the referenced experiment."""
        return cls(PAPER_MEMORY_LIMIT_BYTES)

    @classmethod
    def mebibytes(cls, amount: float) -> "MemoryBudget":
        """A budget expressed in MiB."""
        return cls(int(amount * 1024 ** 2))

    def fits_statevector(self, num_qubits: int) -> bool:
        """True when a dense vector of ``num_qubits`` fits the budget."""
        return statevector_bytes(num_qubits) <= self.limit_bytes

    def fits_relational(self, rows: int) -> bool:
        """True when a relational state of ``rows`` rows fits the budget."""
        return relational_bytes(rows) <= self.limit_bytes

    def __repr__(self) -> str:
        return f"MemoryBudget({self.limit_bytes} bytes)"
