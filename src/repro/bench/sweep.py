"""Parameter-space sweeps over parameterized circuit families.

Sec. 3.3: "Researchers can define families of circuits with varying
parameters, and Qymera automates simulation across the parameter space."
A :class:`ParameterSweep` couples a circuit family with a grid of parameter
assignments; :meth:`run` simulates every grid point on the chosen method and
collects per-point metrics plus a user-supplied observable.

The family can be given two ways:

* a **template**: a parameterized :class:`QuantumCircuit` whose free
  parameters are the grid's axes.  The sweep compiles the template once per
  method instance (``method.compile(template)``) and then binds/executes
  each point on that shared executable — the same reuse as
  :meth:`~repro.simulators.base.Executable.execute_batch`, but point by
  point so one bad grid point is recorded as an error instead of aborting
  the sweep (``execute_batch`` is the raising variant);
* a **callable** mapping a parameter point to a bound circuit (for families
  whose *structure* changes with the point).  Each point then goes through
  ``compile(circuit).bind().execute()`` on the shared method instance, and
  plan reuse falls to the method's own caches (the memdb plan cache).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.circuit import QuantumCircuit
from ..errors import BenchmarkError, QymeraError
from ..output.result import SimulationResult

#: A point in parameter space: name -> value.
ParameterPoint = dict[str, float]


@dataclass
class SweepResult:
    """Result of one grid point."""

    point: ParameterPoint
    status: str
    wall_time_s: float = 0.0
    nonzero_amplitudes: int = 0
    observable: float | None = None
    error: str = ""
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        row = {f"param_{name}": value for name, value in self.point.items()}
        row.update(
            {
                "status": self.status,
                "wall_time_s": self.wall_time_s,
                "nonzero_amplitudes": self.nonzero_amplitudes,
                "observable": self.observable,
                "error": self.error,
            }
        )
        return row


def grid(points: Mapping[str, Sequence[float]]) -> list[ParameterPoint]:
    """Cartesian product of per-parameter value lists."""
    if not points:
        raise BenchmarkError("parameter grid must not be empty")
    names = list(points)
    combinations = itertools.product(*(points[name] for name in names))
    return [dict(zip(names, values)) for values in combinations]


class ParameterSweep:
    """Automated simulation of a circuit family across a parameter grid.

    Parameters
    ----------
    family:
        Either a parameterized :class:`QuantumCircuit` template (grid keys
        are its parameter names) or a callable mapping a parameter point to
        a bound :class:`QuantumCircuit`.
    method_factory:
        Zero-argument factory producing the simulator/backend.
    observable:
        Optional callable mapping a :class:`SimulationResult` to a float
        (e.g. a MaxCut expectation value); stored per point.
    reuse_method:
        When true (the default) one method instance built by the factory is
        reused for every grid point — for a template family the instance's
        compiled :class:`~repro.simulators.base.Executable` is shared too.
        Reuse is what lets the memdb backend re-bind the sweep's
        structurally identical queries against its cached plans instead of
        re-parsing them at each point.  Set to false to restore a fresh
        instance per point.
    """

    def __init__(
        self,
        family: QuantumCircuit | Callable[[ParameterPoint], QuantumCircuit],
        method_factory: Callable[[], object],
        observable: Callable[[SimulationResult], float] | None = None,
        reuse_method: bool = True,
    ) -> None:
        if isinstance(family, QuantumCircuit):
            self.template: QuantumCircuit | None = family
            self.family: Callable[[ParameterPoint], QuantumCircuit] | None = None
        else:
            self.template = None
            self.family = family
        self.method_factory = method_factory
        self.observable = observable
        self.reuse_method = reuse_method

    def run(self, points: Sequence[ParameterPoint]) -> list[SweepResult]:
        """Simulate every parameter point, never aborting the sweep on failures."""
        if not points:
            raise BenchmarkError("no parameter points to sweep")
        results: list[SweepResult] = []
        shared = None
        shared_executable = None
        if self.reuse_method:
            try:
                shared = self.method_factory()
                if self.template is not None:
                    shared_executable = shared.compile(self.template)
            except QymeraError as exc:
                # Keep the no-abort contract: a broken factory (or template
                # compile) fails every point instead of raising out of the
                # sweep.
                return [SweepResult(point=dict(point), status="error", error=str(exc)) for point in points]
        for point in points:
            try:
                outcome = self._run_point(dict(point), shared, shared_executable)
            except QymeraError as exc:
                results.append(SweepResult(point=dict(point), status="error", error=str(exc)))
                continue
            value = None
            if self.observable is not None:
                value = float(self.observable(outcome))
            results.append(
                SweepResult(
                    point=dict(point),
                    status="ok",
                    wall_time_s=outcome.wall_time_s,
                    nonzero_amplitudes=outcome.state.num_nonzero,
                    observable=value,
                    extra={"method": outcome.method},
                )
            )
        return results

    def _run_point(self, point: ParameterPoint, shared, shared_executable) -> SimulationResult:
        """One grid point through the compile-bind-execute pipeline."""
        if self.template is not None:
            if shared_executable is not None:
                return shared_executable.bind(point).execute()
            return self.method_factory().compile(self.template).bind(point).execute()
        assert self.family is not None
        circuit = self.family(point)
        simulator = shared if shared is not None else self.method_factory()
        return simulator.compile(circuit).bind().execute()

    def best_point(self, results: Sequence[SweepResult], maximize: bool = True) -> SweepResult:
        """The grid point with the best observable value."""
        scored = [result for result in results if result.status == "ok" and result.observable is not None]
        if not scored:
            raise BenchmarkError("no successful sweep points with an observable")
        return max(scored, key=lambda r: r.observable) if maximize else min(scored, key=lambda r: r.observable)
