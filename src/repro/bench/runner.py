"""The benchmark runner: execute workloads across simulation methods.

This is the programmatic form of the paper's "benchmarking suite for
systematically comparing RDBMS performance against alternative simulators on
a wide range of circuit inputs": a :class:`BenchmarkRunner` is configured
with methods (backends and simulators), workloads and qubit counts, runs the
cross product, verifies results against a reference method and collects
:class:`~repro.bench.metrics.BenchmarkRecord` rows.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..backends import MemDBBackend, SQLiteBackend
from ..core.circuit import QuantumCircuit
from ..errors import BenchmarkError, QymeraError, ResourceLimitExceeded
from ..output.analysis import states_agree
from ..output.result import SimulationResult
from ..simulators import (
    DecisionDiagramSimulator,
    MPSSimulator,
    SparseSimulator,
    StatevectorSimulator,
)
from .metrics import STATUS_ERROR, STATUS_OK, STATUS_OOM, STATUS_SKIPPED, BenchmarkRecord
from .workloads import Workload, get_workload

#: Factory type: builds a fresh simulator/backend for one run.
MethodFactory = Callable[[], object]


def default_method_factories(max_state_bytes: int | None = None) -> dict[str, MethodFactory]:
    """The standard method set: both RDBMS backends plus all baseline simulators."""
    return {
        "sqlite": lambda: SQLiteBackend(mode="materialized", max_state_bytes=max_state_bytes),
        "memdb": lambda: MemDBBackend(mode="materialized", max_state_bytes=max_state_bytes),
        "statevector": lambda: StatevectorSimulator(max_state_bytes=max_state_bytes),
        "sparse": lambda: SparseSimulator(max_state_bytes=max_state_bytes),
        "mps": lambda: MPSSimulator(max_state_bytes=max_state_bytes),
        "dd": lambda: DecisionDiagramSimulator(max_state_bytes=max_state_bytes),
    }


class BenchmarkRunner:
    """Runs (workload x size x method) combinations and records metrics.

    Parameters
    ----------
    methods:
        Mapping of method name to a zero-argument factory returning a fresh
        simulator or backend for every run (so per-run state never leaks).
    reference:
        Name of the method whose result is used for correctness checking
        (default ``statevector`` when present).  Verification is skipped for
        sizes where the reference itself fails or is absent.
    verify:
        Whether to cross-check every successful result against the reference.
    """

    def __init__(
        self,
        methods: Mapping[str, MethodFactory] | None = None,
        reference: str | None = "statevector",
        verify: bool = True,
    ) -> None:
        self.methods = dict(methods) if methods is not None else default_method_factories()
        if not self.methods:
            raise BenchmarkError("at least one method is required")
        self.reference = reference if reference in self.methods else None
        self.verify = verify and self.reference is not None

    # ----------------------------------------------------------------- running

    def run_circuit(self, circuit: QuantumCircuit, workload_name: str = "") -> list[BenchmarkRecord]:
        """Run one concrete circuit through every configured method."""
        records: list[BenchmarkRecord] = []
        results: dict[str, SimulationResult] = {}
        for method_name, factory in self.methods.items():
            record = BenchmarkRecord(
                workload=workload_name or circuit.name,
                num_qubits=circuit.num_qubits,
                method=method_name,
                num_gates=circuit.size(),
            )
            try:
                simulator = factory()
                # The runner is a thin client of the compile-bind-execute
                # pipeline; with a fresh instance per run this is equivalent
                # to simulator.run(circuit) but keeps the stages explicit.
                result = simulator.compile(circuit).bind().execute()
            except ResourceLimitExceeded as exc:
                record.status = STATUS_OOM
                record.error = str(exc)
            except QymeraError as exc:
                record.status = STATUS_ERROR
                record.error = str(exc)
            else:
                results[method_name] = result
                record.status = STATUS_OK
                record.wall_time_s = result.wall_time_s
                record.peak_state_rows = result.peak_state_rows
                record.peak_state_bytes = result.peak_state_bytes
                record.final_nonzero = result.state.num_nonzero
                # wall_time_s covers the execute stage only; keep the
                # amortizable compile-stage cost visible per record so
                # end-to-end accounting stays possible.
                for key in ("max_bond_dimension", "unique_nodes", "compile_time_s"):
                    if key in result.metadata:
                        record.extra[key] = result.metadata[key]
            records.append(record)

        if self.verify and self.reference in results:
            reference_state = results[self.reference].state
            for record in records:
                if record.method == self.reference or record.status != STATUS_OK:
                    continue
                agrees = states_agree(reference_state, results[record.method].state, atol=1e-6)
                record.extra["matches_reference"] = bool(agrees)
                if not agrees:
                    record.status = STATUS_ERROR
                    record.error = "result differs from the reference method"
        return records

    def run_workload(self, workload: Workload | str, sizes: Sequence[int]) -> list[BenchmarkRecord]:
        """Run a named workload at several qubit counts."""
        workload = get_workload(workload) if isinstance(workload, str) else workload
        records: list[BenchmarkRecord] = []
        for num_qubits in sizes:
            try:
                circuit = workload.build(num_qubits)
            except QymeraError as exc:
                for method_name in self.methods:
                    records.append(
                        BenchmarkRecord(
                            workload=workload.name,
                            num_qubits=num_qubits,
                            method=method_name,
                            status=STATUS_SKIPPED,
                            error=f"workload construction failed: {exc}",
                        )
                    )
                continue
            records.extend(self.run_circuit(circuit, workload_name=workload.name))
        return records

    def run_suite(self, workloads: Iterable[Workload | str], sizes: Sequence[int]) -> list[BenchmarkRecord]:
        """Run several workloads over the same size sweep."""
        records: list[BenchmarkRecord] = []
        for workload in workloads:
            records.extend(self.run_workload(workload, sizes))
        return records

    # ------------------------------------------------------------ capacity

    def max_simulable_qubits(
        self,
        workload: Workload | str,
        max_state_bytes: int,
        candidate_sizes: Sequence[int],
    ) -> dict[str, int]:
        """Largest workload size each method completes under a byte budget.

        This is the experiment behind the paper's "k x more qubits under a
        fixed memory limit" claim: every method gets the same budget, the
        workload is swept upward, and the largest successful width is
        recorded (0 if even the smallest size fails).

        The sweep routes through the compile–bind–execute lifecycle with
        *one instance per method* instead of a fresh ``run()`` per (method,
        size): circuits are built once for all methods, each size compiles
        into a reusable executable, and a persistent backend keeps its
        engine — and the process-wide plan cache binding — warm across the
        whole sweep, so the capacity probe measures simulation limits, not
        repeated setup cost.
        """
        workload = get_workload(workload) if isinstance(workload, str) else workload
        sizes = sorted(candidate_sizes)
        circuits = {num_qubits: workload.build(num_qubits) for num_qubits in sizes}
        best: dict[str, int] = {name: 0 for name in self.methods}
        for method_name, factory in self.methods.items():
            simulator = factory()
            if getattr(simulator, "max_state_bytes", None) is None:
                simulator.max_state_bytes = max_state_bytes
            for num_qubits in sizes:
                try:
                    simulator.compile(circuits[num_qubits]).bind().execute()
                except QymeraError:
                    continue
                best[method_name] = max(best[method_name], num_qubits)
        return best
