"""HTTP load generator for the serving tier (stdlib ``http.client``).

Drives a running :class:`~repro.service.server.http.JobServer` the way real
traffic would — over the wire, concurrently, per tenant — and reports
per-tenant latency distributions.  Two client shapes cover the serving
benchmark's mixed-traffic scenario:

* **interactive**: submit one single-point job, poll until terminal, record
  the end-to-end latency (what a human at a notebook experiences);
* **batch**: submit grid sweeps back-to-back without waiting (what a
  parameter-sweep pipeline does to the queue).

:class:`ServingClient` is also the minimal Python client for the HTTP API
(used by ``examples/serve.py``); it deliberately sticks to the stdlib so
the serving tier's whole story adds zero dependencies.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Mapping, Sequence

from ..errors import BenchmarkError
from ..io.json_io import circuit_to_dict


class ServingClient:
    """Thin blocking client for the serving tier's HTTP/JSON API."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            merged = {"Content-Type": "application/json"} if body else {}
            if headers:
                merged.update(headers)
            connection.request(method, path, body=body, headers=merged)
            response = connection.getresponse()
            raw = response.read()
            document = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, document
        finally:
            connection.close()

    # ------------------------------------------------------------- endpoints

    def submit(
        self,
        circuit,
        method: str = "memdb",
        tenant: str = "default",
        params: Mapping[str, float] | None = None,
        param_grid: Sequence[Mapping[str, float]] | None = None,
        options: Mapping[str, object] | None = None,
        tag: str = "",
        traceparent: str | None = None,
    ) -> tuple[int, dict]:
        """POST /v1/jobs; returns (http_status, body) without raising on 429.

        ``traceparent`` (a W3C ``00-{trace}-{span}-{flags}`` string) makes
        the submit join an existing distributed trace instead of letting
        the server mint one.
        """
        payload: dict = {
            "circuit": circuit_to_dict(circuit),
            "method": method,
            "tenant": tenant,
            "tag": tag,
        }
        if params is not None:
            payload["params"] = dict(params)
        if param_grid is not None:
            payload["param_grid"] = [dict(point) for point in param_grid]
        if options:
            payload["options"] = dict(options)
        headers = {"traceparent": traceparent} if traceparent else None
        return self._request("POST", "/v1/jobs", payload, headers=headers)

    def poll(self, job_id: int) -> tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: int) -> tuple[int, dict]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def stats(self) -> dict:
        status, document = self._request("GET", "/v1/stats")
        if status != 200:
            raise BenchmarkError(f"/v1/stats returned {status}: {document}")
        return document

    def trace(self, job_id: int) -> tuple[int, dict]:
        """GET /v1/traces/{job_id}: one request's assembled span tree."""
        return self._request("GET", f"/v1/traces/{job_id}")

    def traces(self, tenant: str | None = None, slow: bool = False, limit: int = 50) -> dict:
        """GET /v1/traces: recent trace summaries plus the slow-request log."""
        query = [f"limit={int(limit)}"]
        if tenant:
            query.append(f"tenant={tenant}")
        if slow:
            query.append("slow=1")
        status, document = self._request("GET", "/v1/traces?" + "&".join(query))
        if status != 200:
            raise BenchmarkError(f"/v1/traces returned {status}: {document}")
        return document

    def metrics_text(self) -> str:
        """GET /v1/metrics: the raw Prometheus text exposition."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise BenchmarkError(f"/v1/metrics returned {response.status}")
            return raw.decode("utf-8")
        finally:
            connection.close()

    def stream(self, job_id: int, timeout: float = 300.0) -> list[dict]:
        """GET /v1/jobs/{id}/stream: drain the chunked NDJSON to a list."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/stream?timeout={timeout}")
            response = connection.getresponse()
            records = []
            for line in response.read().decode("utf-8").splitlines():
                line = line.strip()
                if line:
                    records.append(json.loads(line))
            return records
        finally:
            connection.close()

    def wait(self, job_id: int, timeout: float = 120.0, interval: float = 0.01) -> dict:
        """Poll until the job is terminal (or journal-answered); returns the body."""
        deadline = time.monotonic() + timeout
        while True:
            status, document = self.poll(job_id)
            if status == 410 or document.get("status") in ("done", "error", "cancelled"):
                return document
            if time.monotonic() > deadline:
                raise BenchmarkError(f"job {job_id} still {document.get('status')!r} after {timeout}s")
            time.sleep(interval)


class InteractiveLoad:
    """Closed-loop interactive tenant: submit one job, wait, measure, repeat."""

    def __init__(
        self,
        client: ServingClient,
        circuit,
        tenant: str,
        method: str = "memdb",
        jobs: int = 20,
        timeout: float = 120.0,
    ) -> None:
        self.client = client
        self.circuit = circuit
        self.tenant = tenant
        self.method = method
        self.jobs = int(jobs)
        self.timeout = float(timeout)
        self.latencies: list[float] = []
        self.rejected = 0
        self.errors = 0

    def run(self) -> list[float]:
        for _ in range(self.jobs):
            started = time.monotonic()
            status, body = self.client.submit(self.circuit, method=self.method, tenant=self.tenant)
            if status == 429:
                self.rejected += 1
                time.sleep(min(1.0, float(body.get("retry_after", 0.1))))
                continue
            if status != 202:
                self.errors += 1
                continue
            final = self.client.wait(body["job_id"], timeout=self.timeout)
            if final.get("status") == "done":
                self.latencies.append(time.monotonic() - started)
            else:
                self.errors += 1
        return self.latencies


class BatchFlood:
    """Open-loop batch tenant: pour grid sweeps at the queue without waiting."""

    def __init__(
        self,
        client: ServingClient,
        circuit,
        tenant: str,
        param_grid: Sequence[Mapping[str, float]],
        method: str = "memdb",
        jobs: int = 50,
        interval: float = 0.0,
    ) -> None:
        self.client = client
        self.circuit = circuit
        self.tenant = tenant
        self.param_grid = list(param_grid)
        self.method = method
        self.jobs = int(jobs)
        self.interval = float(interval)
        self.submitted_ids: list[int] = []
        self.rejected = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> list[int]:
        for _ in range(self.jobs):
            if self._stop.is_set():
                break
            status, body = self.client.submit(
                self.circuit, method=self.method, tenant=self.tenant, param_grid=self.param_grid
            )
            if status == 202:
                self.submitted_ids.append(body["job_id"])
            elif status == 429:
                self.rejected += 1
                time.sleep(min(0.5, float(body.get("retry_after", 0.05))))
            if self.interval:
                time.sleep(self.interval)
        return self.submitted_ids


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (raises on empty input)."""
    if not values:
        raise BenchmarkError("no samples to take a percentile of")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def run_mixed_load(
    client: ServingClient,
    interactive: InteractiveLoad,
    floods: Sequence[BatchFlood],
) -> dict:
    """Run batch floods concurrently with the interactive loop.

    The floods start first (saturating the queue), the interactive tenant
    runs its full closed loop, then the floods are stopped.  Returns the
    interactive latency summary plus flood accounting.
    """
    threads = [threading.Thread(target=flood.run, daemon=True) for flood in floods]
    for thread in threads:
        thread.start()
    try:
        latencies = interactive.run()
    finally:
        for flood in floods:
            flood.stop()
        for thread in threads:
            thread.join(timeout=30.0)
    summary = {
        "interactive_jobs": len(latencies),
        "interactive_rejected": interactive.rejected,
        "interactive_errors": interactive.errors,
        "flood_submitted": sum(len(flood.submitted_ids) for flood in floods),
        "flood_rejected": sum(flood.rejected for flood in floods),
    }
    if latencies:
        summary.update(
            {
                "p50_s": percentile(latencies, 0.50),
                "p99_s": percentile(latencies, 0.99),
                "mean_s": sum(latencies) / len(latencies),
            }
        )
    return summary
