"""Benchmark reporting: tables and summaries from raw records.

Turns flat :class:`~repro.bench.metrics.BenchmarkRecord` lists into the
tables the paper's Output Layer shows — per-method timing comparisons,
capacity tables under a memory budget, and win/loss summaries per sparsity
class — rendered through the text tools of :mod:`repro.output.visualization`
and exportable via :mod:`repro.output.export`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..errors import BenchmarkError
from ..output.visualization import comparison_table, line_plot
from .metrics import STATUS_OK, BenchmarkRecord


def records_to_rows(records: Sequence[BenchmarkRecord]) -> list[dict]:
    """Flatten records for CSV export or tabulation."""
    return [record.to_dict() for record in records]


def timing_table(records: Sequence[BenchmarkRecord], workload: str | None = None) -> str:
    """A (num_qubits x method) wall-clock table for one workload."""
    selected = [record for record in records if workload is None or record.workload == workload]
    if not selected:
        raise BenchmarkError(f"no records for workload {workload!r}")
    methods = sorted({record.method for record in selected})
    by_size: dict[int, dict[str, BenchmarkRecord]] = defaultdict(dict)
    for record in selected:
        by_size[record.num_qubits][record.method] = record
    rows = []
    for num_qubits in sorted(by_size):
        row: dict[str, object] = {"qubits": num_qubits}
        for method in methods:
            record = by_size[num_qubits].get(method)
            if record is None:
                row[method] = "-"
            elif record.status == STATUS_OK:
                row[method] = record.wall_time_s
            else:
                row[method] = record.status
        rows.append(row)
    return comparison_table(rows, columns=["qubits", *methods])


def memory_table(records: Sequence[BenchmarkRecord], workload: str | None = None) -> str:
    """A (num_qubits x method) table of peak state bytes."""
    selected = [record for record in records if workload is None or record.workload == workload]
    if not selected:
        raise BenchmarkError(f"no records for workload {workload!r}")
    methods = sorted({record.method for record in selected})
    by_size: dict[int, dict[str, BenchmarkRecord]] = defaultdict(dict)
    for record in selected:
        by_size[record.num_qubits][record.method] = record
    rows = []
    for num_qubits in sorted(by_size):
        row: dict[str, object] = {"qubits": num_qubits}
        for method in methods:
            record = by_size[num_qubits].get(method)
            if record is None:
                row[method] = "-"
            elif record.status == STATUS_OK:
                row[method] = record.peak_state_bytes
            else:
                row[method] = record.status
        rows.append(row)
    return comparison_table(rows, columns=["qubits", *methods])


def scaling_plot(records: Sequence[BenchmarkRecord], workload: str, logy: bool = True) -> str:
    """ASCII plot of wall time vs qubit count, one series per method."""
    series: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for record in records:
        if record.workload == workload and record.status == STATUS_OK:
            series[record.method].append((float(record.num_qubits), max(record.wall_time_s, 1e-9)))
    if not series:
        raise BenchmarkError(f"no successful records for workload {workload!r}")
    return line_plot(series, logy=logy, title=f"wall time vs qubits — {workload}")


def fastest_method_summary(records: Sequence[BenchmarkRecord]) -> dict[tuple[str, int], str]:
    """For each (workload, size), the method with the lowest wall time."""
    groups: dict[tuple[str, int], list[BenchmarkRecord]] = defaultdict(list)
    for record in records:
        if record.status == STATUS_OK:
            groups[(record.workload, record.num_qubits)].append(record)
    return {
        key: min(group, key=lambda record: record.wall_time_s).method
        for key, group in groups.items()
    }


def win_counts(records: Sequence[BenchmarkRecord]) -> dict[str, int]:
    """How many (workload, size) combinations each method wins on wall time."""
    counts: dict[str, int] = defaultdict(int)
    for winner in fastest_method_summary(records).values():
        counts[winner] += 1
    return dict(counts)


def engine_stats_table(stats: dict) -> str:
    """Render memdb plan-cache + optimizer statistics as one counter table.

    ``stats`` is the dict returned by ``MemDBBackend.engine_stats()`` /
    ``QymeraSession.simulations.engine_stats()``: a ``plan_cache`` block of
    hit/miss/eviction/invalidation counters and an ``optimizer`` block with
    rewrite/join-order counters plus the statistics-catalog summary.
    """
    if not stats:
        raise BenchmarkError("empty engine statistics")
    rows = []
    for counter, value in sorted(stats.get("plan_cache", {}).items()):
        rows.append({"subsystem": "plan_cache", "counter": counter, "value": value})
    optimizer = stats.get("optimizer", {})
    if optimizer:
        rows.append(
            {"subsystem": "optimizer", "counter": "enabled", "value": optimizer.get("enabled")}
        )
        for counter, value in sorted(optimizer.get("counters", {}).items()):
            rows.append({"subsystem": "optimizer", "counter": counter, "value": value})
        statistics = optimizer.get("statistics", {}) or {}
        for counter in ("analyzed_tables", "analyze_count", "invalidation_count", "feedback_count"):
            if counter in statistics:
                rows.append(
                    {"subsystem": "statistics", "counter": counter, "value": statistics[counter]}
                )
        adaptive = optimizer.get("adaptive", {}) or {}
        for counter in ("enabled", "replans", "corrections"):
            if counter in adaptive:
                rows.append(
                    {"subsystem": "adaptive", "counter": counter, "value": adaptive[counter]}
                )
    parallel = stats.get("parallel", {}) or {}
    for counter in ("enabled", "workers", "batches", "tasks", "inline_batches", "errors"):
        if counter in parallel:
            rows.append({"subsystem": "parallel", "counter": counter, "value": parallel[counter]})
    storage = stats.get("storage", {}) or {}
    for counter, value in sorted(storage.items()):
        if counter == "tables":
            continue
        rows.append({"subsystem": "storage", "counter": counter, "value": value})
    tracing = stats.get("tracing", {}) or {}
    for counter in ("enabled", "traces", "spans", "ring_size", "slow_queries"):
        if counter in tracing:
            rows.append({"subsystem": "tracing", "counter": counter, "value": tracing[counter]})
    if not rows:
        raise BenchmarkError("engine statistics contain no counters")
    return comparison_table(rows, columns=["subsystem", "counter", "value"])


def metrics_table(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as one instrument table.

    Counters and gauges get one row each; histograms get a row per summary
    statistic (count, p50, p95, p99, max) so latency distributions read at
    a glance next to the counters that drove them.
    """
    if not snapshot:
        raise BenchmarkError("empty metrics snapshot")
    rows = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        rows.append({"kind": "counter", "name": name, "stat": "value", "value": value})
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        rows.append({"kind": "gauge", "name": name, "stat": "value", "value": value})
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        for stat in ("count", "p50", "p95", "p99", "max"):
            if stat in summary:
                rows.append({"kind": "histogram", "name": name, "stat": stat, "value": summary[stat]})
    if not rows:
        raise BenchmarkError("metrics snapshot contains no instruments")
    return comparison_table(rows, columns=["kind", "name", "stat", "value"])


def tenant_table(snapshot: dict) -> str:
    """Render per-tenant serving metrics from a :meth:`MetricsRegistry.snapshot`.

    The serving tier publishes ``tenant.<name>.<instrument>`` counters and
    gauges (submitted/rejected/done/error/cancelled, queued, in_flight) plus
    a ``tenant.<name>.latency_seconds`` histogram; this collates them into
    one row per tenant so fairness reads at a glance — two tenants with
    wildly different submit counts should still show comparable latency
    percentiles under weighted-fair scheduling.
    """
    if not snapshot:
        raise BenchmarkError("empty metrics snapshot")
    tenants: dict[str, dict[str, object]] = defaultdict(dict)

    def tenant_key(name: str) -> tuple[str, str] | None:
        if not name.startswith("tenant."):
            return None
        remainder = name[len("tenant."):]
        tenant, _, instrument = remainder.rpartition(".")
        if not tenant or not instrument:
            return None
        return tenant, instrument

    for name, value in snapshot.get("counters", {}).items():
        parsed = tenant_key(name)
        if parsed:
            tenants[parsed[0]][parsed[1]] = value
    for name, value in snapshot.get("gauges", {}).items():
        parsed = tenant_key(name)
        if parsed:
            tenants[parsed[0]][parsed[1]] = value
    for name, summary in snapshot.get("histograms", {}).items():
        parsed = tenant_key(name)
        if parsed and parsed[1] == "latency_seconds":
            tenant = tenants[parsed[0]]
            tenant["latency_p50_s"] = summary.get("p50")
            tenant["latency_p99_s"] = summary.get("p99")
    if not tenants:
        raise BenchmarkError("metrics snapshot contains no tenant.* instruments")
    columns = [
        "tenant",
        "submitted",
        "rejected",
        "done",
        "error",
        "cancelled",
        "queued",
        "in_flight",
        "latency_p50_s",
        "latency_p99_s",
    ]
    rows = []
    for tenant in sorted(tenants):
        row: dict[str, object] = {"tenant": tenant}
        for column in columns[1:]:
            row[column] = tenants[tenant].get(column, 0)
        rows.append(row)
    return comparison_table(rows, columns=columns)


def trace_tree_table(trace: dict, max_depth: int | None = None) -> str:
    """Render one query trace (a :meth:`Span.to_dict` tree) as indented text.

    One line per span: indented name, wall time in milliseconds, and the
    span's attributes (rows, operator kind, morsel counts, cache provenance)
    in ``key=value`` form — the textual analogue of a flame graph, suitable
    for benchmark reports and the slow-query log.
    """
    if not trace or "name" not in trace:
        raise BenchmarkError("empty trace")
    lines: list[str] = []

    def render(span: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        duration = span.get("duration_s")
        timing = f"{duration * 1e3:.3f}ms" if isinstance(duration, (int, float)) else "-"
        attrs = span.get("attrs", {}) or {}
        detail = " ".join(f"{key}={value}" for key, value in attrs.items())
        line = f"{'  ' * depth}{span.get('name', '?')}  {timing}"
        if detail:
            line += f"  [{detail}]"
        lines.append(line)
        for child in span.get("children", []) or []:
            render(child, depth + 1)

    render(trace, 0)
    return "\n".join(lines)


def trace_waterfall_table(assembled: dict, width: int = 40) -> str:
    """Render one assembled request trace as a latency waterfall.

    ``assembled`` is the document ``/v1/traces/{job_id}`` returns (a
    :meth:`~repro.obs.sinks.RequestTraceStore.assemble` summary): the root
    ``request`` span with ingress / admission / queue-wait / job / engine
    children.  Each span becomes one row — indented name, offset from the
    request start, duration, and a proportional bar — so where a request's
    milliseconds went reads at a glance.  Spans shipped home from worker
    processes carry a ``worker_pid`` attribute and use their own clock;
    their offsets are rendered as ``~`` (not comparable with the parent's).
    """
    root = assembled.get("root") if isinstance(assembled, dict) else None
    if not root:
        raise BenchmarkError("assembled trace has no root span")
    total = root.get("duration_s") or 0.0
    base = root.get("start_s", 0.0)
    lines: list[str] = []
    header = (
        f"trace {assembled.get('trace_id', '?')}  job={assembled.get('job_id')}  "
        f"tenant={assembled.get('tenant')}  status={assembled.get('status')}  "
        f"total={total * 1e3:.3f}ms"
    )
    lines.append(header)

    def render(span: dict, depth: int, foreign_clock: bool) -> None:
        duration = float(span.get("duration_s") or 0.0)
        attrs = span.get("attrs", {}) or {}
        foreign = foreign_clock or "worker_pid" in attrs
        start = span.get("start_s")
        if foreign or not isinstance(start, (int, float)):
            offset_text = "     ~"
        else:
            offset_text = f"{max(0.0, (start - base)) * 1e3:10.3f}"
        if total > 0:
            span_width = max(1, min(width, int(round(width * duration / total))))
        else:
            span_width = 1
        bar = "#" * span_width
        name = f"{'  ' * depth}{span.get('name', '?')}"
        pid = f" pid={attrs['worker_pid']}" if "worker_pid" in attrs else ""
        orphan = " orphan" if attrs.get("orphan") else ""
        lines.append(
            f"{name:<28} +{offset_text}ms  {duration * 1e3:10.3f}ms  {bar}{pid}{orphan}"
        )
        for child in span.get("children", []) or []:
            render(child, depth + 1, foreign)

    render(root, 0, False)
    breakdown = assembled.get("breakdown") or {}
    if breakdown:
        lines.append(
            "stages: "
            + "  ".join(
                f"{stage}={breakdown.get(key, 0.0) * 1e3:.3f}ms"
                for stage, key in (
                    ("admission", "admission_s"),
                    ("queue_wait", "queue_wait_s"),
                    ("execute", "execute_s"),
                    ("total", "total_s"),
                )
            )
        )
    return "\n".join(lines)


def capacity_table(max_qubits_by_method: dict[str, int], budget_bytes: int) -> str:
    """Render the "max qubits under a fixed memory budget" comparison."""
    if not max_qubits_by_method:
        raise BenchmarkError("empty capacity results")
    baseline = max_qubits_by_method.get("statevector", 0)
    rows = []
    for method, qubits in sorted(max_qubits_by_method.items(), key=lambda kv: -kv[1]):
        rows.append(
            {
                "method": method,
                "max_qubits": qubits,
                "extra_qubits_vs_statevector": qubits - baseline,
                "budget_bytes": budget_bytes,
            }
        )
    return comparison_table(rows, columns=["method", "max_qubits", "extra_qubits_vs_statevector", "budget_bytes"])
