"""Named benchmark workloads (circuit families keyed by qubit count).

The benchmarking scenarios in the paper revolve around a small set of
circuit families — GHZ preparation, the equal superposition, the parity-check
algorithm, plus densifying circuits like the QFT.  A workload here is simply
a named factory ``num_qubits -> QuantumCircuit`` with a declared sparsity
class, so the runner and the capacity experiments can iterate over them
generically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..circuits import (
    dense_phase_circuit,
    ghz_circuit,
    parity_check_circuit,
    qaoa_maxcut_circuit,
    qft_on_basis_state,
    random_dense_circuit,
    random_sparse_circuit,
    ring_graph,
    superposed_parity_circuit,
    superposition_circuit,
    w_state_circuit,
)
from ..core.circuit import QuantumCircuit
from ..errors import BenchmarkError

#: Sparsity classes used to group workloads in reports.
SPARSE = "sparse"
LINEAR = "linear"
DENSE = "dense"


@dataclass(frozen=True)
class Workload:
    """A named circuit family."""

    name: str
    factory: Callable[[int], QuantumCircuit]
    sparsity: str
    description: str
    #: Peak nonzero amplitudes as a function of the qubit count (for capacity math).
    peak_rows: Callable[[int], int]

    def build(self, num_qubits: int) -> QuantumCircuit:
        """Instantiate the workload at a given width."""
        return self.factory(num_qubits)


def _parity_factory(num_qubits: int) -> QuantumCircuit:
    if num_qubits < 2:
        raise BenchmarkError("the parity workload needs at least 2 qubits (data + ancilla)")
    bits = [(index % 2) for index in range(num_qubits - 1)]
    return parity_check_circuit(bits, measure=False)


_WORKLOADS: dict[str, Workload] = {}


def _register(workload: Workload) -> None:
    _WORKLOADS[workload.name] = workload


_register(
    Workload(
        name="ghz",
        factory=ghz_circuit,
        sparsity=SPARSE,
        description="GHZ preparation (H + CX ladder); 2 nonzero amplitudes at any width",
        peak_rows=lambda n: 2,
    )
)
_register(
    Workload(
        name="parity",
        factory=_parity_factory,
        sparsity=SPARSE,
        description="Classical parity check loaded onto an ancilla; 1 nonzero amplitude",
        peak_rows=lambda n: 1,
    )
)
_register(
    Workload(
        name="w_state",
        factory=w_state_circuit,
        sparsity=LINEAR,
        description="W-state preparation; n nonzero amplitudes",
        peak_rows=lambda n: max(1, n),
    )
)
_register(
    Workload(
        name="parity_superposed",
        factory=lambda n: superposed_parity_circuit(max(1, n - 1)),
        sparsity=DENSE,
        description="Parity oracle over the uniform superposition of the data register",
        peak_rows=lambda n: 1 << max(1, n - 1),
    )
)
_register(
    Workload(
        name="superposition",
        factory=superposition_circuit,
        sparsity=DENSE,
        description="Equal superposition (H on every qubit); all 2^n amplitudes nonzero",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="qft",
        factory=lambda n: qft_on_basis_state(n, (1 << n) - 1),
        sparsity=DENSE,
        description="QFT applied to a basis state; dense output with nontrivial phases",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="dense_phase",
        factory=lambda n: dense_phase_circuit(n, rounds=2),
        sparsity=DENSE,
        description="H + CZ ring + T rounds; dense with entangling structure",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="random_sparse",
        factory=lambda n: random_sparse_circuit(n, depth=8, max_branching=2, seed=7),
        sparsity=SPARSE,
        description="Random permutation/diagonal circuit with at most 2 branching gates",
        peak_rows=lambda n: 4,
    )
)
_register(
    Workload(
        name="random_dense",
        factory=lambda n: random_dense_circuit(n, depth=3, seed=7),
        sparsity=DENSE,
        description="Random dense circuit (Hadamard layers + entanglers)",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="qaoa_ring",
        factory=lambda n: qaoa_maxcut_circuit(n, edges=ring_graph(n), p=1, gammas=[0.45], betas=[0.6]),
        sparsity=DENSE,
        description="Depth-1 QAOA MaxCut on a ring; the repeated-structure sweep workload",
        peak_rows=lambda n: 1 << n,
    )
)


def qaoa_sweep_family(num_nodes: int) -> Callable[[dict], QuantumCircuit]:
    """A ``point -> circuit`` family for parameter sweeps over the QAOA ring.

    Every point produces a circuit with identical structure (hence identical
    generated SQL apart from gate-table literals), which is the shape the
    memdb plan cache exploits: sweeps re-bind fresh gate tables against the
    plans compiled at the first point.
    """
    if num_nodes < 3:
        raise BenchmarkError("the QAOA ring sweep needs at least 3 nodes")
    edges = ring_graph(num_nodes)

    def family(point: dict) -> QuantumCircuit:
        return qaoa_maxcut_circuit(
            num_nodes, edges=edges, p=1, gammas=[point["gamma"]], betas=[point["beta"]]
        )

    return family


def get_workload(name: str) -> Workload:
    """Look up a workload by name."""
    if name not in _WORKLOADS:
        raise BenchmarkError(f"unknown workload {name!r}; available: {sorted(_WORKLOADS)}")
    return _WORKLOADS[name]


def workload_names() -> list[str]:
    """All registered workload names."""
    return sorted(_WORKLOADS)


def workloads_by_sparsity(sparsity: str) -> list[Workload]:
    """All workloads of one sparsity class."""
    return [workload for workload in _WORKLOADS.values() if workload.sparsity == sparsity]


# ---------------------------------------------------------------------------
# Hierarchical (XPath-style) relational workload
# ---------------------------------------------------------------------------
#
# A DBLP-style document tree flattened into one relation, with pre/post-order
# node encodings.  XPath axes map onto the SQL features this workload
# exercises: the descendant axis is the pre/post interval containment
# predicate, the following-sibling axis is a window over
# ``PARTITION BY parent ORDER BY pre``, and unbounded reachability is a
# recursive CTE over the ``parent`` edge.  ``benchmarks/bench_window.py``
# gates the vectorized window kernels against a per-partition Python loop on
# exactly this table.

#: Element names by tree depth, echoing DBLP's document structure.
TREE_LEVELS = ("dblp", "proceedings", "inproceedings", "author", "title")

#: Venue partition keys; the non-ASCII entries keep the dictionary-encoded
#: text path honest about unicode collation in partition keys.
TREE_VENUES = ("SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "Grundlagen", "Théorie", "データベース")

#: Root's ``parent`` sentinel (no node has id -1, so joins never match it).
TREE_NO_PARENT = -1


def dblp_tree_columns(num_nodes: int, seed: int = 7) -> dict[str, np.ndarray]:
    """A random recursive tree as columnar arrays (``create_table_from_columns``).

    Node 0 is the root; every later node attaches uniformly at random to an
    earlier node, which keeps the expected depth logarithmic — recursive-CTE
    reachability converges in ``O(log n)`` breadth-first iterations, far from
    the engine's iteration cap.  Columns: ``id``, ``parent`` (-1 for the
    root), ``pre``/``post`` order ranks, ``depth``, ``kind`` (element name by
    depth), ``venue`` (text partition key) and ``score`` (numeric payload).
    """
    if num_nodes < 1:
        raise BenchmarkError("the tree workload needs at least 1 node")
    rng = np.random.default_rng(seed)
    parent = np.full(num_nodes, TREE_NO_PARENT, dtype=np.int64)
    if num_nodes > 1:
        parent[1:] = rng.integers(0, np.arange(1, num_nodes))

    children: list[list[int]] = [[] for _ in range(num_nodes)]
    for node in range(1, num_nodes):
        children[parent[node]].append(node)

    pre = np.zeros(num_nodes, dtype=np.int64)
    post = np.zeros(num_nodes, dtype=np.int64)
    depth = np.zeros(num_nodes, dtype=np.int64)
    clock = 0
    # Iterative DFS: (node, next-child index) so post ranks close after subtrees.
    stack: list[list[int]] = [[0, 0]]
    pre[0] = clock
    clock += 1
    while stack:
        node, child_index = stack[-1]
        if child_index < len(children[node]):
            stack[-1][1] += 1
            child = children[node][child_index]
            depth[child] = depth[node] + 1
            pre[child] = clock
            clock += 1
            stack.append([child, 0])
        else:
            post[node] = clock
            clock += 1
            stack.pop()

    kinds = np.array(TREE_LEVELS, dtype=object)
    venues = np.array(TREE_VENUES, dtype=object)
    return {
        "id": np.arange(num_nodes, dtype=np.int64),
        "parent": parent,
        "pre": pre,
        "post": post,
        "depth": depth,
        "kind": kinds[np.minimum(depth, len(TREE_LEVELS) - 1)],
        "venue": venues[rng.integers(0, len(TREE_VENUES), num_nodes)],
        "score": np.round(rng.normal(size=num_nodes), 4),
    }


def tree_sibling_window_sql(table: str = "tree") -> str:
    """Sibling position, venue rank and running score in one window query.

    ``row_number() OVER (PARTITION BY parent ORDER BY pre)`` is the XPath
    following-sibling position; the venue rank and running sum exercise the
    ranking and prefix-aggregate kernels over the same scan.
    """
    return (
        "SELECT parent, pre, id, "
        "row_number() OVER (PARTITION BY parent ORDER BY pre) AS sibling_pos, "
        "rank() OVER (PARTITION BY venue ORDER BY score DESC, id) AS venue_rank, "
        "sum(score) OVER (PARTITION BY parent ORDER BY pre) AS running_score "
        f"FROM {table} ORDER BY parent, pre"
    )


def tree_descendants_recursive_sql(root: int, table: str = "tree") -> str:
    """Descendant axis as a recursive CTE over the parent edge."""
    return (
        "WITH RECURSIVE reach(node) AS ("
        f"SELECT id FROM {table} WHERE id = {root} "
        f"UNION SELECT t.id FROM {table} AS t JOIN reach AS r ON t.parent = r.node"
        ") SELECT node FROM reach ORDER BY node"
    )


def tree_descendants_interval_sql(root: int, table: str = "tree") -> str:
    """Descendant axis as the pre/post interval containment predicate."""
    return (
        f"SELECT t.id AS node FROM {table} AS t JOIN {table} AS a ON a.id = {root} "
        "WHERE t.pre >= a.pre AND t.post <= a.post ORDER BY t.id"
    )
