"""Named benchmark workloads (circuit families keyed by qubit count).

The benchmarking scenarios in the paper revolve around a small set of
circuit families — GHZ preparation, the equal superposition, the parity-check
algorithm, plus densifying circuits like the QFT.  A workload here is simply
a named factory ``num_qubits -> QuantumCircuit`` with a declared sparsity
class, so the runner and the capacity experiments can iterate over them
generically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..circuits import (
    dense_phase_circuit,
    ghz_circuit,
    parity_check_circuit,
    qaoa_maxcut_circuit,
    qft_on_basis_state,
    random_dense_circuit,
    random_sparse_circuit,
    ring_graph,
    superposed_parity_circuit,
    superposition_circuit,
    w_state_circuit,
)
from ..core.circuit import QuantumCircuit
from ..errors import BenchmarkError

#: Sparsity classes used to group workloads in reports.
SPARSE = "sparse"
LINEAR = "linear"
DENSE = "dense"


@dataclass(frozen=True)
class Workload:
    """A named circuit family."""

    name: str
    factory: Callable[[int], QuantumCircuit]
    sparsity: str
    description: str
    #: Peak nonzero amplitudes as a function of the qubit count (for capacity math).
    peak_rows: Callable[[int], int]

    def build(self, num_qubits: int) -> QuantumCircuit:
        """Instantiate the workload at a given width."""
        return self.factory(num_qubits)


def _parity_factory(num_qubits: int) -> QuantumCircuit:
    if num_qubits < 2:
        raise BenchmarkError("the parity workload needs at least 2 qubits (data + ancilla)")
    bits = [(index % 2) for index in range(num_qubits - 1)]
    return parity_check_circuit(bits, measure=False)


_WORKLOADS: dict[str, Workload] = {}


def _register(workload: Workload) -> None:
    _WORKLOADS[workload.name] = workload


_register(
    Workload(
        name="ghz",
        factory=ghz_circuit,
        sparsity=SPARSE,
        description="GHZ preparation (H + CX ladder); 2 nonzero amplitudes at any width",
        peak_rows=lambda n: 2,
    )
)
_register(
    Workload(
        name="parity",
        factory=_parity_factory,
        sparsity=SPARSE,
        description="Classical parity check loaded onto an ancilla; 1 nonzero amplitude",
        peak_rows=lambda n: 1,
    )
)
_register(
    Workload(
        name="w_state",
        factory=w_state_circuit,
        sparsity=LINEAR,
        description="W-state preparation; n nonzero amplitudes",
        peak_rows=lambda n: max(1, n),
    )
)
_register(
    Workload(
        name="parity_superposed",
        factory=lambda n: superposed_parity_circuit(max(1, n - 1)),
        sparsity=DENSE,
        description="Parity oracle over the uniform superposition of the data register",
        peak_rows=lambda n: 1 << max(1, n - 1),
    )
)
_register(
    Workload(
        name="superposition",
        factory=superposition_circuit,
        sparsity=DENSE,
        description="Equal superposition (H on every qubit); all 2^n amplitudes nonzero",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="qft",
        factory=lambda n: qft_on_basis_state(n, (1 << n) - 1),
        sparsity=DENSE,
        description="QFT applied to a basis state; dense output with nontrivial phases",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="dense_phase",
        factory=lambda n: dense_phase_circuit(n, rounds=2),
        sparsity=DENSE,
        description="H + CZ ring + T rounds; dense with entangling structure",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="random_sparse",
        factory=lambda n: random_sparse_circuit(n, depth=8, max_branching=2, seed=7),
        sparsity=SPARSE,
        description="Random permutation/diagonal circuit with at most 2 branching gates",
        peak_rows=lambda n: 4,
    )
)
_register(
    Workload(
        name="random_dense",
        factory=lambda n: random_dense_circuit(n, depth=3, seed=7),
        sparsity=DENSE,
        description="Random dense circuit (Hadamard layers + entanglers)",
        peak_rows=lambda n: 1 << n,
    )
)
_register(
    Workload(
        name="qaoa_ring",
        factory=lambda n: qaoa_maxcut_circuit(n, edges=ring_graph(n), p=1, gammas=[0.45], betas=[0.6]),
        sparsity=DENSE,
        description="Depth-1 QAOA MaxCut on a ring; the repeated-structure sweep workload",
        peak_rows=lambda n: 1 << n,
    )
)


def qaoa_sweep_family(num_nodes: int) -> Callable[[dict], QuantumCircuit]:
    """A ``point -> circuit`` family for parameter sweeps over the QAOA ring.

    Every point produces a circuit with identical structure (hence identical
    generated SQL apart from gate-table literals), which is the shape the
    memdb plan cache exploits: sweeps re-bind fresh gate tables against the
    plans compiled at the first point.
    """
    if num_nodes < 3:
        raise BenchmarkError("the QAOA ring sweep needs at least 3 nodes")
    edges = ring_graph(num_nodes)

    def family(point: dict) -> QuantumCircuit:
        return qaoa_maxcut_circuit(
            num_nodes, edges=edges, p=1, gammas=[point["gamma"]], betas=[point["beta"]]
        )

    return family


def get_workload(name: str) -> Workload:
    """Look up a workload by name."""
    if name not in _WORKLOADS:
        raise BenchmarkError(f"unknown workload {name!r}; available: {sorted(_WORKLOADS)}")
    return _WORKLOADS[name]


def workload_names() -> list[str]:
    """All registered workload names."""
    return sorted(_WORKLOADS)


def workloads_by_sparsity(sparsity: str) -> list[Workload]:
    """All workloads of one sparsity class."""
    return [workload for workload in _WORKLOADS.values() if workload.sparsity == sparsity]
