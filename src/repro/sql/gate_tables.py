"""Gate-table construction and registry.

Every gate used by a circuit is materialized once as a relational table
``T(in_s, out_s, r, i)`` holding its nonzero transition amplitudes (Sec. 2.1
and the ``H`` / ``CX`` tables of Fig. 2b).  Identical gates share one table:
the registry deduplicates by matrix content, so a circuit with a thousand
Hadamards still creates a single ``H`` table.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.gates import Gate
from ..errors import TranslationError
from .schema import is_valid_identifier, sanitize_identifier

#: Default tolerance below which a transition amplitude is treated as zero.
GATE_ATOL = 1e-12

GateRow = tuple[int, int, float, float]


class GateTable:
    """One registered gate table: a name plus its relational rows."""

    __slots__ = ("name", "gate_name", "num_qubits", "rows")

    def __init__(self, name: str, gate_name: str, num_qubits: int, rows: Sequence[GateRow]) -> None:
        self.name = name
        self.gate_name = gate_name
        self.num_qubits = num_qubits
        self.rows = list(rows)

    @property
    def num_rows(self) -> int:
        """Number of nonzero transition amplitudes."""
        return len(self.rows)

    def is_permutation(self) -> bool:
        """True when each input maps to exactly one output (no branching)."""
        inputs = [row[0] for row in self.rows]
        outputs = [row[1] for row in self.rows]
        return len(set(inputs)) == len(inputs) and len(set(outputs)) == len(outputs)

    def __repr__(self) -> str:
        return f"GateTable({self.name!r}, gate={self.gate_name!r}, qubits={self.num_qubits}, rows={self.num_rows})"


def gate_rows(gate: Gate, atol: float = GATE_ATOL) -> list[GateRow]:
    """The relational rows of a gate: ``(in_s, out_s, Re, Im)`` for nonzero entries."""
    return gate.nonzero_entries(atol=atol)


class GateTableRegistry:
    """Assigns table names to gates and deduplicates identical matrices.

    Naming convention: an unparameterized standard gate keeps its upper-case
    name (``H``, ``CX``, ``SWAP`` — matching the paper's figures); gates that
    carry parameters or collide with an existing (different) matrix get a
    numeric suffix (``RZ_0``, ``RZ_1``, ``UNITARY_0`` ...).
    """

    def __init__(self, atol: float = GATE_ATOL) -> None:
        self._atol = atol
        self._tables: dict[str, GateTable] = {}
        self._by_fingerprint: dict[tuple, str] = {}
        self._name_counters: dict[str, int] = {}

    # ------------------------------------------------------------ inspection

    @property
    def tables(self) -> list[GateTable]:
        """All registered tables in registration order."""
        return list(self._tables.values())

    def __iter__(self) -> Iterator[GateTable]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def get(self, name: str) -> GateTable:
        """Look up a table by name."""
        if name not in self._tables:
            raise TranslationError(f"no gate table named {name!r}")
        return self._tables[name]

    # -------------------------------------------------------------- registry

    def _fingerprint(self, gate: Gate, rows: Sequence[GateRow]) -> tuple:
        rounded = tuple((in_s, out_s, round(r, 12), round(i, 12)) for in_s, out_s, r, i in rows)
        return (gate.num_qubits, rounded)

    def _base_name(self, gate: Gate) -> str:
        candidate = gate.name.upper()
        if gate.params or not is_valid_identifier(candidate):
            candidate = sanitize_identifier(candidate, fallback="GATE").upper()
            return candidate
        return candidate

    def register(self, gate: Gate) -> GateTable:
        """Register ``gate`` (or return the existing table for an identical matrix)."""
        if gate.is_parameterized:
            raise TranslationError(
                f"gate {gate.name!r} still has unbound parameters; bind them before translation"
            )
        rows = gate_rows(gate, atol=self._atol)
        if not rows:
            raise TranslationError(f"gate {gate.name!r} has an all-zero matrix")
        fingerprint = self._fingerprint(gate, rows)
        existing = self._by_fingerprint.get(fingerprint)
        if existing is not None:
            return self._tables[existing]

        base = self._base_name(gate)
        if gate.params or base in self._tables:
            counter = self._name_counters.get(base, 0)
            name = f"{base}_{counter}"
            while name in self._tables:
                counter += 1
                name = f"{base}_{counter}"
            self._name_counters[base] = counter + 1
        else:
            name = base

        table = GateTable(name, gate.name, gate.num_qubits, rows)
        self._tables[name] = table
        self._by_fingerprint[fingerprint] = name
        return table

    def total_rows(self) -> int:
        """Total number of gate-table rows across the registry."""
        return sum(table.num_rows for table in self._tables.values())
