"""Circuit-to-SQL translation (the paper's Translation Layer).

The translator walks a circuit's gate list and emits one relational step per
gate, exactly as in Fig. 2 of the paper:

* the state before the first gate is a table ``T0(s, r, i)``;
* gate ``k`` (table ``G``) produces ``T{k}`` via::

      SELECT ((T{k-1}.s & ~mask) | deposit(G.out_s))        AS s,
             SUM(T{k-1}.r * G.r - T{k-1}.i * G.i)           AS r,
             SUM(T{k-1}.r * G.i + T{k-1}.i * G.r)           AS i
      FROM T{k-1} JOIN G ON G.in_s = extract(T{k-1}.s)
      GROUP BY ((T{k-1}.s & ~mask) | deposit(G.out_s))

* the final query selects ``s, r, i`` from the last state table ordered by
  ``s``.

Two execution shapes are produced from the same steps:

* **CTE mode** — a single ``WITH T1 AS (...), T2 AS (...) ... SELECT`` query
  (the form shown in Fig. 2c), letting the RDBMS's optimizer pipeline the
  whole circuit;
* **materialized mode** — one ``CREATE TABLE T{k} AS SELECT ...`` statement
  per gate, which enables out-of-core execution, per-step row statistics and
  amplitude pruning between steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..errors import TranslationError
from ..output.result import SparseState
from .dialect import Dialect, get_dialect
from .encoding import (
    clear_expression,
    deposit_expression,
    extract_expression,
    output_index_expression,
    validate_qubits,
)
from .gate_tables import GateTable, GateTableRegistry
from .schema import (
    gate_insert_sql,
    gate_table_ddl,
    state_insert_sql,
    state_table_ddl,
    state_table_name,
)


@dataclass
class GateStep:
    """One gate application: reads ``input_table``, produces ``output_table``."""

    index: int
    gate_table: GateTable
    qubits: tuple[int, ...]
    input_table: str
    output_table: str
    gate_name: str

    def select_sql(self, pretty: bool = False) -> str:
        """The per-gate SELECT statement (the body of CTE ``T{index}``)."""
        state = self.input_table
        gate = self.gate_table.name
        state_s = f"{state}.s"
        out_expr = output_index_expression(state_s, f"{gate}.out_s", self.qubits)
        join_key = extract_expression(state_s, self.qubits)
        real = f"SUM(({state}.r * {gate}.r) - ({state}.i * {gate}.i))"
        imag = f"SUM(({state}.r * {gate}.i) + ({state}.i * {gate}.r))"
        if pretty:
            return (
                f"SELECT\n"
                f"    {out_expr} AS s,\n"
                f"    {real} AS r,\n"
                f"    {imag} AS i\n"
                f"  FROM {state}\n"
                f"  JOIN {gate}\n"
                f"    ON {gate}.in_s = {join_key}\n"
                f"  GROUP BY\n"
                f"    {out_expr}"
            )
        return (
            f"SELECT {out_expr} AS s, {real} AS r, {imag} AS i "
            f"FROM {state} JOIN {gate} ON {gate}.in_s = {join_key} "
            f"GROUP BY {out_expr}"
        )

    def describe(self) -> dict:
        """Summary dictionary used in reports and result metadata."""
        return {
            "step": self.index,
            "gate": self.gate_name,
            "gate_table": self.gate_table.name,
            "qubits": list(self.qubits),
            "input_table": self.input_table,
            "output_table": self.output_table,
            "gate_rows": self.gate_table.num_rows,
        }


@dataclass
class SQLTranslation:
    """The complete relational program for one circuit."""

    num_qubits: int
    circuit_name: str
    dialect: Dialect
    initial_rows: list[tuple[int, float, float]]
    gate_tables: list[GateTable]
    steps: list[GateStep]
    prune_epsilon: float | None = None
    fusion_report: dict = field(default_factory=dict)

    # --------------------------------------------------------------- queries

    @property
    def final_table(self) -> str:
        """Name of the table holding the final state."""
        return self.steps[-1].output_table if self.steps else state_table_name(0)

    def setup_statements(self) -> list[str]:
        """DDL and INSERTs creating the gate tables and the initial state ``T0``."""
        statements: list[str] = []
        integer_type = self.dialect.integer_type
        real_type = self.dialect.real_type
        for table in self.gate_tables:
            statements.append(gate_table_ddl(table.name, integer_type, real_type))
            statements.append(gate_insert_sql(table.name, table.rows))
        statements.append(state_table_ddl(state_table_name(0), integer_type, real_type))
        statements.append(state_insert_sql(state_table_name(0), self.initial_rows))
        return statements

    def cte_query(self, pretty: bool = True) -> str:
        """The single WITH-query of Fig. 2c producing the final state rows.

        The emitted text is deterministic per circuit structure, which is
        what the memdb plan cache keys on: two sweep points of the same
        circuit family emit byte-identical CTE texts (only the gate INSERT
        literals differ), so their compiled plans are shared.
        """
        final = self.final_table
        if not self.steps:
            return f"SELECT s, r, i FROM {final} ORDER BY s"
        clauses = []
        for step in self.steps:
            body = step.select_sql(pretty=pretty)
            if pretty:
                clauses.append(f"{step.output_table} AS (\n  {body})")
            else:
                clauses.append(f"{step.output_table} AS ({body})")
        separator = ",\n" if pretty else ", "
        with_clause = separator.join(clauses)
        return f"WITH {with_clause}\nSELECT s, r, i FROM {final} ORDER BY s"

    def materialized_statements(self, keep_intermediate: bool = False, temporary: bool = False) -> list[dict]:
        """Per-gate ``CREATE TABLE ... AS SELECT`` statements (out-of-core mode).

        Returns a list of dictionaries with keys ``sql``, ``kind``
        (``create``/``prune``/``drop``) and ``table`` so backends can track
        per-step row counts.  When ``keep_intermediate`` is false each input
        table is dropped as soon as its successor exists, bounding storage to
        two state tables at a time.

        The emitted texts are deterministic per circuit structure, so on the
        memdb backend every ``CREATE TABLE .. AS SELECT`` step hits the plan
        cache on repeated runs (sweep points re-bind the same compiled
        join-aggregate plan against fresh gate tables).
        """
        statements: list[dict] = []
        for step in self.steps:
            create = self.dialect.create_table_as(step.output_table, step.select_sql(pretty=False), temporary=temporary)
            statements.append({"sql": create, "kind": "create", "table": step.output_table, "step": step.index})
            if self.prune_epsilon is not None:
                prune = (
                    f"DELETE FROM {step.output_table} "
                    f"WHERE (r * r) + (i * i) <= {repr(float(self.prune_epsilon))}"
                )
                statements.append({"sql": prune, "kind": "prune", "table": step.output_table, "step": step.index})
            if not keep_intermediate and step.input_table != state_table_name(0):
                statements.append(
                    {"sql": self.dialect.drop_table(step.input_table), "kind": "drop", "table": step.input_table, "step": step.index}
                )
        return statements

    def final_select(self) -> str:
        """``SELECT s, r, i FROM <final> ORDER BY s`` for materialized execution."""
        return f"SELECT s, r, i FROM {self.final_table} ORDER BY s"

    def full_script(self, mode: str = "cte") -> str:
        """A complete, copy-pasteable SQL script (setup plus simulation query)."""
        statements = [f"{sql};" for sql in self.setup_statements()]
        if mode == "cte":
            statements.append(f"{self.cte_query()};")
        elif mode == "materialized":
            statements.extend(f"{item['sql']};" for item in self.materialized_statements())
            statements.append(f"{self.final_select()};")
        else:
            raise TranslationError(f"unknown script mode {mode!r}; expected 'cte' or 'materialized'")
        return "\n".join(statements)

    # ------------------------------------------------------------- reporting

    def describe(self) -> dict:
        """Summary used in benchmark reports and result metadata."""
        return {
            "circuit": self.circuit_name,
            "num_qubits": self.num_qubits,
            "num_steps": len(self.steps),
            "num_gate_tables": len(self.gate_tables),
            "gate_table_rows": sum(table.num_rows for table in self.gate_tables),
            "dialect": self.dialect.name,
            "prune_epsilon": self.prune_epsilon,
            "fusion": dict(self.fusion_report),
        }


class SQLTranslator:
    """Translate :class:`QuantumCircuit` objects into :class:`SQLTranslation` programs.

    Parameters
    ----------
    dialect:
        Target dialect name or :class:`Dialect` (default ``memdb``; the
        generated SQL is identical across dialects except for type names).
    prune_epsilon:
        When set, materialized execution deletes rows whose probability mass
        ``r*r + i*i`` falls at or below this threshold after every step.
    fuse:
        Apply the gate-fusion optimizer (Sec. 3.2) before translation.
    max_fused_qubits:
        Largest qubit count a fused gate may span (default 2).
    """

    def __init__(
        self,
        dialect: str | Dialect = "memdb",
        prune_epsilon: float | None = None,
        fuse: bool = False,
        max_fused_qubits: int = 2,
    ) -> None:
        self.dialect = dialect if isinstance(dialect, Dialect) else get_dialect(dialect)
        if prune_epsilon is not None and prune_epsilon < 0:
            raise TranslationError("prune_epsilon must be non-negative")
        self.prune_epsilon = prune_epsilon
        self.fuse = bool(fuse)
        self.max_fused_qubits = int(max_fused_qubits)

    def translate(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None = None,
    ) -> SQLTranslation:
        """Translate ``circuit`` into a relational program.

        Measurements and barriers are skipped (the SQL program computes the
        full pre-measurement state; measurement sampling happens in the
        Output Layer).  Parameterized circuits must be bound first.
        """
        if circuit.is_parameterized:
            names = sorted(parameter.name for parameter in circuit.parameters)
            raise TranslationError(f"circuit has unbound parameters {names}; bind them before translation")

        working = circuit
        fusion_report: dict = {}
        if self.fuse:
            from .fusion import fuse_adjacent_gates  # local import to avoid a cycle

            working, fusion_report = fuse_adjacent_gates(circuit, max_qubits=self.max_fused_qubits)

        if initial_state is None:
            initial_rows = [(0, 1.0, 0.0)]
        else:
            if initial_state.num_qubits != circuit.num_qubits:
                raise TranslationError(
                    f"initial state has {initial_state.num_qubits} qubits, circuit has {circuit.num_qubits}"
                )
            initial_rows = initial_state.to_rows()
            if not initial_rows:
                raise TranslationError("initial state has no nonzero amplitudes")

        registry = GateTableRegistry()
        steps: list[GateStep] = []
        step_index = 0
        for instruction in working.instructions:
            if not instruction.is_gate or instruction.gate is None:
                if instruction.kind == "reset":
                    raise TranslationError("reset instructions are not supported by the SQL translation")
                continue  # measurements and barriers do not generate SQL
            qubits = validate_qubits(instruction.qubits, circuit.num_qubits)
            table = registry.register(instruction.gate)
            step_index += 1
            steps.append(
                GateStep(
                    index=step_index,
                    gate_table=table,
                    qubits=qubits,
                    input_table=state_table_name(step_index - 1),
                    output_table=state_table_name(step_index),
                    gate_name=instruction.gate.name,
                )
            )

        return SQLTranslation(
            num_qubits=circuit.num_qubits,
            circuit_name=working.name,
            dialect=self.dialect,
            initial_rows=initial_rows,
            gate_tables=registry.tables,
            steps=steps,
            prune_epsilon=self.prune_epsilon,
            fusion_report=fusion_report,
        )


def translate_circuit(
    circuit: QuantumCircuit,
    dialect: str | Dialect = "memdb",
    initial_state: SparseState | None = None,
    prune_epsilon: float | None = None,
    fuse: bool = False,
    max_fused_qubits: int = 2,
) -> SQLTranslation:
    """Convenience wrapper around :class:`SQLTranslator`."""
    translator = SQLTranslator(
        dialect=dialect,
        prune_epsilon=prune_epsilon,
        fuse=fuse,
        max_fused_qubits=max_fused_qubits,
    )
    return translator.translate(circuit, initial_state=initial_state)
