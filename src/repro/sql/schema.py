"""Relational schemas for quantum states and gates.

Sec. 2.1 of the paper defines two schemas:

* a state table ``T(s, r, i)`` — one row per nonzero basis state, where ``s``
  is the basis index as an integer and ``r``/``i`` are the real and imaginary
  parts of its amplitude;
* a gate table ``T(in_s, out_s, r, i)`` — one row per nonzero transition
  amplitude of the gate's (local) unitary matrix.

This module holds the column definitions, table-name conventions (``T0``,
``T1``, ... for state snapshots; upper-cased gate names for gate tables) and
the DDL / INSERT statement generation shared by every RDBMS backend.
"""

from __future__ import annotations

import re
from typing import Sequence

from ..errors import TranslationError

#: Column names of a state table, in order.
STATE_COLUMNS = ("s", "r", "i")
#: Column names of a gate table, in order.
GATE_COLUMNS = ("in_s", "out_s", "r", "i")

#: SQL identifiers that must not be used as bare table names.
_RESERVED_WORDS = {
    "select", "from", "where", "group", "order", "by", "join", "on", "as", "with",
    "table", "create", "insert", "into", "values", "drop", "index", "union", "all",
    "and", "or", "not", "in", "is", "null", "to", "sum", "case", "when", "then", "end",
}

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def state_table_name(step: int) -> str:
    """Name of the state snapshot after ``step`` gates: ``T0``, ``T1``, ..."""
    if step < 0:
        raise TranslationError("state step must be non-negative")
    return f"T{step}"


def is_valid_identifier(name: str) -> bool:
    """True if ``name`` can be used as a bare SQL identifier."""
    return bool(_IDENTIFIER_RE.match(name)) and name.lower() not in _RESERVED_WORDS


def sanitize_identifier(name: str, fallback: str = "tbl") -> str:
    """Turn an arbitrary string into a safe SQL identifier."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not cleaned or not cleaned[0].isalpha():
        cleaned = f"{fallback}_{cleaned}" if cleaned else fallback
    if cleaned.lower() in _RESERVED_WORDS:
        cleaned = f"{cleaned}_t"
    return cleaned


def state_table_ddl(name: str, integer_type: str = "BIGINT", real_type: str = "DOUBLE") -> str:
    """``CREATE TABLE`` statement for a state table ``T(s, r, i)``."""
    if not is_valid_identifier(name):
        raise TranslationError(f"invalid state table name {name!r}")
    return (
        f"CREATE TABLE {name} (s {integer_type} NOT NULL, "
        f"r {real_type} NOT NULL, i {real_type} NOT NULL)"
    )


def gate_table_ddl(name: str, integer_type: str = "BIGINT", real_type: str = "DOUBLE") -> str:
    """``CREATE TABLE`` statement for a gate table ``T(in_s, out_s, r, i)``."""
    if not is_valid_identifier(name):
        raise TranslationError(f"invalid gate table name {name!r}")
    return (
        f"CREATE TABLE {name} (in_s {integer_type} NOT NULL, out_s {integer_type} NOT NULL, "
        f"r {real_type} NOT NULL, i {real_type} NOT NULL)"
    )


def _format_number(value: float) -> str:
    """Render a float literal exactly (repr keeps full double precision)."""
    return repr(float(value))


def state_insert_sql(name: str, rows: Sequence[tuple[int, float, float]]) -> str:
    """Multi-row ``INSERT`` statement for a state table."""
    if not rows:
        raise TranslationError(f"state table {name!r} needs at least one row")
    values = ", ".join(f"({int(s)}, {_format_number(r)}, {_format_number(i)})" for s, r, i in rows)
    return f"INSERT INTO {name} (s, r, i) VALUES {values}"


def gate_insert_sql(name: str, rows: Sequence[tuple[int, int, float, float]]) -> str:
    """Multi-row ``INSERT`` statement for a gate table."""
    if not rows:
        raise TranslationError(f"gate table {name!r} needs at least one row")
    values = ", ".join(
        f"({int(in_s)}, {int(out_s)}, {_format_number(r)}, {_format_number(i)})"
        for in_s, out_s, r, i in rows
    )
    return f"INSERT INTO {name} (in_s, out_s, r, i) VALUES {values}"
