"""SQL dialect descriptions for the supported backends.

The generated queries stick to a conservative SQL-92-with-bitwise-operators
subset, so dialect differences are small: column type names, whether a
``CREATE TEMP TABLE ... AS`` statement is preferred for materialized steps,
and a human-readable engine description.  The same translation output runs
unchanged on SQLite, DuckDB (when installed) and the embedded columnar
engine ``memdb``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TranslationError


@dataclass(frozen=True)
class Dialect:
    """Static description of an SQL dialect."""

    name: str
    integer_type: str = "BIGINT"
    real_type: str = "DOUBLE"
    supports_cte: bool = True
    supports_temp_tables: bool = True
    description: str = ""

    def create_table_as(self, table: str, query: str, temporary: bool = False) -> str:
        """``CREATE [TEMP] TABLE <table> AS <query>`` statement."""
        keyword = "CREATE TEMP TABLE" if temporary and self.supports_temp_tables else "CREATE TABLE"
        return f"{keyword} {table} AS {query}"

    def drop_table(self, table: str) -> str:
        """``DROP TABLE IF EXISTS`` statement."""
        return f"DROP TABLE IF EXISTS {table}"


SQLITE = Dialect(
    name="sqlite",
    integer_type="INTEGER",
    real_type="REAL",
    description="SQLite 3 (row store, serverless); ships with CPython as sqlite3",
)

DUCKDB = Dialect(
    name="duckdb",
    integer_type="BIGINT",
    real_type="DOUBLE",
    description="DuckDB (vectorized columnar analytical engine)",
)

MEMDB = Dialect(
    name="memdb",
    integer_type="BIGINT",
    real_type="DOUBLE",
    description="Embedded columnar SQL engine (numpy-vectorized DuckDB substitute)",
)

_DIALECTS = {d.name: d for d in (SQLITE, DUCKDB, MEMDB)}


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by name (``sqlite``, ``duckdb``, ``memdb``)."""
    key = name.lower()
    if key not in _DIALECTS:
        raise TranslationError(f"unknown SQL dialect {name!r}; expected one of {sorted(_DIALECTS)}")
    return _DIALECTS[key]
