"""Integer encoding of basis states and the bitwise SQL expressions over it.

The paper's key idea (Sec. 2.2, Table 1) is that a basis state is stored as a
single integer ``s`` and each gate addresses its qubits through bitwise
operators: ``&`` to extract the gate's local sub-index (the join key),
``& ~mask`` to clear the gate's bits, ``|`` and ``<<``/``>>`` to deposit the
gate's output bits back into the global index.

This module provides both the Python-side bit manipulation (used by the
sparse simulator and the tests) and the generation of the corresponding SQL
expression strings.  Expressions are simplified for contiguous qubit runs so
the generated SQL matches the paper's Fig. 2 exactly (e.g. ``(T0.s & 1)``,
``((T2.s >> 1) & 3)``, ``(CX.out_s << 1)``).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TranslationError

#: Widest circuit representable with signed 64-bit state indices.
MAX_QUBITS_64BIT = 62


def validate_qubits(qubits: Sequence[int], num_qubits: int) -> tuple[int, ...]:
    """Validate gate qubit indices against the circuit width."""
    result = tuple(int(q) for q in qubits)
    if not result:
        raise TranslationError("a gate must act on at least one qubit")
    if len(set(result)) != len(result):
        raise TranslationError(f"duplicate qubit in {list(result)}")
    for qubit in result:
        if not 0 <= qubit < num_qubits:
            raise TranslationError(f"qubit {qubit} out of range for {num_qubits} qubits")
    if num_qubits > MAX_QUBITS_64BIT:
        raise TranslationError(
            f"{num_qubits} qubits exceed the {MAX_QUBITS_64BIT}-qubit limit of 64-bit state indices"
        )
    return result


def qubit_mask(qubits: Sequence[int]) -> int:
    """Bit mask with a 1 at every gate qubit position."""
    mask = 0
    for qubit in qubits:
        mask |= 1 << int(qubit)
    return mask


def is_contiguous_ascending(qubits: Sequence[int]) -> bool:
    """True if the qubits form a run ``k, k+1, ..., k+m-1`` in that order."""
    return all(qubits[j + 1] == qubits[j] + 1 for j in range(len(qubits) - 1))


def extract_local(index: int, qubits: Sequence[int]) -> int:
    """Python reference of the SQL join key: the gate-local sub-index of ``index``."""
    local = 0
    for position, qubit in enumerate(qubits):
        local |= ((index >> qubit) & 1) << position
    return local


def deposit_local(local: int, qubits: Sequence[int]) -> int:
    """Python reference of scattering a gate-local index back to global bit positions."""
    scattered = 0
    for position, qubit in enumerate(qubits):
        if (local >> position) & 1:
            scattered |= 1 << qubit
    return scattered


def replace_bits(index: int, local_out: int, qubits: Sequence[int]) -> int:
    """Python reference of the full output-index expression ``(s & ~mask) | deposit(out)``."""
    return (index & ~qubit_mask(qubits)) | deposit_local(local_out, qubits)


# ---------------------------------------------------------------------------
# SQL expression generation
# ---------------------------------------------------------------------------


def extract_expression(state_column: str, qubits: Sequence[int]) -> str:
    """SQL expression computing the gate-local sub-index of ``state_column``.

    Contiguous runs collapse to a single shift-and-mask (the paper's
    ``(T0.s & 1)`` / ``((T2.s >> 1) & 3)`` forms); arbitrary qubit sets fall
    back to a per-bit OR of shifted single-bit extractions.
    """
    qubits = [int(q) for q in qubits]
    local_mask = (1 << len(qubits)) - 1
    if is_contiguous_ascending(qubits):
        start = qubits[0]
        if start == 0:
            return f"({state_column} & {local_mask})"
        return f"(({state_column} >> {start}) & {local_mask})"
    parts = []
    for position, qubit in enumerate(qubits):
        bit = f"(({state_column} >> {qubit}) & 1)"
        parts.append(bit if position == 0 else f"({bit} << {position})")
    return "(" + " | ".join(parts) + ")"


def deposit_expression(gate_column: str, qubits: Sequence[int]) -> str:
    """SQL expression scattering a gate-table ``out_s`` back to global positions."""
    qubits = [int(q) for q in qubits]
    if is_contiguous_ascending(qubits):
        start = qubits[0]
        if start == 0:
            return gate_column
        return f"({gate_column} << {start})"
    parts = []
    for position, qubit in enumerate(qubits):
        bit = f"(({gate_column} >> {position}) & 1)"
        if qubit == 0:
            parts.append(bit)
        else:
            parts.append(f"({bit} << {qubit})")
    return "(" + " | ".join(parts) + ")"


def clear_expression(state_column: str, qubits: Sequence[int]) -> str:
    """SQL expression clearing the gate qubits of ``state_column``: ``(s & ~mask)``."""
    mask = qubit_mask(qubits)
    return f"({state_column} & ~{mask})"


def output_index_expression(state_column: str, gate_column: str, qubits: Sequence[int]) -> str:
    """The full new-index expression ``(s & ~mask) | deposit(out_s)`` of the paper."""
    deposited = deposit_expression(gate_column, qubits)
    return f"({clear_expression(state_column, qubits)} | {deposited})"


def bitstring(index: int, num_qubits: int) -> str:
    """Render a basis index as a bitstring (qubit 0 rightmost)."""
    if index < 0 or index >= (1 << num_qubits):
        raise TranslationError(f"index {index} out of range for {num_qubits} qubits")
    return format(index, f"0{num_qubits}b")


def index_of_bitstring(bits: str) -> int:
    """Parse a bitstring (qubit 0 rightmost) back into a basis index."""
    stripped = bits.strip()
    if not stripped or any(ch not in "01" for ch in stripped):
        raise TranslationError(f"invalid bitstring {bits!r}")
    return int(stripped, 2)
