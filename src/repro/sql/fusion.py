"""Gate-fusion query optimization (Sec. 3.2 of the paper).

"To improve performance, consecutive gates are fused into single SQL query
where possible, minimizing intermediate results and leveraging database query
optimizers."  Concretely, fusing ``k`` consecutive gates that act on a small
common qubit set replaces ``k`` join-and-aggregate pipeline stages by one,
with a single (pre-multiplied) gate table.

The optimizer is a greedy single pass over the instruction list: a *block*
accumulates consecutive gates while the union of their qubits stays within
``max_qubits``; when the next gate does not fit, the block is flushed as one
fused gate.  Barriers always flush (they are the user's optimization fence),
and non-gate instructions pass through untouched.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.circuit import QuantumCircuit, circuit_from_instructions
from ..core.gates import Gate, unitary_gate
from ..core.instruction import Instruction
from ..errors import TranslationError


def _embed_matrix(matrix: np.ndarray, gate_qubits: Sequence[int], block_qubits: Sequence[int]) -> np.ndarray:
    """Embed a gate matrix (over ``gate_qubits``) into the block's local space."""
    positions = [block_qubits.index(qubit) for qubit in gate_qubits]
    block_dim = 1 << len(block_qubits)
    embedded = np.zeros((block_dim, block_dim), dtype=np.complex128)
    for block_in in range(block_dim):
        local_in = 0
        for j, position in enumerate(positions):
            local_in |= ((block_in >> position) & 1) << j
        rest = block_in
        for position in positions:
            rest &= ~(1 << position)
        column = matrix[:, local_in]
        for local_out in range(matrix.shape[0]):
            amplitude = column[local_out]
            if amplitude == 0:
                continue
            block_out = rest
            for j, position in enumerate(positions):
                if (local_out >> j) & 1:
                    block_out |= 1 << position
            embedded[block_out, block_in] += amplitude
    return embedded


class _Block:
    """A run of consecutive gates being fused."""

    def __init__(self) -> None:
        self.qubits: list[int] = []
        self.instructions: list[Instruction] = []

    def fits(self, qubits: Sequence[int], max_qubits: int) -> bool:
        union = set(self.qubits) | set(qubits)
        return len(union) <= max_qubits

    def add(self, instruction: Instruction) -> None:
        for qubit in instruction.qubits:
            if qubit not in self.qubits:
                self.qubits.append(qubit)
        self.instructions.append(instruction)

    def flush(self) -> list[Instruction]:
        """Produce the fused instruction(s) for this block."""
        if not self.instructions:
            return []
        if len(self.instructions) == 1:
            result = [self.instructions[0]]
        else:
            block_qubits = sorted(self.qubits)
            dimension = 1 << len(block_qubits)
            matrix = np.eye(dimension, dtype=np.complex128)
            for instruction in self.instructions:
                gate = instruction.gate
                assert gate is not None
                embedded = _embed_matrix(gate.matrix(), list(instruction.qubits), block_qubits)
                matrix = embedded @ matrix
            label = "fused_" + "_".join(ins.name for ins in self.instructions[:4])
            if len(self.instructions) > 4:
                label += f"_x{len(self.instructions)}"
            fused_gate: Gate = unitary_gate(matrix, name=label)
            result = [Instruction(fused_gate, block_qubits)]
        self.qubits = []
        self.instructions = []
        return result


def fuse_adjacent_gates(circuit: QuantumCircuit, max_qubits: int = 2) -> tuple[QuantumCircuit, dict]:
    """Fuse runs of consecutive gates spanning at most ``max_qubits`` qubits.

    Returns the rewritten circuit and a report dictionary with the gate
    counts before and after fusion (used by the fusion-ablation benchmark).
    """
    if max_qubits < 1:
        raise TranslationError("max_qubits must be at least 1")

    fused_instructions: list[Instruction] = []
    block = _Block()
    for instruction in circuit.instructions:
        if not instruction.is_gate or instruction.gate is None:
            fused_instructions.extend(block.flush())
            fused_instructions.append(instruction)
            continue
        if instruction.gate.num_qubits > max_qubits:
            fused_instructions.extend(block.flush())
            fused_instructions.append(instruction)
            continue
        if not block.fits(instruction.qubits, max_qubits):
            fused_instructions.extend(block.flush())
        block.add(instruction)
    fused_instructions.extend(block.flush())

    fused_circuit = circuit_from_instructions(circuit.num_qubits, fused_instructions, name=f"{circuit.name}_fused")
    gates_before = circuit.size()
    gates_after = fused_circuit.size()
    report = {
        "enabled": True,
        "max_fused_qubits": max_qubits,
        "gates_before": gates_before,
        "gates_after": gates_after,
        "stages_saved": gates_before - gates_after,
    }
    return fused_circuit, report


def fusion_savings(circuit: QuantumCircuit, max_qubits: int = 2) -> dict:
    """Report-only variant: how much would fusion shrink the pipeline?"""
    _fused, report = fuse_adjacent_gates(circuit, max_qubits=max_qubits)
    return report
