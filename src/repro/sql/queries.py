"""Auxiliary SQL queries over state tables.

Beyond evolving the state, the paper's Output Layer computes measurement
probabilities, marginals and norms.  All of those are plain aggregations over
the final state table, generated here so they run inside the RDBMS too (no
client-side post-processing needed).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TranslationError


def probabilities_query(table: str, limit: int | None = None) -> str:
    """Per-basis-state measurement probabilities, largest first."""
    sql = (
        f"SELECT s, (r * r) + (i * i) AS prob FROM {table} "
        f"ORDER BY prob DESC, s"
    )
    if limit is not None:
        if limit < 1:
            raise TranslationError("limit must be positive")
        sql += f" LIMIT {int(limit)}"
    return sql


def norm_query(table: str) -> str:
    """Total probability mass (should be 1 for a normalized state)."""
    return f"SELECT SUM((r * r) + (i * i)) AS norm FROM {table}"


def row_count_query(table: str) -> str:
    """Number of nonzero amplitudes currently stored."""
    return f"SELECT COUNT(*) AS rows FROM {table}"


def marginal_probability_query(table: str, qubit: int) -> str:
    """Distribution of one qubit: ``(outcome, probability)`` rows.

    Uses the same bitwise addressing as the gate queries:
    ``(s >> qubit) & 1`` extracts the measured bit.
    """
    if qubit < 0:
        raise TranslationError("qubit index must be non-negative")
    bit = f"(({table}.s >> {qubit}) & 1)" if qubit else f"({table}.s & 1)"
    return (
        f"SELECT {bit} AS outcome, SUM((r * r) + (i * i)) AS prob "
        f"FROM {table} GROUP BY {bit} ORDER BY outcome"
    )


def joint_marginal_query(table: str, qubits: Sequence[int]) -> str:
    """Joint distribution of several qubits (outcome encoded as a small integer)."""
    if not qubits:
        raise TranslationError("need at least one qubit for a marginal")
    parts = []
    for position, qubit in enumerate(qubits):
        bit = f"(({table}.s >> {int(qubit)}) & 1)" if qubit else f"({table}.s & 1)"
        parts.append(bit if position == 0 else f"({bit} << {position})")
    outcome = "(" + " | ".join(parts) + ")" if len(parts) > 1 else parts[0]
    return (
        f"SELECT {outcome} AS outcome, SUM((r * r) + (i * i)) AS prob "
        f"FROM {table} GROUP BY {outcome} ORDER BY outcome"
    )


def expectation_z_query(table: str, qubit: int) -> str:
    """Expectation value of Pauli-Z on one qubit: ``P(0) - P(1)``."""
    bit = f"(({table}.s >> {int(qubit)}) & 1)" if qubit else f"({table}.s & 1)"
    return (
        f"SELECT SUM(((r * r) + (i * i)) * (1 - 2 * {bit})) AS expectation "
        f"FROM {table}"
    )


def amplitude_query(table: str, basis_index: int) -> str:
    """The (r, i) amplitude of a single basis state."""
    if basis_index < 0:
        raise TranslationError("basis index must be non-negative")
    return f"SELECT r, i FROM {table} WHERE s = {int(basis_index)}"


def state_rows_query(table: str) -> str:
    """All rows of a state table in ascending basis order (the paper's output)."""
    return f"SELECT s, r, i FROM {table} ORDER BY s"
