"""Qymera reproduction: simulating quantum circuits with RDBMSs.

This package reproduces the system described in *"Qymera: Simulating Quantum
Circuits using RDBMS"* (SIGMOD-Companion 2025): quantum circuits are
translated into SQL programs over relational state/gate tables and executed
by off-the-shelf database engines, alongside conventional simulation methods
(state vector, sparse map, MPS, decision diagrams) and a benchmarking suite
to compare them.

Quickstart::

    from repro import QuantumCircuit, SQLiteBackend, translate_circuit

    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2)            # a GHZ circuit (Fig. 2 of the paper)
    print(translate_circuit(qc, dialect="sqlite").cte_query())
    result = SQLiteBackend().run(qc)
    print(result.state.to_rows())          # [(0, 0.7071.., 0.0), (7, 0.7071.., 0.0)]
"""

from .backends import (
    DuckDBBackend,
    MemDatabase,
    MemDBBackend,
    SQLiteBackend,
    available_backends,
    duckdb_available,
)
from .bench import BenchmarkRunner, MemoryBudget, ParameterSweep, Workload, get_workload
from .core import (
    CircuitDag,
    CircuitGridBuilder,
    Gate,
    Instruction,
    Parameter,
    ParameterExpression,
    ParameterVector,
    QuantumCircuit,
    build_circuit,
    standard_gate,
    unitary_gate,
)
from .errors import (
    BackendError,
    BackendUnavailableError,
    BenchmarkError,
    CircuitError,
    CircuitFormatError,
    GateError,
    ParameterError,
    QymeraError,
    ResourceLimitExceeded,
    SimulationError,
    SQLExecutionError,
    SQLParseError,
    TranslationError,
)
from .io import dumps_qasm, dumps_circuit, load_circuit, load_qasm, loads_circuit, loads_qasm, loads_quil
from .output import SimulationResult, SparseState, sample_counts, state_fidelity, states_agree
from .service import EnginePool, JobHandle, JobRequest, JobService, QymeraSession
from .simulators import (
    BoundExecutable,
    DecisionDiagramSimulator,
    Executable,
    MPSSimulator,
    SparseSimulator,
    StatevectorSimulator,
    available_simulators,
)
from .sql import SQLTranslation, SQLTranslator, translate_circuit

__version__ = "1.0.0"

__all__ = [
    "DuckDBBackend",
    "MemDatabase",
    "MemDBBackend",
    "SQLiteBackend",
    "available_backends",
    "duckdb_available",
    "BenchmarkRunner",
    "MemoryBudget",
    "ParameterSweep",
    "Workload",
    "get_workload",
    "CircuitDag",
    "CircuitGridBuilder",
    "Gate",
    "Instruction",
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "QuantumCircuit",
    "build_circuit",
    "standard_gate",
    "unitary_gate",
    "BackendError",
    "BackendUnavailableError",
    "BenchmarkError",
    "CircuitError",
    "CircuitFormatError",
    "GateError",
    "ParameterError",
    "QymeraError",
    "ResourceLimitExceeded",
    "SimulationError",
    "SQLExecutionError",
    "SQLParseError",
    "TranslationError",
    "dumps_qasm",
    "dumps_circuit",
    "load_circuit",
    "load_qasm",
    "loads_circuit",
    "loads_qasm",
    "loads_quil",
    "SimulationResult",
    "SparseState",
    "sample_counts",
    "state_fidelity",
    "states_agree",
    "QymeraSession",
    "EnginePool",
    "JobHandle",
    "JobRequest",
    "JobService",
    "BoundExecutable",
    "Executable",
    "DecisionDiagramSimulator",
    "MPSSimulator",
    "SparseSimulator",
    "StatevectorSimulator",
    "available_simulators",
    "SQLTranslation",
    "SQLTranslator",
    "translate_circuit",
    "__version__",
]
