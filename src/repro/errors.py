"""Exception hierarchy for the Qymera reproduction.

Every error raised by this package derives from :class:`QymeraError`, so
downstream code can catch a single base class.  Sub-hierarchies mirror the
system layers described in DESIGN.md: circuit construction, translation to
SQL, backend execution, simulation, IO, and benchmarking.
"""

from __future__ import annotations


class QymeraError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(QymeraError):
    """Invalid circuit construction or manipulation.

    Raised for out-of-range qubit indices, duplicate qubit arguments to a
    gate, arity mismatches, and similar structural problems.
    """


class ParameterError(CircuitError):
    """Invalid use of circuit parameters (unbound, unknown, or duplicate)."""


class GateError(CircuitError):
    """Unknown gate name or invalid gate definition (non-unitary matrix, bad shape)."""


class TranslationError(QymeraError):
    """The SQL translation layer could not translate a circuit.

    Typical causes: unbound parameters at translation time, unsupported
    instruction kinds, or qubit counts exceeding the integer encoding width
    supported by the target dialect.
    """


class BackendError(QymeraError):
    """An RDBMS backend failed to execute a translated query."""


class BackendUnavailableError(BackendError):
    """The requested backend is not installed / usable in this environment."""


class SQLParseError(BackendError):
    """The embedded columnar engine (memdb) could not parse a SQL statement."""


class SQLExecutionError(BackendError):
    """The embedded columnar engine (memdb) failed while executing a plan."""


class SimulationError(QymeraError):
    """A baseline simulator (state-vector, sparse, MPS, DD) failed."""


class ResourceLimitExceeded(SimulationError):
    """A simulation exceeded its configured memory or amplitude-count budget."""


class CircuitFormatError(QymeraError):
    """A circuit file (QASM, JSON, Quil-like) could not be parsed."""


class BenchmarkError(QymeraError):
    """The benchmarking framework was configured or used incorrectly."""


class AnalysisError(QymeraError):
    """Result analysis failed (e.g. comparing states of different widths)."""
