"""Circuit instructions: a gate (or measurement / barrier) bound to qubits.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects.
Each instruction records the operation and the *global* qubit indices it acts
on, in the gate's argument order (e.g. ``cx`` stores ``(control, target)``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import CircuitError
from .gates import Gate
from .parameters import Parameter

#: Instruction kinds that are not unitary gates.
KIND_GATE = "gate"
KIND_MEASURE = "measure"
KIND_BARRIER = "barrier"
KIND_RESET = "reset"


class Instruction:
    """One operation in a circuit.

    Parameters
    ----------
    gate:
        The unitary operation; ``None`` for non-gate instructions
        (measurement, barrier, reset).
    qubits:
        Global qubit indices in gate-argument order.
    kind:
        One of ``"gate"``, ``"measure"``, ``"barrier"``, ``"reset"``.
    clbits:
        For measurements, the classical bit indices receiving the outcomes
        (parallel to ``qubits``).
    """

    __slots__ = ("gate", "qubits", "kind", "clbits")

    def __init__(
        self,
        gate: Gate | None,
        qubits: Sequence[int],
        kind: str = KIND_GATE,
        clbits: Sequence[int] = (),
    ) -> None:
        if kind not in (KIND_GATE, KIND_MEASURE, KIND_BARRIER, KIND_RESET):
            raise CircuitError(f"unknown instruction kind {kind!r}")
        if kind == KIND_GATE:
            if gate is None:
                raise CircuitError("gate instructions require a Gate")
            if len(qubits) != gate.num_qubits:
                raise CircuitError(
                    f"gate {gate.name!r} acts on {gate.num_qubits} qubit(s), got {len(qubits)}"
                )
        qubits = tuple(int(q) for q in qubits)
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit argument in {qubits}")
        if any(q < 0 for q in qubits):
            raise CircuitError(f"negative qubit index in {qubits}")
        self.gate = gate
        self.qubits = qubits
        self.kind = kind
        self.clbits = tuple(int(c) for c in clbits)

    # -------------------------------------------------------------- queries

    @property
    def is_gate(self) -> bool:
        """True for unitary gate instructions."""
        return self.kind == KIND_GATE

    @property
    def is_measurement(self) -> bool:
        """True for measurement instructions."""
        return self.kind == KIND_MEASURE

    @property
    def name(self) -> str:
        """Operation name (gate name, or the kind for non-gate instructions)."""
        if self.gate is not None:
            return self.gate.name
        return self.kind

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        """Unbound parameters of the underlying gate (empty for non-gates)."""
        if self.gate is None:
            return frozenset()
        return self.gate.free_parameters

    def bind(self, assignment: Mapping[Parameter, float]) -> "Instruction":
        """Return a copy with parameters substituted in the underlying gate."""
        if self.gate is None or not self.gate.free_parameters:
            return Instruction(self.gate, self.qubits, self.kind, self.clbits)
        return Instruction(self.gate.bind(assignment), self.qubits, self.kind, self.clbits)

    def remapped(self, mapping: Mapping[int, int]) -> "Instruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        try:
            qubits = tuple(mapping[q] for q in self.qubits)
        except KeyError as exc:
            raise CircuitError(f"qubit {exc.args[0]} has no entry in the remapping") from exc
        return Instruction(self.gate, qubits, self.kind, self.clbits)

    # -------------------------------------------------------------- dunders

    def __repr__(self) -> str:
        if self.kind == KIND_GATE and self.gate is not None:
            return f"Instruction({self.gate!r} @ {list(self.qubits)})"
        return f"Instruction({self.kind} @ {list(self.qubits)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.qubits == other.qubits
            and self.clbits == other.clbits
            and self.gate == other.gate
        )
