"""The quantum circuit intermediate representation.

:class:`QuantumCircuit` is the object at the centre of the paper's Fig. 1:
every front-end (builder, file input, code input) produces one, and every
downstream layer (SQL translation, RDBMS backends, baseline simulators)
consumes one.  It stores the number of qubits and an ordered list of
:class:`~repro.core.instruction.Instruction` objects, plus the classical bits
receiving measurement outcomes.

The API is intentionally Qiskit-like (``qc.h(0)``, ``qc.cx(0, 1)``,
``qc.measure_all()``) because the paper advertises "parameterized circuits
via Qiskit- or PyQuil-like syntax".
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import CircuitError, ParameterError
from .gates import Gate, standard_gate, unitary_gate
from .instruction import (
    KIND_BARRIER,
    KIND_GATE,
    KIND_MEASURE,
    KIND_RESET,
    Instruction,
)
from .parameters import Parameter, ParameterValue
from .registers import ClassicalRegister, Clbit, QuantumRegister, Qubit


class QuantumCircuit:
    """An ordered sequence of quantum operations on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits, or a :class:`QuantumRegister`.
    num_clbits:
        Number of classical bits (defaults to 0; measurement helpers grow it
        on demand), or a :class:`ClassicalRegister`.
    name:
        Optional circuit name used in reports and exports.
    """

    def __init__(
        self,
        num_qubits: int | QuantumRegister,
        num_clbits: int | ClassicalRegister = 0,
        name: str = "circuit",
    ) -> None:
        if isinstance(num_qubits, QuantumRegister):
            self._qregs: list[QuantumRegister] = [num_qubits]
            self._num_qubits = num_qubits.size
        else:
            count = int(num_qubits)
            if count < 1:
                raise CircuitError("a circuit needs at least one qubit")
            self._qregs = [QuantumRegister(count, "q")]
            self._num_qubits = count

        if isinstance(num_clbits, ClassicalRegister):
            self._cregs: list[ClassicalRegister] = [num_clbits]
            self._num_clbits = num_clbits.size
        else:
            self._num_clbits = int(num_clbits)
            self._cregs = [ClassicalRegister(self._num_clbits, "c")] if self._num_clbits else []

        self.name = name
        self._instructions: list[Instruction] = []

    # ----------------------------------------------------------- properties

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        """Number of classical bits."""
        return self._num_clbits

    @property
    def qregs(self) -> list[QuantumRegister]:
        """Quantum registers (in declaration order)."""
        return list(self._qregs)

    @property
    def cregs(self) -> list[ClassicalRegister]:
        """Classical registers (in declaration order)."""
        return list(self._cregs)

    @property
    def instructions(self) -> list[Instruction]:
        """The ordered instruction list (a copy; mutate via ``append``)."""
        return list(self._instructions)

    @property
    def gates(self) -> list[Instruction]:
        """Only the unitary gate instructions, in order.

        This mirrors the ``gates`` field of the paper's ``QuantumCircuit``
        conversion object (Fig. 1).
        """
        return [instruction for instruction in self._instructions if instruction.is_gate]

    @property
    def parameters(self) -> frozenset[Parameter]:
        """All unbound symbolic parameters in the circuit."""
        result: frozenset[Parameter] = frozenset()
        for instruction in self._instructions:
            result |= instruction.free_parameters
        return result

    @property
    def is_parameterized(self) -> bool:
        """True if any gate still has a symbolic parameter."""
        return bool(self.parameters)

    # ------------------------------------------------------------- plumbing

    def _resolve_qubit(self, qubit: int | Qubit) -> int:
        """Translate a qubit reference into a flat global index."""
        if isinstance(qubit, Qubit):
            offset = 0
            for register in self._qregs:
                if qubit.register is register:
                    return offset + qubit.index
                offset += register.size
            raise CircuitError(f"qubit {qubit!r} does not belong to this circuit")
        index = int(qubit)
        if not 0 <= index < self._num_qubits:
            raise CircuitError(
                f"qubit index {index} out of range for a {self._num_qubits}-qubit circuit"
            )
        return index

    def _resolve_clbit(self, clbit: int | Clbit) -> int:
        if isinstance(clbit, Clbit):
            offset = 0
            for register in self._cregs:
                if clbit.register is register:
                    return offset + clbit.index
                offset += register.size
            raise CircuitError(f"classical bit {clbit!r} does not belong to this circuit")
        index = int(clbit)
        if not 0 <= index < self._num_clbits:
            raise CircuitError(
                f"classical bit {index} out of range ({self._num_clbits} available)"
            )
        return index

    def _ensure_clbits(self, needed: int) -> None:
        """Grow the classical register so at least ``needed`` bits exist."""
        if needed <= self._num_clbits:
            return
        extra = needed - self._num_clbits
        register = ClassicalRegister(extra, f"c{len(self._cregs)}")
        self._cregs.append(register)
        self._num_clbits = needed

    def add_register(self, register: QuantumRegister | ClassicalRegister) -> None:
        """Append an additional quantum or classical register."""
        if isinstance(register, QuantumRegister):
            self._qregs.append(register)
            self._num_qubits += register.size
        elif isinstance(register, ClassicalRegister):
            self._cregs.append(register)
            self._num_clbits += register.size
        else:
            raise CircuitError(f"cannot add {type(register).__name__} as a register")

    # ------------------------------------------------------------ appending

    def append(self, gate: Gate, qubits: Sequence[int | Qubit]) -> "QuantumCircuit":
        """Append an arbitrary :class:`Gate` acting on ``qubits`` (argument order)."""
        indices = [self._resolve_qubit(q) for q in qubits]
        self._instructions.append(Instruction(gate, indices, KIND_GATE))
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built instruction after validating its qubit indices."""
        for qubit in instruction.qubits:
            self._resolve_qubit(qubit)
        for clbit in instruction.clbits:
            self._resolve_clbit(clbit)
        self._instructions.append(instruction)
        return self

    def _append_standard(self, name: str, qubits: Sequence[int | Qubit], *params: ParameterValue) -> "QuantumCircuit":
        return self.append(standard_gate(name, *params), qubits)

    # one-qubit gates --------------------------------------------------------

    def id(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Identity gate."""
        return self._append_standard("id", [qubit])

    def x(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Pauli-X (NOT) gate."""
        return self._append_standard("x", [qubit])

    def y(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self._append_standard("y", [qubit])

    def z(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self._append_standard("z", [qubit])

    def h(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Hadamard gate."""
        return self._append_standard("h", [qubit])

    def s(self, qubit: int | Qubit) -> "QuantumCircuit":
        """S (sqrt-Z) gate."""
        return self._append_standard("s", [qubit])

    def sdg(self, qubit: int | Qubit) -> "QuantumCircuit":
        """S-dagger gate."""
        return self._append_standard("sdg", [qubit])

    def t(self, qubit: int | Qubit) -> "QuantumCircuit":
        """T (pi/8) gate."""
        return self._append_standard("t", [qubit])

    def tdg(self, qubit: int | Qubit) -> "QuantumCircuit":
        """T-dagger gate."""
        return self._append_standard("tdg", [qubit])

    def sx(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Sqrt-X gate."""
        return self._append_standard("sx", [qubit])

    def rx(self, theta: ParameterValue, qubit: int | Qubit) -> "QuantumCircuit":
        """X-axis rotation by ``theta``."""
        return self._append_standard("rx", [qubit], theta)

    def ry(self, theta: ParameterValue, qubit: int | Qubit) -> "QuantumCircuit":
        """Y-axis rotation by ``theta``."""
        return self._append_standard("ry", [qubit], theta)

    def rz(self, theta: ParameterValue, qubit: int | Qubit) -> "QuantumCircuit":
        """Z-axis rotation by ``theta``."""
        return self._append_standard("rz", [qubit], theta)

    def p(self, lam: ParameterValue, qubit: int | Qubit) -> "QuantumCircuit":
        """Phase gate diag(1, e^{i lam})."""
        return self._append_standard("p", [qubit], lam)

    def u(self, theta: ParameterValue, phi: ParameterValue, lam: ParameterValue, qubit: int | Qubit) -> "QuantumCircuit":
        """General single-qubit unitary U(theta, phi, lam)."""
        return self._append_standard("u", [qubit], theta, phi, lam)

    # two-qubit gates --------------------------------------------------------

    def cx(self, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled-X (CNOT)."""
        return self._append_standard("cx", [control, target])

    def cy(self, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled-Y."""
        return self._append_standard("cy", [control, target])

    def cz(self, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled-Z."""
        return self._append_standard("cz", [control, target])

    def ch(self, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled-Hadamard."""
        return self._append_standard("ch", [control, target])

    def cp(self, lam: ParameterValue, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled phase gate."""
        return self._append_standard("cp", [control, target], lam)

    def crx(self, theta: ParameterValue, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled X-rotation."""
        return self._append_standard("crx", [control, target], theta)

    def cry(self, theta: ParameterValue, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled Y-rotation."""
        return self._append_standard("cry", [control, target], theta)

    def crz(self, theta: ParameterValue, control: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Controlled Z-rotation."""
        return self._append_standard("crz", [control, target], theta)

    def swap(self, qubit_a: int | Qubit, qubit_b: int | Qubit) -> "QuantumCircuit":
        """SWAP two qubits."""
        return self._append_standard("swap", [qubit_a, qubit_b])

    def iswap(self, qubit_a: int | Qubit, qubit_b: int | Qubit) -> "QuantumCircuit":
        """iSWAP gate."""
        return self._append_standard("iswap", [qubit_a, qubit_b])

    def rzz(self, theta: ParameterValue, qubit_a: int | Qubit, qubit_b: int | Qubit) -> "QuantumCircuit":
        """ZZ-interaction rotation (diagonal); the QAOA cost-layer gate."""
        return self._append_standard("rzz", [qubit_a, qubit_b], theta)

    def rxx(self, theta: ParameterValue, qubit_a: int | Qubit, qubit_b: int | Qubit) -> "QuantumCircuit":
        """XX-interaction rotation."""
        return self._append_standard("rxx", [qubit_a, qubit_b], theta)

    # three-qubit gates ------------------------------------------------------

    def ccx(self, control_a: int | Qubit, control_b: int | Qubit, target: int | Qubit) -> "QuantumCircuit":
        """Toffoli (doubly-controlled X)."""
        return self._append_standard("ccx", [control_a, control_b, target])

    def ccz(self, qubit_a: int | Qubit, qubit_b: int | Qubit, qubit_c: int | Qubit) -> "QuantumCircuit":
        """Doubly-controlled Z."""
        return self._append_standard("ccz", [qubit_a, qubit_b, qubit_c])

    def cswap(self, control: int | Qubit, target_a: int | Qubit, target_b: int | Qubit) -> "QuantumCircuit":
        """Fredkin (controlled SWAP)."""
        return self._append_standard("cswap", [control, target_a, target_b])

    def unitary(self, matrix, qubits: Sequence[int | Qubit], name: str = "unitary") -> "QuantumCircuit":
        """Append an arbitrary unitary matrix on ``qubits``."""
        return self.append(unitary_gate(matrix, name=name), qubits)

    # non-gate instructions ---------------------------------------------------

    def measure(self, qubit: int | Qubit, clbit: int | Clbit | None = None) -> "QuantumCircuit":
        """Measure ``qubit`` into ``clbit`` (allocated automatically if omitted)."""
        qubit_index = self._resolve_qubit(qubit)
        if clbit is None:
            self._ensure_clbits(qubit_index + 1)
            clbit_index = qubit_index
        else:
            clbit_index = self._resolve_clbit(clbit)
        self._instructions.append(Instruction(None, [qubit_index], KIND_MEASURE, [clbit_index]))
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into a classical bit of the same index."""
        self._ensure_clbits(self._num_qubits)
        for qubit in range(self._num_qubits):
            self._instructions.append(Instruction(None, [qubit], KIND_MEASURE, [qubit]))
        return self

    def barrier(self, *qubits: int | Qubit) -> "QuantumCircuit":
        """Insert a barrier (an optimization fence for gate fusion)."""
        indices = [self._resolve_qubit(q) for q in qubits] or list(range(self._num_qubits))
        self._instructions.append(Instruction(None, indices, KIND_BARRIER))
        return self

    def reset(self, qubit: int | Qubit) -> "QuantumCircuit":
        """Reset a qubit to |0> (supported by simulators, not by SQL translation)."""
        self._instructions.append(Instruction(None, [self._resolve_qubit(qubit)], KIND_RESET))
        return self

    # ------------------------------------------------------------ transforms

    def bind_parameters(self, values: Mapping[Parameter | str, float]) -> "QuantumCircuit":
        """Return a copy with parameter values substituted.

        ``values`` may be keyed by :class:`Parameter` objects or by name.
        Raises :class:`ParameterError` if a key does not occur in the circuit.
        """
        by_param: dict[Parameter, float] = {}
        known = {parameter.name: parameter for parameter in self.parameters}
        for key, value in values.items():
            if isinstance(key, Parameter):
                parameter = key
            else:
                if key not in known:
                    raise ParameterError(f"circuit has no parameter named {key!r}")
                parameter = known[key]
            if parameter not in self.parameters:
                raise ParameterError(f"circuit has no parameter {parameter!r}")
            by_param[parameter] = float(value)

        bound = QuantumCircuit(self._num_qubits, self._num_clbits, name=self.name)
        bound._qregs = list(self._qregs)
        bound._cregs = list(self._cregs)
        bound._instructions = [instruction.bind(by_param) for instruction in self._instructions]
        return bound

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """A shallow copy (instructions are immutable, so sharing them is safe)."""
        duplicate = QuantumCircuit(self._num_qubits, max(self._num_clbits, 0) or 0, name=name or self.name)
        duplicate._qregs = list(self._qregs)
        duplicate._cregs = list(self._cregs)
        duplicate._num_clbits = self._num_clbits
        duplicate._instructions = list(self._instructions)
        return duplicate

    def compose(self, other: "QuantumCircuit", qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        """Append another circuit's instructions onto (a subset of) this circuit's qubits.

        ``qubits`` maps the other circuit's qubit ``k`` onto ``qubits[k]`` of
        this circuit; by default the identity mapping is used.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"compose mapping has {len(qubits)} entries for a {other.num_qubits}-qubit circuit"
            )
        mapping = {index: self._resolve_qubit(target) for index, target in enumerate(qubits)}
        result = self.copy()
        for instruction in other._instructions:
            remapped = instruction.remapped(mapping)
            if remapped.clbits:
                result._ensure_clbits(max(remapped.clbits) + 1)
            result._instructions.append(remapped)
        return result

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (gates inverted, order reversed).

        Measurements, barriers and resets are not invertible and raise.
        """
        result = QuantumCircuit(self._num_qubits, self._num_clbits, name=f"{self.name}_dg")
        result._qregs = list(self._qregs)
        result._cregs = list(self._cregs)
        for instruction in reversed(self._instructions):
            if not instruction.is_gate or instruction.gate is None:
                raise CircuitError(f"cannot invert a circuit containing {instruction.kind!r}")
            result._instructions.append(Instruction(instruction.gate.inverse(), instruction.qubits))
        return result

    def without_measurements(self) -> "QuantumCircuit":
        """A copy with measurement/barrier/reset instructions removed."""
        result = self.copy()
        result._instructions = [ins for ins in self._instructions if ins.is_gate]
        return result

    def power(self, repetitions: int) -> "QuantumCircuit":
        """Repeat the circuit ``repetitions`` times."""
        if repetitions < 0:
            raise CircuitError("cannot repeat a circuit a negative number of times")
        result = self.copy()
        result._instructions = list(self._instructions) * repetitions
        return result

    # ------------------------------------------------------------ statistics

    def count_ops(self) -> dict[str, int]:
        """Histogram of operation names."""
        return dict(Counter(instruction.name for instruction in self._instructions))

    def size(self) -> int:
        """Number of gate instructions."""
        return sum(1 for instruction in self._instructions if instruction.is_gate)

    def depth(self) -> int:
        """Circuit depth: length of the longest qubit-dependency chain."""
        level: dict[int, int] = {}
        depth = 0
        for instruction in self._instructions:
            if instruction.kind == KIND_BARRIER:
                continue
            start = max((level.get(q, 0) for q in instruction.qubits), default=0)
            for qubit in instruction.qubits:
                level[qubit] = start + 1
            depth = max(depth, start + 1)
        return depth

    def num_nonlocal_gates(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(1 for ins in self.gates if len(ins.qubits) >= 2)

    def width(self) -> int:
        """Total number of wires (qubits + classical bits)."""
        return self._num_qubits + self._num_clbits

    def measured_qubits(self) -> list[int]:
        """Qubits that are measured, in first-measurement order."""
        seen: list[int] = []
        for instruction in self._instructions:
            if instruction.is_measurement and instruction.qubits[0] not in seen:
                seen.append(instruction.qubits[0])
        return seen

    def branching_gate_count(self) -> int:
        """Number of gates that can increase the nonzero-amplitude count.

        Permutation and diagonal gates map each basis state to exactly one
        basis state; every other gate (H, RY, ...) can branch.  The ratio of
        branching gates is a useful predictor of whether the relational
        (sparse) representation stays small — the regime where the paper's
        RDBMS approach wins.
        """
        count = 0
        for instruction in self.gates:
            gate = instruction.gate
            assert gate is not None
            if gate.is_parameterized:
                count += 1
                continue
            if not (gate.is_permutation() or gate.is_diagonal()):
                count += 1
        return count

    # -------------------------------------------------------------- plotting

    def draw(self) -> str:
        """A plain-text drawing of the circuit (one line per qubit)."""
        labels: list[list[str]] = [[] for _ in range(self._num_qubits)]
        for instruction in self._instructions:
            width = max(len(self._cell_text(instruction, qubit)) for qubit in range(self._num_qubits))
            for qubit in range(self._num_qubits):
                labels[qubit].append(self._cell_text(instruction, qubit).center(width, "-"))
        lines = []
        for qubit in range(self._num_qubits):
            prefix = f"q{qubit}: "
            lines.append(prefix + "-" + "-".join(labels[qubit]) + "-")
        return "\n".join(lines)

    def _cell_text(self, instruction: Instruction, qubit: int) -> str:
        if qubit not in instruction.qubits:
            return "-"
        if instruction.kind == KIND_MEASURE:
            return "[M]"
        if instruction.kind == KIND_BARRIER:
            return "|"
        if instruction.kind == KIND_RESET:
            return "[0]"
        gate = instruction.gate
        assert gate is not None
        position = instruction.qubits.index(qubit)
        if gate.name in ("cx", "cy", "cz", "ch", "cp", "crx", "cry", "crz") and position == 0:
            return "*"
        if gate.name in ("ccx", "ccz") and position < 2:
            return "*"
        if gate.name == "cswap" and position == 0:
            return "*"
        text = gate.name.upper()
        if gate.params:
            rendered = ",".join(
                f"{float(p):.3g}" if not hasattr(p, "parameters") or not p.parameters else str(p)
                for p in gate.params
            )
            text = f"{text}({rendered})"
        return f"[{text}]"

    # ---------------------------------------------------------------- dunder

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self._num_qubits}, "
            f"clbits={self._num_clbits}, instructions={len(self._instructions)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and self._instructions == other._instructions
        )


def circuit_from_instructions(
    num_qubits: int, instructions: Iterable[Instruction], name: str = "circuit"
) -> QuantumCircuit:
    """Build a circuit from pre-constructed instructions (used by IO and fusion)."""
    circuit = QuantumCircuit(num_qubits, name=name)
    for instruction in instructions:
        if instruction.clbits:
            circuit._ensure_clbits(max(instruction.clbits) + 1)
        circuit.append_instruction(instruction)
    return circuit
