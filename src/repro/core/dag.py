"""Dependency DAG over circuit instructions.

The translation layer's gate-fusion optimizer (Sec. 3.2 of the paper) and the
layer-wise visualizations need to know which instructions commute trivially
because they touch disjoint qubits.  :class:`CircuitDag` captures the standard
wire-dependency DAG: instruction ``b`` depends on instruction ``a`` when they
share a qubit and ``a`` precedes ``b`` in program order.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import CircuitError
from .circuit import QuantumCircuit
from .instruction import Instruction


class DagNode:
    """One instruction inside the dependency DAG."""

    __slots__ = ("index", "instruction", "predecessors", "successors")

    def __init__(self, index: int, instruction: Instruction) -> None:
        self.index = index
        self.instruction = instruction
        self.predecessors: set[int] = set()
        self.successors: set[int] = set()

    def __repr__(self) -> str:
        return f"DagNode({self.index}, {self.instruction!r})"


class CircuitDag:
    """Wire-dependency DAG of a circuit's instructions.

    Nodes are indexed by their position in the original instruction list, so
    the DAG can be used to reorder or group instructions while preserving
    the data dependencies on each qubit wire.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self._num_qubits = circuit.num_qubits
        self._nodes: list[DagNode] = []
        last_on_wire: dict[int, int] = {}
        for index, instruction in enumerate(circuit.instructions):
            node = DagNode(index, instruction)
            for qubit in instruction.qubits:
                previous = last_on_wire.get(qubit)
                if previous is not None:
                    node.predecessors.add(previous)
                    self._nodes[previous].successors.add(index)
                last_on_wire[qubit] = index
            self._nodes.append(node)

    # -------------------------------------------------------------- queries

    @property
    def num_nodes(self) -> int:
        """Number of instructions in the DAG."""
        return len(self._nodes)

    def node(self, index: int) -> DagNode:
        """The node for instruction ``index``."""
        return self._nodes[index]

    def __iter__(self) -> Iterator[DagNode]:
        return iter(self._nodes)

    def topological_order(self) -> list[int]:
        """A topological ordering of instruction indices (stable w.r.t. program order)."""
        in_degree = {node.index: len(node.predecessors) for node in self._nodes}
        ready = sorted(index for index, degree in in_degree.items() if degree == 0)
        order: list[int] = []
        available = list(ready)
        while available:
            current = available.pop(0)
            order.append(current)
            for successor in sorted(self._nodes[current].successors):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    available.append(successor)
            available.sort()
        if len(order) != len(self._nodes):
            raise CircuitError("circuit dependency graph contains a cycle (internal error)")
        return order

    def layers(self) -> list[list[int]]:
        """Partition instructions into parallel layers (ASAP scheduling).

        Instructions in the same layer act on disjoint qubits; this is the
        grid used by the graphical-builder model and the text drawer.
        """
        level: dict[int, int] = {}
        result: list[list[int]] = []
        for node in self._nodes:
            start = 0
            for predecessor in node.predecessors:
                start = max(start, level[predecessor] + 1)
            level[node.index] = start
            while len(result) <= start:
                result.append([])
            result[start].append(node.index)
        return result

    def qubit_interaction_pairs(self) -> set[tuple[int, int]]:
        """Unordered qubit pairs coupled by at least one multi-qubit gate."""
        pairs: set[tuple[int, int]] = set()
        for node in self._nodes:
            qubits: Sequence[int] = node.instruction.qubits
            if node.instruction.is_gate and len(qubits) >= 2:
                for first_pos, first in enumerate(qubits):
                    for second in qubits[first_pos + 1:]:
                        pairs.add((min(first, second), max(first, second)))
        return pairs

    def critical_path_length(self) -> int:
        """Length of the longest dependency chain (equals circuit depth over all instructions)."""
        longest: dict[int, int] = {}
        result = 0
        for index in self.topological_order():
            node = self._nodes[index]
            best = 0
            for predecessor in node.predecessors:
                best = max(best, longest[predecessor])
            longest[index] = best + 1
            result = max(result, best + 1)
        return result
