"""Quantum gate library.

A :class:`Gate` is a named unitary acting on a fixed number of qubits, with
zero or more real parameters (which may be symbolic, see
:mod:`repro.core.parameters`).  The library covers the standard gate set used
throughout the paper's circuits (H, X, CX, rotations, controlled rotations,
Toffoli, ...) plus arbitrary user-defined unitaries.

Index convention
----------------
All matrices are expressed over a *local* basis index in which local bit ``k``
is the ``k``-th qubit in the gate's argument list, and qubit 0 of the circuit
is the least-significant bit of the global state index.  This matches the
relational encoding of the paper (Fig. 2): the Hadamard applied to "the first
qubit" joins on ``T0.s & 1``, and the CX gate table maps local index
``1 -> 3`` (control = local bit 0, target = local bit 1).

Matrix element ``M[out_local, in_local]`` is the transition amplitude from
input basis state ``in_local`` to output basis state ``out_local`` — exactly
the ``(in_s, out_s, r, i)`` rows stored in the gate's relational table.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import GateError, ParameterError
from .parameters import (
    Parameter,
    ParameterExpression,
    ParameterValue,
    free_parameters,
    parameter_value_text,
    resolve_parameter,
)

#: Numerical tolerance used for unitarity / structure checks.
ATOL = 1e-10


class Gate:
    """A named unitary operation on ``num_qubits`` qubits.

    Parameters
    ----------
    name:
        Canonical lower-case gate name (``"h"``, ``"cx"``, ``"rz"``, ...).
    num_qubits:
        Number of qubits the gate acts on.
    params:
        Real parameters (floats or symbolic expressions).
    matrix_factory:
        Callable mapping the resolved float parameters to the
        ``2**num_qubits`` square unitary matrix.
    """

    __slots__ = ("_name", "_num_qubits", "_params", "_matrix_factory", "_label")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        params: Sequence[ParameterValue] = (),
        matrix_factory: Callable[[Sequence[float]], np.ndarray] | None = None,
        label: str | None = None,
    ) -> None:
        if num_qubits < 1:
            raise GateError(f"gate {name!r} must act on at least one qubit")
        self._name = name.lower()
        self._num_qubits = int(num_qubits)
        self._params = tuple(params)
        self._matrix_factory = matrix_factory
        self._label = label or self._name

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        """Canonical lower-case gate name."""
        return self._name

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return self._num_qubits

    @property
    def params(self) -> tuple[ParameterValue, ...]:
        """Gate parameters (may contain symbolic expressions)."""
        return self._params

    @property
    def label(self) -> str:
        """Display label (defaults to the gate name)."""
        return self._label

    @property
    def dimension(self) -> int:
        """Dimension of the gate's local Hilbert space (``2**num_qubits``)."""
        return 1 << self._num_qubits

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        """All unbound symbolic parameters in this gate's parameter list."""
        result: frozenset[Parameter] = frozenset()
        for value in self._params:
            result |= free_parameters(value)
        return result

    @property
    def is_parameterized(self) -> bool:
        """True if any parameter is still symbolic."""
        return bool(self.free_parameters)

    # -------------------------------------------------------------- matrices

    def resolved_params(self, assignment: Mapping[Parameter, float] | None = None) -> tuple[float, ...]:
        """Resolve all parameters to floats, applying ``assignment`` to symbols."""
        try:
            return tuple(resolve_parameter(value, assignment) for value in self._params)
        except ParameterError as exc:
            raise ParameterError(f"gate {self._name!r}: {exc}") from exc

    def matrix(self, assignment: Mapping[Parameter, float] | None = None) -> np.ndarray:
        """The gate's unitary matrix as a complex numpy array.

        Symbolic parameters must be resolvable through ``assignment``.
        """
        if self._matrix_factory is None:
            raise GateError(f"gate {self._name!r} has no matrix definition")
        values = self.resolved_params(assignment)
        matrix = np.asarray(self._matrix_factory(values), dtype=np.complex128)
        expected = (self.dimension, self.dimension)
        if matrix.shape != expected:
            raise GateError(
                f"gate {self._name!r}: matrix shape {matrix.shape} does not match {expected}"
            )
        return matrix

    def bind(self, assignment: Mapping[Parameter, float]) -> "Gate":
        """Return a copy with ``assignment`` substituted into the parameters."""
        new_params: list[ParameterValue] = []
        for value in self._params:
            if isinstance(value, ParameterExpression):
                new_params.append(value.bind(assignment))
            else:
                new_params.append(value)
        return Gate(self._name, self._num_qubits, new_params, self._matrix_factory, self._label)

    def inverse(self) -> "Gate":
        """The inverse gate (conjugate-transpose matrix), named ``<name>_dg``."""
        if self.is_parameterized:
            raise GateError(f"cannot invert parameterized gate {self._name!r}; bind parameters first")
        matrix = self.matrix().conj().T
        name = self._name[:-3] if self._name.endswith("_dg") else f"{self._name}_dg"
        return Gate(name, self._num_qubits, (), lambda _p, m=matrix: m, label=name)

    # ----------------------------------------------------- structure queries

    def is_diagonal(self, assignment: Mapping[Parameter, float] | None = None) -> bool:
        """True if the gate matrix is diagonal (phase-type gate)."""
        matrix = self.matrix(assignment)
        return bool(np.allclose(matrix, np.diag(np.diag(matrix)), atol=ATOL))

    def is_permutation(self, assignment: Mapping[Parameter, float] | None = None) -> bool:
        """True if the matrix has exactly one nonzero entry per row and column.

        Permutation-like gates (X, CX, SWAP, Toffoli, and phased variants)
        never increase the number of nonzero amplitudes, which is what makes
        sparse circuits such as GHZ preparation cheap in the relational
        representation.
        """
        matrix = self.matrix(assignment)
        nonzero = np.abs(matrix) > ATOL
        return bool(np.all(nonzero.sum(axis=0) == 1) and np.all(nonzero.sum(axis=1) == 1))

    def nonzero_entries(
        self, assignment: Mapping[Parameter, float] | None = None, atol: float = ATOL
    ) -> list[tuple[int, int, float, float]]:
        """Rows of the gate's relational table: ``(in_s, out_s, re, im)``.

        Only entries with magnitude above ``atol`` are returned, mirroring
        the paper's "only nonzero basis states are stored" rule applied to
        gate tables.
        """
        matrix = self.matrix(assignment)
        rows: list[tuple[int, int, float, float]] = []
        for out_s in range(matrix.shape[0]):
            for in_s in range(matrix.shape[1]):
                amplitude = matrix[out_s, in_s]
                if abs(amplitude) > atol:
                    rows.append((in_s, out_s, float(amplitude.real), float(amplitude.imag)))
        rows.sort(key=lambda row: (row[0], row[1]))
        return rows

    def check_unitary(self, assignment: Mapping[Parameter, float] | None = None, atol: float = 1e-8) -> None:
        """Raise :class:`GateError` if the matrix is not unitary."""
        matrix = self.matrix(assignment)
        identity = np.eye(matrix.shape[0])
        if not np.allclose(matrix.conj().T @ matrix, identity, atol=atol):
            raise GateError(f"gate {self._name!r} matrix is not unitary")

    # ---------------------------------------------------------------- dunder

    def __repr__(self) -> str:
        if self._params:
            params = ", ".join(parameter_value_text(value) for value in self._params)
            return f"Gate({self._name}({params}), qubits={self._num_qubits})"
        return f"Gate({self._name}, qubits={self._num_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        if self._name != other._name or self._num_qubits != other._num_qubits:
            return False
        if len(self._params) != len(other._params):
            return False
        for mine, theirs in zip(self._params, other._params):
            mine_sym = isinstance(mine, ParameterExpression)
            theirs_sym = isinstance(theirs, ParameterExpression)
            if mine_sym != theirs_sym:
                return False
            if mine_sym:
                if str(mine) != str(theirs):
                    return False
            elif not math.isclose(float(mine), float(theirs), abs_tol=1e-12):
                return False
        return True

    def __hash__(self) -> int:
        return hash((self._name, self._num_qubits, len(self._params)))


# --------------------------------------------------------------------------
# Standard gate matrices
# --------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _mat_id(_params: Sequence[float]) -> np.ndarray:
    return np.eye(2, dtype=np.complex128)


def _mat_x(_params: Sequence[float]) -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=np.complex128)


def _mat_y(_params: Sequence[float]) -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=np.complex128)


def _mat_z(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=np.complex128)


def _mat_h(_params: Sequence[float]) -> np.ndarray:
    return np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=np.complex128)


def _mat_s(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=np.complex128)


def _mat_sdg(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=np.complex128)


def _mat_t(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=np.complex128)


def _mat_tdg(_params: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=np.complex128)


def _mat_sx(_params: Sequence[float]) -> np.ndarray:
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128)


def _mat_rx(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=np.complex128)


def _mat_ry(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[cos, -sin], [sin, cos]], dtype=np.complex128)


def _mat_rz(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]], dtype=np.complex128
    )


def _mat_p(params: Sequence[float]) -> np.ndarray:
    lam = params[0]
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=np.complex128)


def _mat_u(params: Sequence[float]) -> np.ndarray:
    theta, phi, lam = params
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=np.complex128,
    )


def _embed_controlled(single: np.ndarray) -> np.ndarray:
    """2-qubit controlled version of a 1-qubit matrix.

    Local bit 0 is the control, local bit 1 is the target (argument order
    ``(control, target)``), matching the CX table of the paper's Fig. 2.
    """
    matrix = np.eye(4, dtype=np.complex128)
    # Control set means local bit 0 == 1, i.e. local indices 1 (target 0) and 3 (target 1).
    matrix[1, 1] = single[0, 0]
    matrix[1, 3] = single[0, 1]
    matrix[3, 1] = single[1, 0]
    matrix[3, 3] = single[1, 1]
    return matrix


def _mat_cx(_params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_x(()))


def _mat_cy(_params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_y(()))


def _mat_cz(_params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_z(()))


def _mat_ch(_params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_h(()))


def _mat_cp(params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_p(params))


def _mat_crx(params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_rx(params))


def _mat_cry(params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_ry(params))


def _mat_crz(params: Sequence[float]) -> np.ndarray:
    return _embed_controlled(_mat_rz(params))


def _mat_swap(_params: Sequence[float]) -> np.ndarray:
    matrix = np.zeros((4, 4), dtype=np.complex128)
    matrix[0, 0] = 1
    matrix[3, 3] = 1
    matrix[1, 2] = 1
    matrix[2, 1] = 1
    return matrix


def _mat_iswap(_params: Sequence[float]) -> np.ndarray:
    matrix = np.zeros((4, 4), dtype=np.complex128)
    matrix[0, 0] = 1
    matrix[3, 3] = 1
    matrix[1, 2] = 1j
    matrix[2, 1] = 1j
    return matrix


def _mat_rzz(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    phase_same = cmath.exp(-1j * theta / 2)
    phase_diff = cmath.exp(1j * theta / 2)
    return np.diag([phase_same, phase_diff, phase_diff, phase_same]).astype(np.complex128)


def _mat_rxx(params: Sequence[float]) -> np.ndarray:
    theta = params[0]
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    matrix = np.eye(4, dtype=np.complex128) * cos
    anti = -1j * sin
    matrix[0, 3] = anti
    matrix[3, 0] = anti
    matrix[1, 2] = anti
    matrix[2, 1] = anti
    return matrix


def _mat_ccx(_params: Sequence[float]) -> np.ndarray:
    """Toffoli: controls are local bits 0 and 1, target is local bit 2."""
    matrix = np.eye(8, dtype=np.complex128)
    # Both controls set -> local indices 3 (target 0) and 7 (target 1) swap.
    matrix[3, 3] = 0
    matrix[7, 7] = 0
    matrix[3, 7] = 1
    matrix[7, 3] = 1
    return matrix


def _mat_ccz(_params: Sequence[float]) -> np.ndarray:
    matrix = np.eye(8, dtype=np.complex128)
    matrix[7, 7] = -1
    return matrix


def _mat_cswap(_params: Sequence[float]) -> np.ndarray:
    """Fredkin: control is local bit 0, swapped qubits are local bits 1 and 2."""
    matrix = np.eye(8, dtype=np.complex128)
    # Control set and exactly one of the swapped bits set: indices 3 (011) and 5 (101).
    matrix[3, 3] = 0
    matrix[5, 5] = 0
    matrix[3, 5] = 1
    matrix[5, 3] = 1
    return matrix


class GateSpec:
    """Registry entry describing how to build a standard gate."""

    __slots__ = ("name", "num_qubits", "num_params", "matrix_factory", "aliases")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        num_params: int,
        matrix_factory: Callable[[Sequence[float]], np.ndarray],
        aliases: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.num_params = num_params
        self.matrix_factory = matrix_factory
        self.aliases = tuple(aliases)


_STANDARD_SPECS: tuple[GateSpec, ...] = (
    GateSpec("id", 1, 0, _mat_id, aliases=("i",)),
    GateSpec("x", 1, 0, _mat_x, aliases=("not",)),
    GateSpec("y", 1, 0, _mat_y),
    GateSpec("z", 1, 0, _mat_z),
    GateSpec("h", 1, 0, _mat_h),
    GateSpec("s", 1, 0, _mat_s),
    GateSpec("sdg", 1, 0, _mat_sdg),
    GateSpec("t", 1, 0, _mat_t),
    GateSpec("tdg", 1, 0, _mat_tdg),
    GateSpec("sx", 1, 0, _mat_sx),
    GateSpec("rx", 1, 1, _mat_rx),
    GateSpec("ry", 1, 1, _mat_ry),
    GateSpec("rz", 1, 1, _mat_rz),
    GateSpec("p", 1, 1, _mat_p, aliases=("u1", "phase")),
    GateSpec("u", 1, 3, _mat_u, aliases=("u3",)),
    GateSpec("cx", 2, 0, _mat_cx, aliases=("cnot",)),
    GateSpec("cy", 2, 0, _mat_cy),
    GateSpec("cz", 2, 0, _mat_cz),
    GateSpec("ch", 2, 0, _mat_ch),
    GateSpec("cp", 2, 1, _mat_cp, aliases=("cu1", "cphase")),
    GateSpec("crx", 2, 1, _mat_crx),
    GateSpec("cry", 2, 1, _mat_cry),
    GateSpec("crz", 2, 1, _mat_crz),
    GateSpec("swap", 2, 0, _mat_swap),
    GateSpec("iswap", 2, 0, _mat_iswap),
    GateSpec("rzz", 2, 1, _mat_rzz),
    GateSpec("rxx", 2, 1, _mat_rxx),
    GateSpec("ccx", 3, 0, _mat_ccx, aliases=("toffoli",)),
    GateSpec("ccz", 3, 0, _mat_ccz),
    GateSpec("cswap", 3, 0, _mat_cswap, aliases=("fredkin",)),
)

#: Canonical name -> spec.
STANDARD_GATES: dict[str, GateSpec] = {spec.name: spec for spec in _STANDARD_SPECS}

_ALIAS_TO_NAME: dict[str, str] = {}
for _spec in _STANDARD_SPECS:
    _ALIAS_TO_NAME[_spec.name] = _spec.name
    for _alias in _spec.aliases:
        _ALIAS_TO_NAME[_alias] = _spec.name


def canonical_gate_name(name: str) -> str:
    """Map an alias (``cnot``, ``u1``, ...) to its canonical gate name."""
    key = name.lower()
    if key not in _ALIAS_TO_NAME:
        raise GateError(f"unknown gate {name!r}")
    return _ALIAS_TO_NAME[key]


def is_standard_gate(name: str) -> bool:
    """True if ``name`` (or an alias of it) is in the standard gate library."""
    return name.lower() in _ALIAS_TO_NAME


def standard_gate(name: str, *params: ParameterValue) -> Gate:
    """Construct a standard-library gate by name.

    Example::

        standard_gate("h")
        standard_gate("rz", math.pi / 4)
        standard_gate("cx")
    """
    canonical = canonical_gate_name(name)
    spec = STANDARD_GATES[canonical]
    if len(params) != spec.num_params:
        raise GateError(
            f"gate {canonical!r} expects {spec.num_params} parameter(s), got {len(params)}"
        )
    return Gate(canonical, spec.num_qubits, params, spec.matrix_factory)


def unitary_gate(matrix: np.ndarray, name: str = "unitary", atol: float = 1e-8) -> Gate:
    """Wrap an arbitrary unitary matrix as a custom gate.

    The matrix dimension must be a power of two; unitarity is verified.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GateError("unitary gate requires a square matrix")
    dimension = matrix.shape[0]
    num_qubits = int(round(math.log2(dimension)))
    if 1 << num_qubits != dimension:
        raise GateError(f"matrix dimension {dimension} is not a power of two")
    if not np.allclose(matrix.conj().T @ matrix, np.eye(dimension), atol=atol):
        raise GateError("matrix is not unitary")
    frozen = matrix.copy()
    frozen.setflags(write=False)
    return Gate(name, num_qubits, (), lambda _p, m=frozen: m)


def controlled_gate(base: Gate, name: str | None = None) -> Gate:
    """Single-control version of ``base``; the control becomes local bit 0."""
    if base.is_parameterized:
        raise GateError("bind parameters before adding a control")
    base_matrix = base.matrix()
    dim = base_matrix.shape[0]
    matrix = np.eye(2 * dim, dtype=np.complex128)
    # Control = local bit 0: the controlled block is the odd local indices
    # 1, 3, 5, ... which carry the base gate's local index in their upper bits.
    for out_local in range(dim):
        for in_local in range(dim):
            matrix[(out_local << 1) | 1, (in_local << 1) | 1] = base_matrix[out_local, in_local]
    matrix[1, 1] = base_matrix[0, 0]
    return unitary_gate(matrix, name or f"c{base.name}")
