"""Quantum and classical registers.

Registers give qubits (and classical measurement bits) stable names, which is
what the QASM importer/exporter and the circuit builder use to address wires.
Internally a circuit always works with flat integer qubit indices — qubit 0
is the least-significant bit of the relational state index ``s`` — and a
register is simply a named, contiguous slice of those indices.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import CircuitError


class Qubit:
    """A single wire: a (register, index-within-register) pair."""

    __slots__ = ("register", "index")

    def __init__(self, register: "QuantumRegister", index: int) -> None:
        self.register = register
        self.index = index

    def __repr__(self) -> str:
        return f"{self.register.name}[{self.index}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Qubit):
            return NotImplemented
        return self.register is other.register and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.register), self.index))


class Clbit:
    """A single classical bit of a :class:`ClassicalRegister`."""

    __slots__ = ("register", "index")

    def __init__(self, register: "ClassicalRegister", index: int) -> None:
        self.register = register
        self.index = index

    def __repr__(self) -> str:
        return f"{self.register.name}[{self.index}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clbit):
            return NotImplemented
        return self.register is other.register and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.register), self.index))


class _Register:
    """Shared behaviour of quantum and classical registers."""

    _bit_factory: type

    def __init__(self, size: int, name: str) -> None:
        if size < 1:
            raise CircuitError(f"register {name!r} must have at least one bit")
        if not name or not name.replace("_", "").isalnum() or name[0].isdigit():
            raise CircuitError(f"invalid register name {name!r}")
        self._name = name
        self._size = int(size)
        self._bits = [self._bit_factory(self, index) for index in range(size)]

    @property
    def name(self) -> str:
        """Register name (used by the QASM exporter)."""
        return self._name

    @property
    def size(self) -> int:
        """Number of bits in the register."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int):
        return self._bits[index]

    def __iter__(self) -> Iterator:
        return iter(self._bits)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._size}, {self._name!r})"


class QuantumRegister(_Register):
    """A named block of qubits."""

    _bit_factory = Qubit


class ClassicalRegister(_Register):
    """A named block of classical bits receiving measurement outcomes."""

    _bit_factory = Clbit
