"""Programmatic model of the graphical circuit builder.

The paper's Circuit Layer (Sec. 3.1, Fig. 3a) offers a drag-and-drop grid:
columns are time steps, rows are qubits, and the user drops gate tiles onto
cells.  :class:`CircuitGridBuilder` is the head-less equivalent: gates are
*placed* at ``(column, qubits)`` positions, placements can be moved or
removed, and the grid compiles to a :class:`QuantumCircuit`.

It deliberately keeps the grid semantics of the UI (a column is executed
left-to-right; within a column, placements must touch disjoint qubits) so
round-tripping between the builder and a circuit is faithful.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import CircuitError, GateError
from .circuit import QuantumCircuit
from .gates import Gate, is_standard_gate, standard_gate
from .parameters import ParameterValue


class GatePlacement:
    """A gate tile dropped onto the builder grid."""

    __slots__ = ("gate", "qubits", "column")

    def __init__(self, gate: Gate, qubits: Sequence[int], column: int) -> None:
        if len(qubits) != gate.num_qubits:
            raise CircuitError(
                f"gate {gate.name!r} needs {gate.num_qubits} qubit(s), placement has {len(qubits)}"
            )
        if column < 0:
            raise CircuitError("grid column must be non-negative")
        self.gate = gate
        self.qubits = tuple(int(q) for q in qubits)
        self.column = int(column)

    def __repr__(self) -> str:
        return f"GatePlacement({self.gate.name} @ qubits={list(self.qubits)}, column={self.column})"


class CircuitGridBuilder:
    """Head-less drag-and-drop circuit builder.

    Example::

        builder = CircuitGridBuilder(num_qubits=3)
        builder.place("h", [0])               # auto-assigned to the first free column
        builder.place("cx", [0, 1])
        builder.place("cx", [1, 2])
        circuit = builder.build()
    """

    def __init__(self, num_qubits: int, name: str = "builder") -> None:
        if num_qubits < 1:
            raise CircuitError("builder needs at least one qubit row")
        self._num_qubits = int(num_qubits)
        self._name = name
        self._placements: list[GatePlacement] = []

    # ------------------------------------------------------------ inspection

    @property
    def num_qubits(self) -> int:
        """Number of qubit rows in the grid."""
        return self._num_qubits

    @property
    def placements(self) -> list[GatePlacement]:
        """All placements, ordered by (column, first qubit)."""
        return sorted(self._placements, key=lambda p: (p.column, min(p.qubits)))

    @property
    def num_columns(self) -> int:
        """Number of occupied columns (0 if the grid is empty)."""
        if not self._placements:
            return 0
        return max(placement.column for placement in self._placements) + 1

    def occupied_cells(self) -> dict[tuple[int, int], GatePlacement]:
        """Mapping from (column, qubit) to the placement occupying that cell."""
        cells: dict[tuple[int, int], GatePlacement] = {}
        for placement in self._placements:
            for qubit in placement.qubits:
                cells[(placement.column, qubit)] = placement
        return cells

    # -------------------------------------------------------------- editing

    def add_qubit(self) -> int:
        """Add a qubit row at the bottom of the grid; returns its index."""
        self._num_qubits += 1
        return self._num_qubits - 1

    def _validate_qubits(self, qubits: Sequence[int]) -> None:
        for qubit in qubits:
            if not 0 <= int(qubit) < self._num_qubits:
                raise CircuitError(f"qubit {qubit} outside the {self._num_qubits}-row grid")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"placement uses a qubit twice: {list(qubits)}")

    def _first_free_column(self, qubits: Sequence[int]) -> int:
        cells = self.occupied_cells()
        column = 0
        while any((column, qubit) in cells for qubit in qubits):
            column += 1
        # A gate must not be placed left of an existing gate on the same wire,
        # otherwise the visual order and the execution order diverge.
        for placement in self._placements:
            if any(q in placement.qubits for q in qubits):
                column = max(column, placement.column + 1)
        return column

    def place(
        self,
        gate: Gate | str,
        qubits: Sequence[int],
        column: int | None = None,
        params: Sequence[ParameterValue] = (),
    ) -> GatePlacement:
        """Drop a gate tile onto the grid.

        ``gate`` may be a :class:`Gate` or a standard gate name (with
        ``params`` supplying its parameters).  When ``column`` is omitted the
        tile lands in the first column where all its qubits are free and the
        wire order is preserved.
        """
        if isinstance(gate, str):
            if not is_standard_gate(gate):
                raise GateError(f"unknown gate {gate!r}")
            gate = standard_gate(gate, *params)
        elif params:
            raise CircuitError("params are only accepted together with a gate name")
        self._validate_qubits(qubits)
        if column is None:
            column = self._first_free_column(qubits)
        else:
            cells = self.occupied_cells()
            for qubit in qubits:
                if (column, qubit) in cells:
                    raise CircuitError(f"cell (column={column}, qubit={qubit}) is already occupied")
        placement = GatePlacement(gate, qubits, column)
        self._placements.append(placement)
        return placement

    def remove(self, placement: GatePlacement) -> None:
        """Remove a placement from the grid."""
        try:
            self._placements.remove(placement)
        except ValueError as exc:
            raise CircuitError("placement is not on this grid") from exc

    def move(self, placement: GatePlacement, column: int) -> None:
        """Move a placement to a different column (validating cell occupancy)."""
        if placement not in self._placements:
            raise CircuitError("placement is not on this grid")
        cells = self.occupied_cells()
        for qubit in placement.qubits:
            occupant = cells.get((column, qubit))
            if occupant is not None and occupant is not placement:
                raise CircuitError(f"cell (column={column}, qubit={qubit}) is already occupied")
        placement.column = int(column)

    def clear(self) -> None:
        """Remove every placement."""
        self._placements.clear()

    # -------------------------------------------------------------- compile

    def build(self, name: str | None = None) -> QuantumCircuit:
        """Compile the grid into a :class:`QuantumCircuit` (column-major order)."""
        circuit = QuantumCircuit(self._num_qubits, name=name or self._name)
        for placement in self.placements:
            circuit.append(placement.gate, placement.qubits)
        return circuit

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit, name: str | None = None) -> "CircuitGridBuilder":
        """Lay out an existing circuit on a grid (ASAP column assignment)."""
        builder = cls(circuit.num_qubits, name=name or circuit.name)
        frontier: dict[int, int] = {}
        for instruction in circuit.instructions:
            if not instruction.is_gate or instruction.gate is None:
                continue
            column = max((frontier.get(q, 0) for q in instruction.qubits), default=0)
            builder.place(instruction.gate, instruction.qubits, column=column)
            for qubit in instruction.qubits:
                frontier[qubit] = column + 1
        return builder

    def to_ascii(self) -> str:
        """Render the grid as ASCII art (rows are qubits, columns are time steps)."""
        columns = self.num_columns
        cells = self.occupied_cells()
        lines = []
        for qubit in range(self._num_qubits):
            row = [f"q{qubit}:"]
            for column in range(columns):
                placement = cells.get((column, qubit))
                if placement is None:
                    row.append("....")
                elif len(placement.qubits) > 1 and placement.qubits.index(qubit) == 0 and placement.gate.name.startswith("c"):
                    row.append(" *  ")
                else:
                    row.append(f"[{placement.gate.name[:2].upper():2}]")
            lines.append(" ".join(row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CircuitGridBuilder(qubits={self._num_qubits}, placements={len(self._placements)}, "
            f"columns={self.num_columns})"
        )


def build_circuit(num_qubits: int, moments: Sequence[Sequence[tuple]], name: str = "circuit") -> QuantumCircuit:
    """Convenience function: build a circuit from a list of moments.

    Each moment is a sequence of ``(gate_name, qubits)`` or
    ``(gate_name, qubits, params)`` tuples, e.g.::

        build_circuit(3, [
            [("h", [0])],
            [("cx", [0, 1])],
            [("cx", [1, 2])],
        ])
    """
    builder = CircuitGridBuilder(num_qubits, name=name)
    for column, moment in enumerate(moments):
        for entry in moment:
            if len(entry) == 2:
                gate_name, qubits = entry
                params: Sequence[ParameterValue] = ()
            elif len(entry) == 3:
                gate_name, qubits, params = entry
            else:
                raise CircuitError(f"moment entry {entry!r} must be (name, qubits[, params])")
            builder.place(gate_name, qubits, column=column, params=params)
    return builder.build(name=name)


def parameter_assignment(circuit: QuantumCircuit, values: Mapping[str, float]) -> dict:
    """Map a name-keyed assignment onto the circuit's Parameter objects."""
    by_name = {parameter.name: parameter for parameter in circuit.parameters}
    assignment = {}
    for name, value in values.items():
        if name not in by_name:
            raise CircuitError(f"circuit has no parameter named {name!r}")
        assignment[by_name[name]] = float(value)
    return assignment
