"""Core circuit intermediate representation (the paper's Circuit Layer)."""

from .circuit import QuantumCircuit, circuit_from_instructions
from .builder import CircuitGridBuilder, GatePlacement, build_circuit
from .dag import CircuitDag, DagNode
from .gates import (
    Gate,
    STANDARD_GATES,
    canonical_gate_name,
    controlled_gate,
    is_standard_gate,
    standard_gate,
    unitary_gate,
)
from .instruction import Instruction
from .parameters import Parameter, ParameterExpression, ParameterVector
from .registers import ClassicalRegister, Clbit, QuantumRegister, Qubit

__all__ = [
    "QuantumCircuit",
    "circuit_from_instructions",
    "CircuitGridBuilder",
    "GatePlacement",
    "build_circuit",
    "CircuitDag",
    "DagNode",
    "Gate",
    "STANDARD_GATES",
    "canonical_gate_name",
    "controlled_gate",
    "is_standard_gate",
    "standard_gate",
    "unitary_gate",
    "Instruction",
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "ClassicalRegister",
    "Clbit",
    "QuantumRegister",
    "Qubit",
]
