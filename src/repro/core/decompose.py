"""Gate decomposition into the {single-qubit, CX} basis.

The decision-diagram and MPS simulators operate on a restricted native gate
set; this module rewrites any standard-library gate into single-qubit gates
plus CX using textbook constructions:

* controlled-U (one control) via the ZYZ / ABC decomposition
  (Nielsen & Chuang, Sec. 4.3),
* doubly-controlled U via the sqrt-gate "V-chain" (N&C Fig. 4.8),
* SWAP as three CX, iSWAP / RZZ / RXX / CSWAP via standard identities.

The decomposition is exact (no approximation); circuits produced here are
verified against the original unitaries in the test suite.
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

from ..errors import CircuitError, GateError
from .circuit import QuantumCircuit, circuit_from_instructions
from .gates import Gate, standard_gate
from .instruction import Instruction

#: Gates that are already in the target basis.
_BASIS_1Q = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz", "p", "u",
}


def _zyz_angles(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``."""
    det = np.linalg.det(matrix)
    alpha = 0.5 * cmath.phase(det)
    special = matrix * cmath.exp(-1j * alpha)

    # With det(special) = 1 the matrix has the canonical SU(2) form
    #   [[ e^{-i(beta+delta)/2} cos(gamma/2), -e^{-i(beta-delta)/2} sin(gamma/2)],
    #    [ e^{+i(beta-delta)/2} sin(gamma/2),  e^{+i(beta+delta)/2} cos(gamma/2)]]
    # with gamma in [0, pi], so the angles can be read off the entry phases.
    gamma = 2.0 * math.atan2(abs(special[1, 0]), abs(special[0, 0]))
    if abs(special[0, 0]) > 1e-12 and abs(special[1, 0]) > 1e-12:
        half_sum = -cmath.phase(special[0, 0])
        half_diff = cmath.phase(special[1, 0])
        beta = half_sum + half_diff
        delta = half_sum - half_diff
    elif abs(special[0, 0]) > 1e-12:
        # Diagonal-like: gamma ~ 0, only the sum of the z-angles matters.
        beta = -2.0 * cmath.phase(special[0, 0])
        delta = 0.0
    else:
        # Anti-diagonal: gamma ~ pi, only the difference matters.
        beta = 2.0 * cmath.phase(special[1, 0])
        delta = 0.0
    return alpha, beta, gamma, delta


def _single_qubit_sequence(matrix: np.ndarray, qubit: int, include_phase: bool = True) -> list[Instruction]:
    """Instructions implementing a 2x2 unitary on ``qubit`` (up to nothing — phase included)."""
    alpha, beta, gamma, delta = _zyz_angles(matrix)
    sequence: list[Instruction] = []
    if abs(delta) > 1e-12:
        sequence.append(Instruction(standard_gate("rz", delta), [qubit]))
    if abs(gamma) > 1e-12:
        sequence.append(Instruction(standard_gate("ry", gamma), [qubit]))
    if abs(beta) > 1e-12:
        sequence.append(Instruction(standard_gate("rz", beta), [qubit]))
    if include_phase and abs(alpha) > 1e-12:
        # A global phase on one qubit: p(alpha) sandwiched between X gates adds
        # the phase to the |0> branch too; cheaper: p(alpha) plus rz(-... ).
        # Simplest exact trick: phase * I = p(alpha) on |1> and the X-conjugated
        # p(alpha) on |0>.
        sequence.append(Instruction(standard_gate("p", alpha), [qubit]))
        sequence.append(Instruction(standard_gate("x"), [qubit]))
        sequence.append(Instruction(standard_gate("p", alpha), [qubit]))
        sequence.append(Instruction(standard_gate("x"), [qubit]))
    return sequence


def _controlled_unitary(matrix: np.ndarray, control: int, target: int) -> list[Instruction]:
    """ABC decomposition of a controlled 2x2 unitary into 1q gates + 2 CX."""
    alpha, beta, gamma, delta = _zyz_angles(matrix)
    instructions: list[Instruction] = []

    # C = Rz((delta - beta) / 2)
    angle_c = (delta - beta) / 2
    if abs(angle_c) > 1e-12:
        instructions.append(Instruction(standard_gate("rz", angle_c), [target]))
    instructions.append(Instruction(standard_gate("cx"), [control, target]))
    # B = Ry(-gamma/2) Rz(-(delta + beta)/2)
    angle_b = -(delta + beta) / 2
    if abs(angle_b) > 1e-12:
        instructions.append(Instruction(standard_gate("rz", angle_b), [target]))
    if abs(gamma) > 1e-12:
        instructions.append(Instruction(standard_gate("ry", -gamma / 2), [target]))
    instructions.append(Instruction(standard_gate("cx"), [control, target]))
    # A = Rz(beta) Ry(gamma/2)
    if abs(gamma) > 1e-12:
        instructions.append(Instruction(standard_gate("ry", gamma / 2), [target]))
    if abs(beta) > 1e-12:
        instructions.append(Instruction(standard_gate("rz", beta), [target]))
    # The e^{i alpha} phase becomes a phase gate on the control.
    if abs(alpha) > 1e-12:
        instructions.append(Instruction(standard_gate("p", alpha), [control]))
    return instructions


def _doubly_controlled_unitary(matrix: np.ndarray, control_a: int, control_b: int, target: int) -> list[Instruction]:
    """V-chain decomposition of CC-U with V = sqrt(U) (N&C Fig. 4.8)."""
    eigenvalues, eigenvectors = np.linalg.eig(matrix)
    sqrt_matrix = eigenvectors @ np.diag(np.sqrt(eigenvalues.astype(np.complex128))) @ np.linalg.inv(eigenvectors)
    sqrt_dagger = sqrt_matrix.conj().T
    instructions: list[Instruction] = []
    instructions.extend(_controlled_unitary(sqrt_matrix, control_b, target))
    instructions.append(Instruction(standard_gate("cx"), [control_a, control_b]))
    instructions.extend(_controlled_unitary(sqrt_dagger, control_b, target))
    instructions.append(Instruction(standard_gate("cx"), [control_a, control_b]))
    instructions.extend(_controlled_unitary(sqrt_matrix, control_a, target))
    return instructions


def decompose_instruction(instruction: Instruction) -> list[Instruction]:
    """Rewrite one gate instruction into the {1-qubit, CX} basis.

    Non-gate instructions (measurements, barriers, resets) and gates already
    in the basis are returned unchanged.
    """
    if not instruction.is_gate or instruction.gate is None:
        return [instruction]
    gate = instruction.gate
    if gate.is_parameterized:
        raise CircuitError(f"bind parameters before decomposing gate {gate.name!r}")
    qubits = instruction.qubits
    name = gate.name

    if name in _BASIS_1Q or (gate.num_qubits == 1):
        return [instruction]
    if name == "cx":
        return [instruction]

    if name == "swap":
        a, b = qubits
        cx = standard_gate("cx")
        return [Instruction(cx, [a, b]), Instruction(cx, [b, a]), Instruction(cx, [a, b])]
    if name == "iswap":
        a, b = qubits
        swap = decompose_instruction(Instruction(standard_gate("swap"), [a, b]))
        cz = decompose_instruction(Instruction(standard_gate("cz"), [a, b]))
        return swap + cz + [Instruction(standard_gate("s"), [a]), Instruction(standard_gate("s"), [b])]
    if name == "rzz":
        a, b = qubits
        theta = float(gate.resolved_params()[0])
        cx = standard_gate("cx")
        return [Instruction(cx, [a, b]), Instruction(standard_gate("rz", theta), [b]), Instruction(cx, [a, b])]
    if name == "rxx":
        a, b = qubits
        theta = float(gate.resolved_params()[0])
        h = standard_gate("h")
        inner = decompose_instruction(Instruction(standard_gate("rzz", theta), [a, b]))
        return (
            [Instruction(h, [a]), Instruction(h, [b])]
            + inner
            + [Instruction(h, [a]), Instruction(h, [b])]
        )

    if gate.num_qubits == 2:
        # Generic controlled-U: control is the first argument by library convention.
        control, target = qubits
        matrix = gate.matrix()
        # Extract the target-qubit unitary from the controlled block
        # (local indices 1 and 3 = control set, target 0/1).
        block = np.array([[matrix[1, 1], matrix[1, 3]], [matrix[3, 1], matrix[3, 3]]], dtype=np.complex128)
        identity_block = np.array([[matrix[0, 0], matrix[0, 2]], [matrix[2, 0], matrix[2, 2]]], dtype=np.complex128)
        if not np.allclose(identity_block, np.eye(2), atol=1e-9):
            raise GateError(f"two-qubit gate {name!r} is not a controlled gate; cannot decompose")
        return _controlled_unitary(block, control, target)

    if name == "ccx":
        a, b, target = qubits
        return _doubly_controlled_unitary(np.array([[0, 1], [1, 0]], dtype=np.complex128), a, b, target)
    if name == "ccz":
        a, b, target = qubits
        return _doubly_controlled_unitary(np.array([[1, 0], [0, -1]], dtype=np.complex128), a, b, target)
    if name == "cswap":
        control, target_a, target_b = qubits
        cx = standard_gate("cx")
        middle = decompose_instruction(Instruction(standard_gate("ccx"), [control, target_b, target_a]))
        return [Instruction(cx, [target_a, target_b])] + middle + [Instruction(cx, [target_a, target_b])]

    raise GateError(f"no decomposition rule for gate {name!r} on {gate.num_qubits} qubits")


def decompose_circuit(circuit: QuantumCircuit, name: str | None = None) -> QuantumCircuit:
    """Rewrite a whole circuit into the {single-qubit, CX} basis."""
    instructions: list[Instruction] = []
    for instruction in circuit.instructions:
        instructions.extend(decompose_instruction(instruction))
    result = circuit_from_instructions(circuit.num_qubits, instructions, name=name or f"{circuit.name}_decomposed")
    return result


def two_qubit_basis_circuit(circuit: QuantumCircuit, name: str | None = None) -> QuantumCircuit:
    """Rewrite only 3-or-more-qubit gates, keeping native two-qubit gates.

    This is the form preferred by the MPS simulator, which applies arbitrary
    two-qubit gates natively but cannot handle wider gates.
    """
    instructions: list[Instruction] = []
    for instruction in circuit.instructions:
        if instruction.is_gate and instruction.gate is not None and instruction.gate.num_qubits > 2:
            instructions.extend(decompose_instruction(instruction))
        else:
            instructions.append(instruction)
    return circuit_from_instructions(circuit.num_qubits, instructions, name=name or f"{circuit.name}_2q")


def gate_sequence_unitary(instructions: Sequence[Instruction], num_qubits: int) -> np.ndarray:
    """Dense unitary of an instruction list (test helper; exponential in qubits)."""
    dimension = 1 << num_qubits
    unitary = np.eye(dimension, dtype=np.complex128)
    for instruction in instructions:
        if not instruction.is_gate or instruction.gate is None:
            raise CircuitError("gate_sequence_unitary only accepts gate instructions")
        matrix = instruction.gate.matrix()
        expanded = _expand_gate_matrix(matrix, instruction.qubits, num_qubits)
        unitary = expanded @ unitary
    return unitary


def _expand_gate_matrix(matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit gate matrix into the full 2^n-dimensional space."""
    dimension = 1 << num_qubits
    expanded = np.zeros((dimension, dimension), dtype=np.complex128)
    gate_qubits = list(qubits)
    mask = 0
    for qubit in gate_qubits:
        mask |= 1 << qubit
    for basis in range(dimension):
        local_in = 0
        for position, qubit in enumerate(gate_qubits):
            local_in |= ((basis >> qubit) & 1) << position
        rest = basis & ~mask
        for local_out in range(matrix.shape[0]):
            amplitude = matrix[local_out, local_in]
            if amplitude == 0:
                continue
            target = rest
            for position, qubit in enumerate(gate_qubits):
                if (local_out >> position) & 1:
                    target |= 1 << qubit
            expanded[target, basis] += amplitude
    return expanded
