"""Symbolic parameters for parameterized circuit families.

The paper's Circuit Layer lets researchers define *parameterized circuit
families* programmatically (Sec. 3.1) and the Simulation Layer sweeps the
parameter space (Sec. 3.3).  This module provides the small symbolic algebra
needed for that: :class:`Parameter` is a named placeholder, and
:class:`ParameterExpression` is a deferred arithmetic expression over
parameters and constants that can be *bound* to floats later.

The design intentionally avoids a full CAS: expressions are built from small
evaluator objects over an operation tree, which is enough for rotation angles
such as ``2 * theta + pi/4`` or ``sin(gamma)``.  Evaluators are plain
module-level classes (not closures) so parameterized circuits *pickle* — the
job service's process-backed batch tier ships circuit templates to spawned
worker processes.
"""

from __future__ import annotations

import math
import operator
from typing import Callable, Iterable, Mapping, Union

from ..errors import ParameterError

Numeric = Union[int, float]
ParameterValue = Union["ParameterExpression", Numeric]


class _ConstEvaluator:
    """Evaluator of a constant leaf."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __call__(self, _assignment: Mapping["Parameter", float]) -> float:
        return self.value


class _LookupEvaluator:
    """Evaluator of a bare parameter leaf (looks itself up by identity)."""

    __slots__ = ("parameter",)

    def __init__(self, parameter: "Parameter") -> None:
        self.parameter = parameter

    def __call__(self, assignment: Mapping["Parameter", float]) -> float:
        if self.parameter not in assignment:
            raise ParameterError(f"parameter {self.parameter.name!r} is unbound")
        return assignment[self.parameter]


class _BinaryEvaluator:
    """Evaluator applying a binary operator to two sub-evaluators."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: Callable[[float, float], float], left, right) -> None:
        self.op = op
        self.left = left
        self.right = right

    def __call__(self, assignment: Mapping["Parameter", float]) -> float:
        return self.op(self.left(assignment), self.right(assignment))


class _UnaryEvaluator:
    """Evaluator applying a unary function to a sub-evaluator."""

    __slots__ = ("op", "inner")

    def __init__(self, op: Callable[[float], float], inner) -> None:
        self.op = op
        self.inner = inner

    def __call__(self, assignment: Mapping["Parameter", float]) -> float:
        return self.op(self.inner(assignment))


class _PartialEvaluator:
    """Evaluator with some parameters pre-bound (the result of ``bind``)."""

    __slots__ = ("captured", "inner")

    def __init__(self, captured: dict, inner) -> None:
        self.captured = captured
        self.inner = inner

    def __call__(self, assignment: Mapping["Parameter", float]) -> float:
        merged = dict(self.captured)
        merged.update(assignment)
        return self.inner(merged)


class ParameterExpression:
    """A deferred real-valued expression over named parameters.

    Instances are immutable.  Arithmetic operators build new expressions;
    :meth:`bind` substitutes values and returns either a plain ``float`` (when
    every parameter is bound) or a new expression with the remaining free
    parameters.
    """

    __slots__ = ("_parameters", "_evaluator", "_text")

    def __init__(
        self,
        parameters: frozenset["Parameter"],
        evaluator: Callable[[Mapping["Parameter", float]], float],
        text: str,
    ) -> None:
        self._parameters = parameters
        self._evaluator = evaluator
        self._text = text

    # ------------------------------------------------------------------ API

    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The free parameters appearing in this expression."""
        return self._parameters

    @property
    def is_bound(self) -> bool:
        """True when the expression contains no free parameters."""
        return not self._parameters

    def bind(self, values: Mapping["Parameter", Numeric]) -> ParameterValue:
        """Substitute ``values`` for parameters.

        Returns a ``float`` if all free parameters are covered, otherwise a
        new :class:`ParameterExpression` over the remaining parameters.
        Unknown keys in ``values`` are ignored so one assignment dict can be
        applied to a whole circuit.
        """
        relevant = {p: float(v) for p, v in values.items() if p in self._parameters}
        remaining = self._parameters - frozenset(relevant)
        if not remaining:
            return float(self._evaluator(relevant))

        captured = dict(relevant)
        evaluator = _PartialEvaluator(captured, self._evaluator)
        bound_bits = ", ".join(f"{p.name}={v:g}" for p, v in sorted(captured.items(), key=lambda kv: kv[0].name))
        text = f"({self._text})[{bound_bits}]" if bound_bits else self._text
        return ParameterExpression(frozenset(remaining), evaluator, text)

    def evaluate(self, values: Mapping["Parameter", Numeric] | None = None) -> float:
        """Fully evaluate the expression, raising if any parameter is unbound."""
        result = self.bind(values or {})
        if isinstance(result, ParameterExpression):
            missing = sorted(p.name for p in result.parameters)
            raise ParameterError(f"cannot evaluate expression {self._text!r}: unbound parameters {missing}")
        return result

    # ------------------------------------------------------- arithmetic ops

    @staticmethod
    def _coerce(value: ParameterValue) -> "ParameterExpression":
        if isinstance(value, ParameterExpression):
            return value
        if isinstance(value, (int, float)):
            return ParameterExpression(frozenset(), _ConstEvaluator(float(value)), f"{value:g}")
        raise TypeError(f"cannot use {type(value).__name__} in a parameter expression")

    def _binary(self, other: ParameterValue, op: Callable[[float, float], float], symbol: str, *, reflected: bool = False) -> "ParameterExpression":
        try:
            rhs = self._coerce(other)
        except TypeError:
            return NotImplemented  # type: ignore[return-value]
        left, right = (rhs, self) if reflected else (self, rhs)
        evaluator = _BinaryEvaluator(op, left._evaluator, right._evaluator)
        text = f"({left._text} {symbol} {right._text})"
        return ParameterExpression(left._parameters | right._parameters, evaluator, text)

    def __add__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.add, "+")

    def __radd__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.add, "+", reflected=True)

    def __sub__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.sub, "-")

    def __rsub__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.sub, "-", reflected=True)

    def __mul__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.mul, "*")

    def __rmul__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.mul, "*", reflected=True)

    def __truediv__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.truediv, "/")

    def __rtruediv__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.truediv, "/", reflected=True)

    def __pow__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, operator.pow, "**")

    def __neg__(self) -> "ParameterExpression":
        return self._binary(-1.0, operator.mul, "*")

    # unary math helpers -----------------------------------------------------

    def _unary(self, op: Callable[[float], float], name: str) -> "ParameterExpression":
        evaluator = _UnaryEvaluator(op, self._evaluator)
        return ParameterExpression(self._parameters, evaluator, f"{name}({self._text})")

    def sin(self) -> "ParameterExpression":
        """Element ``sin`` of this expression."""
        return self._unary(math.sin, "sin")

    def cos(self) -> "ParameterExpression":
        """Element ``cos`` of this expression."""
        return self._unary(math.cos, "cos")

    def exp(self) -> "ParameterExpression":
        """Element ``exp`` of this expression."""
        return self._unary(math.exp, "exp")

    # -------------------------------------------------------------- dunders

    def __repr__(self) -> str:
        return f"ParameterExpression({self._text})"

    def __str__(self) -> str:
        return self._text


class Parameter(ParameterExpression):
    """A named free parameter, e.g. ``theta`` in an ``rx(theta)`` gate.

    Two parameters are equal only if they are the same object or share the
    same name; names therefore act as stable identities across circuit
    copies and serialized forms.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ParameterError("parameter name must be a non-empty string")
        self._name = name
        super().__init__(frozenset({self}), _LookupEvaluator(self), name)

    @property
    def name(self) -> str:
        """The parameter's name."""
        return self._name

    def __hash__(self) -> int:
        return hash(("Parameter", self._name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and other._name == self._name

    def __reduce__(self):
        # The evaluator closure is rebuilt by __init__, and names are the
        # identity, so a Parameter round-trips pickling by name alone.  This
        # is what lets parameterized circuits travel to the job service's
        # process-backed workers.
        return (Parameter, (self._name,))

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"


class ParameterVector:
    """A convenience factory producing ``name[0] .. name[length-1]`` parameters."""

    def __init__(self, name: str, length: int) -> None:
        if length < 0:
            raise ParameterError("ParameterVector length must be non-negative")
        self._name = name
        self._params = [Parameter(f"{name}[{index}]") for index in range(length)]

    @property
    def name(self) -> str:
        """Base name of the vector."""
        return self._name

    @property
    def params(self) -> list[Parameter]:
        """The parameters, in index order."""
        return list(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __getitem__(self, index: int) -> Parameter:
        return self._params[index]

    def __iter__(self) -> Iterable[Parameter]:
        return iter(self._params)

    def __repr__(self) -> str:
        return f"ParameterVector({self._name!r}, length={len(self._params)})"


def parameter_value_text(value: ParameterValue) -> str:
    """Human-readable rendering of a gate parameter (bound or symbolic)."""
    if isinstance(value, ParameterExpression):
        return str(value)
    return f"{float(value):g}"


def resolve_parameter(value: ParameterValue, assignment: Mapping[Parameter, Numeric] | None = None) -> float:
    """Return the float value of ``value`` under ``assignment``.

    Raises :class:`ParameterError` if the value still contains free
    parameters after substitution.
    """
    if isinstance(value, ParameterExpression):
        return value.evaluate(assignment or {})
    return float(value)


def free_parameters(value: ParameterValue) -> frozenset[Parameter]:
    """The set of unbound parameters appearing in ``value``."""
    if isinstance(value, ParameterExpression):
        return value.parameters
    return frozenset()
