"""Symbolic parameters for parameterized circuit families.

The paper's Circuit Layer lets researchers define *parameterized circuit
families* programmatically (Sec. 3.1) and the Simulation Layer sweeps the
parameter space (Sec. 3.3).  This module provides the small symbolic algebra
needed for that: :class:`Parameter` is a named placeholder, and
:class:`ParameterExpression` is a deferred arithmetic expression over
parameters and constants that can be *bound* to floats later.

The design intentionally avoids a full CAS: expressions are closures over an
operation tree, which is enough for rotation angles such as ``2 * theta + pi/4``
or ``sin(gamma)``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Union

from ..errors import ParameterError

Numeric = Union[int, float]
ParameterValue = Union["ParameterExpression", Numeric]


class ParameterExpression:
    """A deferred real-valued expression over named parameters.

    Instances are immutable.  Arithmetic operators build new expressions;
    :meth:`bind` substitutes values and returns either a plain ``float`` (when
    every parameter is bound) or a new expression with the remaining free
    parameters.
    """

    __slots__ = ("_parameters", "_evaluator", "_text")

    def __init__(
        self,
        parameters: frozenset["Parameter"],
        evaluator: Callable[[Mapping["Parameter", float]], float],
        text: str,
    ) -> None:
        self._parameters = parameters
        self._evaluator = evaluator
        self._text = text

    # ------------------------------------------------------------------ API

    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The free parameters appearing in this expression."""
        return self._parameters

    @property
    def is_bound(self) -> bool:
        """True when the expression contains no free parameters."""
        return not self._parameters

    def bind(self, values: Mapping["Parameter", Numeric]) -> ParameterValue:
        """Substitute ``values`` for parameters.

        Returns a ``float`` if all free parameters are covered, otherwise a
        new :class:`ParameterExpression` over the remaining parameters.
        Unknown keys in ``values`` are ignored so one assignment dict can be
        applied to a whole circuit.
        """
        relevant = {p: float(v) for p, v in values.items() if p in self._parameters}
        remaining = self._parameters - frozenset(relevant)
        if not remaining:
            return float(self._evaluator(relevant))

        captured = dict(relevant)
        inner = self._evaluator

        def evaluator(assignment: Mapping[Parameter, float]) -> float:
            merged = dict(captured)
            merged.update(assignment)
            return inner(merged)

        bound_bits = ", ".join(f"{p.name}={v:g}" for p, v in sorted(captured.items(), key=lambda kv: kv[0].name))
        text = f"({self._text})[{bound_bits}]" if bound_bits else self._text
        return ParameterExpression(frozenset(remaining), evaluator, text)

    def evaluate(self, values: Mapping["Parameter", Numeric] | None = None) -> float:
        """Fully evaluate the expression, raising if any parameter is unbound."""
        result = self.bind(values or {})
        if isinstance(result, ParameterExpression):
            missing = sorted(p.name for p in result.parameters)
            raise ParameterError(f"cannot evaluate expression {self._text!r}: unbound parameters {missing}")
        return result

    # ------------------------------------------------------- arithmetic ops

    @staticmethod
    def _coerce(value: ParameterValue) -> "ParameterExpression":
        if isinstance(value, ParameterExpression):
            return value
        if isinstance(value, (int, float)):
            const = float(value)
            return ParameterExpression(frozenset(), lambda _a, c=const: c, f"{value:g}")
        raise TypeError(f"cannot use {type(value).__name__} in a parameter expression")

    def _binary(self, other: ParameterValue, op: Callable[[float, float], float], symbol: str, *, reflected: bool = False) -> "ParameterExpression":
        try:
            rhs = self._coerce(other)
        except TypeError:
            return NotImplemented  # type: ignore[return-value]
        left, right = (rhs, self) if reflected else (self, rhs)

        def evaluator(assignment: Mapping[Parameter, float]) -> float:
            return op(left._evaluator(assignment), right._evaluator(assignment))

        text = f"({left._text} {symbol} {right._text})"
        return ParameterExpression(left._parameters | right._parameters, evaluator, text)

    def __add__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a + b, "+")

    def __radd__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a + b, "+", reflected=True)

    def __sub__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a - b, "-")

    def __rsub__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a - b, "-", reflected=True)

    def __mul__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a * b, "*")

    def __rmul__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a * b, "*", reflected=True)

    def __truediv__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a / b, "/")

    def __rtruediv__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a / b, "/", reflected=True)

    def __pow__(self, other: ParameterValue) -> "ParameterExpression":
        return self._binary(other, lambda a, b: a ** b, "**")

    def __neg__(self) -> "ParameterExpression":
        return self._binary(-1.0, lambda a, b: a * b, "*")

    # unary math helpers -----------------------------------------------------

    def _unary(self, op: Callable[[float], float], name: str) -> "ParameterExpression":
        inner = self._evaluator

        def evaluator(assignment: Mapping[Parameter, float]) -> float:
            return op(inner(assignment))

        return ParameterExpression(self._parameters, evaluator, f"{name}({self._text})")

    def sin(self) -> "ParameterExpression":
        """Element ``sin`` of this expression."""
        return self._unary(math.sin, "sin")

    def cos(self) -> "ParameterExpression":
        """Element ``cos`` of this expression."""
        return self._unary(math.cos, "cos")

    def exp(self) -> "ParameterExpression":
        """Element ``exp`` of this expression."""
        return self._unary(math.exp, "exp")

    # -------------------------------------------------------------- dunders

    def __repr__(self) -> str:
        return f"ParameterExpression({self._text})"

    def __str__(self) -> str:
        return self._text


class Parameter(ParameterExpression):
    """A named free parameter, e.g. ``theta`` in an ``rx(theta)`` gate.

    Two parameters are equal only if they are the same object or share the
    same name; names therefore act as stable identities across circuit
    copies and serialized forms.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ParameterError("parameter name must be a non-empty string")
        self._name = name
        super().__init__(
            frozenset({self}),
            lambda assignment: self._lookup(assignment),
            name,
        )

    def _lookup(self, assignment: Mapping["Parameter", float]) -> float:
        if self not in assignment:
            raise ParameterError(f"parameter {self._name!r} is unbound")
        return assignment[self]

    @property
    def name(self) -> str:
        """The parameter's name."""
        return self._name

    def __hash__(self) -> int:
        return hash(("Parameter", self._name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and other._name == self._name

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"


class ParameterVector:
    """A convenience factory producing ``name[0] .. name[length-1]`` parameters."""

    def __init__(self, name: str, length: int) -> None:
        if length < 0:
            raise ParameterError("ParameterVector length must be non-negative")
        self._name = name
        self._params = [Parameter(f"{name}[{index}]") for index in range(length)]

    @property
    def name(self) -> str:
        """Base name of the vector."""
        return self._name

    @property
    def params(self) -> list[Parameter]:
        """The parameters, in index order."""
        return list(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __getitem__(self, index: int) -> Parameter:
        return self._params[index]

    def __iter__(self) -> Iterable[Parameter]:
        return iter(self._params)

    def __repr__(self) -> str:
        return f"ParameterVector({self._name!r}, length={len(self._params)})"


def parameter_value_text(value: ParameterValue) -> str:
    """Human-readable rendering of a gate parameter (bound or symbolic)."""
    if isinstance(value, ParameterExpression):
        return str(value)
    return f"{float(value):g}"


def resolve_parameter(value: ParameterValue, assignment: Mapping[Parameter, Numeric] | None = None) -> float:
    """Return the float value of ``value`` under ``assignment``.

    Raises :class:`ParameterError` if the value still contains free
    parameters after substitution.
    """
    if isinstance(value, ParameterExpression):
        return value.evaluate(assignment or {})
    return float(value)


def free_parameters(value: ParameterValue) -> frozenset[Parameter]:
    """The set of unbound parameters appearing in ``value``."""
    if isinstance(value, ParameterExpression):
        return value.parameters
    return frozenset()
