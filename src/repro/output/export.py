"""Export and reporting helpers (CSV / JSON) for results and benchmarks.

The Output Layer's "Export and Reporting" feature: results and benchmark
series can be written to disk for analysis or publication.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import AnalysisError
from .result import SimulationResult, SparseState


def state_to_json(state: SparseState) -> str:
    """Serialize a state as JSON relational rows ``{"num_qubits": n, "rows": [[s, r, i], ...]}``."""
    return json.dumps({"num_qubits": state.num_qubits, "rows": state.to_rows()}, indent=2)


def state_from_json(text: str) -> SparseState:
    """Inverse of :func:`state_to_json`."""
    try:
        payload = json.loads(text)
        return SparseState.from_rows(int(payload["num_qubits"]), [tuple(row) for row in payload["rows"]])
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"invalid state JSON: {exc}") from exc


def result_to_json(result: SimulationResult) -> str:
    """Serialize a full simulation result (state + metadata) as JSON."""
    return json.dumps(result.to_dict(), indent=2)


def write_state_csv(state: SparseState, path: str | Path) -> Path:
    """Write a state's relational rows to a CSV file with header ``s,r,i``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["s", "r", "i"])
        for s, r, i in state.to_rows():
            writer.writerow([s, repr(r), repr(i)])
    return path


def read_state_csv(path: str | Path, num_qubits: int) -> SparseState:
    """Read a state back from a CSV written by :func:`write_state_csv`."""
    path = Path(path)
    rows: list[tuple[int, float, float]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"s", "r", "i"} <= set(reader.fieldnames):
            raise AnalysisError(f"{path} does not look like a state CSV (missing s/r/i header)")
        for record in reader:
            rows.append((int(record["s"]), float(record["r"]), float(record["i"])))
    return SparseState.from_rows(num_qubits, rows)


def write_records_csv(records: Sequence[Mapping[str, object]], path: str | Path, columns: Sequence[str] | None = None) -> Path:
    """Write benchmark records (list of dicts) to CSV."""
    if not records:
        raise AnalysisError("nothing to export: empty records")
    path = Path(path)
    if columns is None:
        columns = list(records[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow({key: record.get(key, "") for key in columns})
    return path


def write_records_json(records: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write benchmark records to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(list(records), indent=2, default=str))
    return path
