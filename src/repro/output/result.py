"""State and result containers shared by every simulation method.

The relational representation of the paper stores a quantum state as rows
``(s, r, i)`` — only nonzero basis states.  :class:`SparseState` is the
in-memory equivalent: a mapping from basis index to complex amplitude.  Every
backend (SQL or otherwise) produces one, so results from different methods
can be compared directly.

:class:`SimulationResult` wraps a final state together with the execution
metadata the paper's Output Layer reports: method name, wall-clock time,
memory estimates and per-gate statistics.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..errors import AnalysisError

#: Amplitudes with squared magnitude below this are treated as zero by default.
DEFAULT_PRUNE_ATOL = 1e-12


class SparseState:
    """A quantum state stored as {basis index: complex amplitude}.

    Mirrors the relational schema ``T(s, r, i)``: only nonzero entries are
    kept.  Instances are mutable mappings but most methods return new states.
    """

    __slots__ = ("_num_qubits", "_amplitudes")

    def __init__(self, num_qubits: int, amplitudes: Mapping[int, complex] | None = None) -> None:
        if num_qubits < 1:
            raise AnalysisError("a state needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._amplitudes: dict[int, complex] = {}
        if amplitudes:
            dimension = 1 << self._num_qubits
            for index, amplitude in amplitudes.items():
                index = int(index)
                if not 0 <= index < dimension:
                    raise AnalysisError(f"basis index {index} out of range for {num_qubits} qubits")
                value = complex(amplitude)
                if value != 0:
                    self._amplitudes[index] = value

    # ------------------------------------------------------------ factories

    @classmethod
    def zero_state(cls, num_qubits: int) -> "SparseState":
        """The |0...0> state: a single row ``(0, 1.0, 0.0)``."""
        return cls(num_qubits, {0: 1.0 + 0.0j})

    @classmethod
    def from_dense(cls, vector: np.ndarray, atol: float = DEFAULT_PRUNE_ATOL) -> "SparseState":
        """Build from a dense state vector, dropping near-zero amplitudes."""
        vector = np.asarray(vector, dtype=np.complex128).ravel()
        num_qubits = int(round(math.log2(vector.size)))
        if 1 << num_qubits != vector.size:
            raise AnalysisError(f"dense vector length {vector.size} is not a power of two")
        indices = np.nonzero(np.abs(vector) > atol)[0]
        return cls(num_qubits, {int(index): complex(vector[index]) for index in indices})

    @classmethod
    def from_rows(cls, num_qubits: int, rows: Iterable[tuple[int, float, float]]) -> "SparseState":
        """Build from relational rows ``(s, r, i)`` as returned by the SQL backends."""
        return cls(num_qubits, {int(s): complex(r, i) for s, r, i in rows})

    # ------------------------------------------------------------ properties

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return 1 << self._num_qubits

    @property
    def num_nonzero(self) -> int:
        """Number of stored (nonzero) amplitudes — the relational row count."""
        return len(self._amplitudes)

    @property
    def density(self) -> float:
        """Fraction of basis states with nonzero amplitude."""
        return self.num_nonzero / self.dimension

    def amplitude(self, index: int) -> complex:
        """Amplitude of basis state ``index`` (0 if not stored)."""
        return self._amplitudes.get(int(index), 0.0 + 0.0j)

    def items(self) -> Iterator[tuple[int, complex]]:
        """Iterate over (index, amplitude) pairs in ascending index order."""
        return iter(sorted(self._amplitudes.items()))

    def to_rows(self) -> list[tuple[int, float, float]]:
        """Relational rows ``(s, r, i)`` sorted by ``s`` (the paper's output format)."""
        return [(index, amplitude.real, amplitude.imag) for index, amplitude in sorted(self._amplitudes.items())]

    def to_dense(self) -> np.ndarray:
        """Dense complex vector of length ``2**num_qubits``."""
        vector = np.zeros(self.dimension, dtype=np.complex128)
        for index, amplitude in self._amplitudes.items():
            vector[index] = amplitude
        return vector

    # -------------------------------------------------------------- algebra

    def norm(self) -> float:
        """The 2-norm of the state."""
        return math.sqrt(sum(abs(amplitude) ** 2 for amplitude in self._amplitudes.values()))

    def normalized(self) -> "SparseState":
        """Return the state scaled to unit norm."""
        norm = self.norm()
        if norm == 0:
            raise AnalysisError("cannot normalize the zero vector")
        return SparseState(self._num_qubits, {index: amplitude / norm for index, amplitude in self._amplitudes.items()})

    def pruned(self, atol: float = DEFAULT_PRUNE_ATOL) -> "SparseState":
        """Drop amplitudes with magnitude at or below ``atol``."""
        return SparseState(
            self._num_qubits,
            {index: amplitude for index, amplitude in self._amplitudes.items() if abs(amplitude) > atol},
        )

    def probabilities(self) -> dict[int, float]:
        """Measurement probabilities of the nonzero basis states."""
        return {index: abs(amplitude) ** 2 for index, amplitude in sorted(self._amplitudes.items())}

    def probability_of(self, index: int) -> float:
        """Measurement probability of one basis state."""
        return abs(self.amplitude(index)) ** 2

    def marginal_probability(self, qubit: int, value: int = 1) -> float:
        """Probability that measuring ``qubit`` yields ``value``."""
        if not 0 <= qubit < self._num_qubits:
            raise AnalysisError(f"qubit {qubit} out of range")
        if value not in (0, 1):
            raise AnalysisError("measurement value must be 0 or 1")
        total = 0.0
        for index, amplitude in self._amplitudes.items():
            if (index >> qubit) & 1 == value:
                total += abs(amplitude) ** 2
        return total

    def bitstring_probabilities(self) -> dict[str, float]:
        """Probabilities keyed by bitstring (qubit 0 is the rightmost character)."""
        width = self._num_qubits
        return {format(index, f"0{width}b"): probability for index, probability in self.probabilities().items()}

    def estimated_bytes(self) -> int:
        """Memory footprint of the relational representation (24 bytes per row).

        One row is ``(s BIGINT, r DOUBLE, i DOUBLE)`` = 8 + 8 + 8 bytes; this
        is the quantity the capacity experiments budget against.
        """
        return 24 * self.num_nonzero

    # -------------------------------------------------------------- compare

    def equiv(self, other: "SparseState", atol: float = 1e-8, up_to_global_phase: bool = True) -> bool:
        """True if both states are equal (optionally up to a global phase)."""
        if not isinstance(other, SparseState):
            raise AnalysisError("can only compare against another SparseState")
        if self._num_qubits != other._num_qubits:
            return False
        if up_to_global_phase:
            return abs(abs(self.inner(other)) - self.norm() * other.norm()) <= atol
        keys = set(self._amplitudes) | set(other._amplitudes)
        return all(abs(self.amplitude(key) - other.amplitude(key)) <= atol for key in keys)

    def inner(self, other: "SparseState") -> complex:
        """The inner product <self|other>."""
        if self._num_qubits != other._num_qubits:
            raise AnalysisError("states have different qubit counts")
        smaller, larger = (self, other) if self.num_nonzero <= other.num_nonzero else (other, self)
        total = 0.0 + 0.0j
        for index, amplitude in smaller._amplitudes.items():
            partner = larger._amplitudes.get(index)
            if partner is not None:
                if smaller is self:
                    total += amplitude.conjugate() * partner
                else:
                    total += partner.conjugate() * amplitude
        return total

    # -------------------------------------------------------------- dunders

    def __len__(self) -> int:
        return len(self._amplitudes)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._amplitudes))

    def __contains__(self, index: int) -> bool:
        return int(index) in self._amplitudes

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{index}: {amplitude.real:+.4f}{amplitude.imag:+.4f}j"
            for index, amplitude in list(sorted(self._amplitudes.items()))[:4]
        )
        suffix = ", ..." if self.num_nonzero > 4 else ""
        return f"SparseState(qubits={self._num_qubits}, nonzero={self.num_nonzero}, {{{preview}{suffix}}})"


class SimulationResult:
    """Final state plus execution metadata for one simulation run.

    Attributes
    ----------
    state:
        The final :class:`SparseState`.
    method:
        Simulation method identifier (``"sqlite"``, ``"memdb"``,
        ``"statevector"``, ``"sparse"``, ``"mps"``, ``"dd"``).
    circuit_name / num_qubits / num_gates:
        Workload description.
    wall_time_s:
        End-to-end simulation time in seconds.
    peak_state_rows / peak_state_bytes:
        Largest intermediate representation observed (rows of the relational
        state or equivalent, and its estimated byte size).
    metadata:
        Free-form extras (SQL text, fusion statistics, backend options, ...).
    """

    __slots__ = (
        "state",
        "method",
        "circuit_name",
        "num_qubits",
        "num_gates",
        "wall_time_s",
        "peak_state_rows",
        "peak_state_bytes",
        "metadata",
    )

    def __init__(
        self,
        state: SparseState,
        method: str,
        circuit_name: str = "circuit",
        num_qubits: int | None = None,
        num_gates: int = 0,
        wall_time_s: float = 0.0,
        peak_state_rows: int = 0,
        peak_state_bytes: int = 0,
        metadata: dict | None = None,
    ) -> None:
        self.state = state
        self.method = method
        self.circuit_name = circuit_name
        self.num_qubits = num_qubits if num_qubits is not None else state.num_qubits
        self.num_gates = num_gates
        self.wall_time_s = wall_time_s
        self.peak_state_rows = peak_state_rows or state.num_nonzero
        self.peak_state_bytes = peak_state_bytes or state.estimated_bytes()
        self.metadata = dict(metadata or {})

    def probabilities(self) -> dict[int, float]:
        """Measurement probabilities of the final state."""
        return self.state.probabilities()

    def to_dict(self) -> dict:
        """JSON-friendly summary (state included as relational rows)."""
        return {
            "method": self.method,
            "circuit": self.circuit_name,
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "wall_time_s": self.wall_time_s,
            "peak_state_rows": self.peak_state_rows,
            "peak_state_bytes": self.peak_state_bytes,
            "nonzero_amplitudes": self.state.num_nonzero,
            "rows": [[s, r, i] for s, r, i in self.state.to_rows()],
            "metadata": self.metadata,
        }

    def __repr__(self) -> str:
        return (
            f"SimulationResult(method={self.method!r}, circuit={self.circuit_name!r}, "
            f"qubits={self.num_qubits}, time={self.wall_time_s:.4f}s, "
            f"nonzero={self.state.num_nonzero})"
        )
