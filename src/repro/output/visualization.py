"""Text-based visualization of states, histograms and benchmark series.

The original Qymera demo renders interactive plots in a browser; in a
library/headless reproduction the same information is rendered as plain-text
tables, ASCII bar charts and simple line plots so results remain inspectable
in a terminal, a log file or a CI run.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import AnalysisError
from .result import SparseState


def format_amplitude_table(state: SparseState, max_rows: int = 32, atol: float = 1e-12) -> str:
    """Render a state as the paper's relational output table ``(s, r, i)``.

    Rows are sorted by basis index; a probability column is added for
    readability.  Truncates to ``max_rows`` rows with an ellipsis line.
    """
    lines = [f"{'s':>8} | {'bitstring':>{max(9, state.num_qubits)}} | {'r':>12} | {'i':>12} | {'prob':>10}"]
    lines.append("-" * len(lines[0]))
    rows = [row for row in state.to_rows() if abs(complex(row[1], row[2])) > atol]
    for position, (index, real, imag) in enumerate(rows):
        if position == max_rows:
            lines.append(f"... ({len(rows) - max_rows} more rows)")
            break
        bits = format(index, f"0{state.num_qubits}b")
        probability = real * real + imag * imag
        lines.append(f"{index:>8} | {bits:>{max(9, state.num_qubits)}} | {real:>12.6f} | {imag:>12.6f} | {probability:>10.6f}")
    return "\n".join(lines)


def histogram(
    counts: Mapping[str, int] | Mapping[str, float],
    width: int = 40,
    sort_by_value: bool = False,
    max_bars: int = 32,
) -> str:
    """ASCII bar chart of measurement counts or probabilities."""
    if not counts:
        raise AnalysisError("nothing to plot: empty counts")
    items = list(counts.items())
    items.sort(key=(lambda kv: -kv[1]) if sort_by_value else (lambda kv: kv[0]))
    largest = max(value for _key, value in items)
    if largest <= 0:
        raise AnalysisError("all counts are zero")
    label_width = max(len(str(key)) for key, _value in items)
    lines = []
    for position, (key, value) in enumerate(items):
        if position == max_bars:
            lines.append(f"... ({len(items) - max_bars} more)")
            break
        bar = "#" * max(1, int(round(width * value / largest))) if value > 0 else ""
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key):>{label_width}} | {bar} {rendered}")
    return "\n".join(lines)


def probability_histogram(state: SparseState, width: int = 40, max_bars: int = 32) -> str:
    """ASCII histogram of the state's measurement probabilities."""
    probabilities = {format(index, f"0{state.num_qubits}b"): probability for index, probability in state.probabilities().items()}
    return histogram(probabilities, width=width, max_bars=max_bars)


def bloch_text(vector: tuple[float, float, float]) -> str:
    """One-line description of a Bloch vector (used by the education example)."""
    x, y, z = vector
    length = math.sqrt(x * x + y * y + z * z)
    if length < 1e-9:
        return "maximally mixed (centre of the Bloch sphere)"
    theta = math.degrees(math.acos(max(-1.0, min(1.0, z / length))))
    phi = math.degrees(math.atan2(y, x))
    return f"|r|={length:.3f}, theta={theta:.1f} deg, phi={phi:.1f} deg (x={x:+.3f}, y={y:+.3f}, z={z:+.3f})"


def comparison_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Fixed-width table for benchmark comparisons.

    ``rows`` is a list of dictionaries; ``columns`` selects and orders the
    columns (defaults to the keys of the first row).
    """
    if not rows:
        raise AnalysisError("nothing to tabulate: empty rows")
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e4 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4f}"
        return str(value)

    rendered_rows = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max((len(rendered[i]) for rendered in rendered_rows), default=0))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = [" | ".join(rendered[i].ljust(widths[i]) for i in range(len(columns))) for rendered in rendered_rows]
    return "\n".join([header, separator, *body])


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 18,
    logy: bool = False,
    title: str = "",
) -> str:
    """A crude ASCII scatter/line plot for benchmark series.

    ``series`` maps a label to a list of (x, y) points.  Each series is drawn
    with its own marker character.  Intended for quick visual inspection of
    scaling trends (e.g. runtime vs. qubit count per backend).
    """
    markers = "ox+*#@%&"
    points = [(x, y) for data in series.values() for x, y in data]
    if not points:
        raise AnalysisError("nothing to plot: no points")
    xs = [x for x, _y in points]
    ys = [max(y, 1e-12) for _x, y in points] if logy else [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    transform = (lambda v: math.log10(max(v, 1e-12))) if logy else (lambda v: v)
    y_low, y_high = min(transform(y) for y in ys), max(transform(y) for y in ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _row in range(height)]
    for label_index, (label, data) in enumerate(series.items()):
        marker = markers[label_index % len(markers)]
        for x, y in data:
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((transform(max(y, 1e-12) if logy else y) - y_low) / y_span * (height - 1)))
            grid[height - 1 - row][column] = marker
    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_low:g} .. {x_high:g}]   y{' (log10)' if logy else ''}: [{y_low:g} .. {y_high:g}]")
    legend = "   ".join(f"{markers[i % len(markers)]} = {label}" for i, label in enumerate(series))
    lines.append(" " + legend)
    return "\n".join(lines)
