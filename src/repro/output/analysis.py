"""Result analysis: fidelities, distances, entanglement and Bloch vectors.

These are the quantitative tools behind the paper's Output Layer
("detailed analysis and high-level comparisons") and the educational demo
scenario (Bloch-sphere views of single qubits as the GHZ circuit evolves).
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

from ..errors import AnalysisError
from .result import SparseState


def state_fidelity(first: SparseState, second: SparseState) -> float:
    """Fidelity ``|<a|b>|^2`` between two pure states."""
    if first.num_qubits != second.num_qubits:
        raise AnalysisError("states have different qubit counts")
    return abs(first.inner(second)) ** 2


def total_variation_distance(first: dict[int, float], second: dict[int, float]) -> float:
    """Total variation distance between two probability distributions over basis states."""
    keys = set(first) | set(second)
    return 0.5 * sum(abs(first.get(key, 0.0) - second.get(key, 0.0)) for key in keys)


def shannon_entropy(probabilities: dict[int, float]) -> float:
    """Shannon entropy (bits) of a measurement distribution."""
    entropy = 0.0
    for probability in probabilities.values():
        if probability > 0:
            entropy -= probability * math.log2(probability)
    return entropy


def reduced_density_matrix(state: SparseState, qubits: Sequence[int]) -> np.ndarray:
    """Reduced density matrix of ``qubits`` after tracing out the rest."""
    for qubit in qubits:
        if not 0 <= qubit < state.num_qubits:
            raise AnalysisError(f"qubit {qubit} out of range")
    if len(set(qubits)) != len(qubits):
        raise AnalysisError("duplicate qubit in reduced_density_matrix")
    kept = list(qubits)
    dim_kept = 1 << len(kept)
    rho = np.zeros((dim_kept, dim_kept), dtype=np.complex128)

    def split(index: int) -> tuple[int, int]:
        kept_part = 0
        rest_part = 0
        rest_position = 0
        for qubit in range(state.num_qubits):
            bit = (index >> qubit) & 1
            if qubit in kept:
                kept_part |= bit << kept.index(qubit)
            else:
                rest_part |= bit << rest_position
                rest_position += 1
        return kept_part, rest_part

    # Group amplitudes by the traced-out part; each group contributes an outer product.
    groups: dict[int, dict[int, complex]] = {}
    for index, amplitude in state.items():
        kept_part, rest_part = split(index)
        groups.setdefault(rest_part, {})[kept_part] = amplitude
    for group in groups.values():
        for row, amp_row in group.items():
            for col, amp_col in group.items():
                rho[row, col] += amp_row * amp_col.conjugate()
    return rho


def purity(rho: np.ndarray) -> float:
    """Purity ``Tr(rho^2)`` of a density matrix."""
    return float(np.real(np.trace(rho @ rho)))


def entanglement_entropy(state: SparseState, qubits: Sequence[int]) -> float:
    """Von Neumann entropy (bits) of the reduced state of ``qubits``.

    Nonzero entropy certifies entanglement across the cut — the quantity the
    educational scenario uses to show that the GHZ state is entangled while
    the uniform superposition is not.
    """
    rho = reduced_density_matrix(state, qubits)
    eigenvalues = np.linalg.eigvalsh(rho)
    entropy = 0.0
    for value in eigenvalues:
        if value > 1e-12:
            entropy -= float(value) * math.log2(float(value))
    return entropy


def bloch_vector(state: SparseState, qubit: int) -> tuple[float, float, float]:
    """Bloch-sphere coordinates ``(x, y, z)`` of one qubit's reduced state."""
    rho = reduced_density_matrix(state, [qubit])
    x = float(np.real(rho[0, 1] + rho[1, 0]))
    y = float(np.imag(rho[1, 0] - rho[0, 1]))
    z = float(np.real(rho[0, 0] - rho[1, 1]))
    return (x, y, z)


def global_phase_between(first: SparseState, second: SparseState) -> float:
    """The relative global phase (radians) best aligning ``second`` to ``first``.

    Raises if the states are not equal up to a global phase.
    """
    if not first.equiv(second, up_to_global_phase=True):
        raise AnalysisError("states differ by more than a global phase")
    overlap = first.inner(second)
    if abs(overlap) < 1e-12:
        raise AnalysisError("states are orthogonal; no global phase defined")
    return float(cmath.phase(overlap))


def states_agree(
    first: SparseState,
    second: SparseState,
    atol: float = 1e-8,
    up_to_global_phase: bool = True,
) -> bool:
    """Convenience wrapper used by the cross-backend verification tests."""
    return first.equiv(second, atol=atol, up_to_global_phase=up_to_global_phase)
