"""Measurement sampling from simulated states.

The paper's Output Layer reports "measurement probabilities" and the demo
scenarios let attendees "explore measurement outcomes"; this module turns a
final :class:`~repro.output.result.SparseState` into shot counts, marginal
distributions and post-measurement collapsed states.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Sequence

from ..errors import AnalysisError
from .result import SparseState


def sample_counts(state: SparseState, shots: int, seed: int | None = None) -> dict[str, int]:
    """Sample ``shots`` full-register measurements; returns bitstring -> count.

    Bitstrings follow the convention used throughout the package: qubit 0 is
    the rightmost character.
    """
    if shots < 0:
        raise AnalysisError("shot count must be non-negative")
    probabilities = state.probabilities()
    if not probabilities:
        raise AnalysisError("cannot sample from an empty (all-zero) state")
    total = sum(probabilities.values())
    if total <= 0:
        raise AnalysisError("state has zero total probability")
    rng = random.Random(seed)
    indices = list(probabilities)
    weights = [probabilities[index] / total for index in indices]
    width = state.num_qubits
    counts: Counter[str] = Counter()
    for index in rng.choices(indices, weights=weights, k=shots):
        counts[format(index, f"0{width}b")] += 1
    return dict(counts)


def sample_indices(state: SparseState, shots: int, seed: int | None = None) -> list[int]:
    """Sample basis-state indices instead of bitstrings."""
    if shots < 0:
        raise AnalysisError("shot count must be non-negative")
    probabilities = state.probabilities()
    if not probabilities:
        raise AnalysisError("cannot sample from an empty (all-zero) state")
    total = sum(probabilities.values())
    if total <= 0:
        raise AnalysisError("state has zero total probability")
    rng = random.Random(seed)
    indices = list(probabilities)
    weights = [probabilities[index] / total for index in indices]
    return rng.choices(indices, weights=weights, k=shots)


def marginal_counts(counts: dict[str, int], qubits: Sequence[int]) -> dict[str, int]:
    """Marginalize shot counts onto a subset of qubits (result keeps the given order)."""
    result: Counter[str] = Counter()
    for bitstring, count in counts.items():
        width = len(bitstring)
        selected = "".join(bitstring[width - 1 - qubit] for qubit in reversed(qubits))
        result[selected] += count
    return dict(result)


def expectation_of_parity(state: SparseState, qubits: Sequence[int] | None = None) -> float:
    """Expectation value of the parity operator ``Z ⊗ ... ⊗ Z`` on ``qubits``."""
    if qubits is None:
        qubits = range(state.num_qubits)
    mask = 0
    for qubit in qubits:
        if not 0 <= qubit < state.num_qubits:
            raise AnalysisError(f"qubit {qubit} out of range")
        mask |= 1 << qubit
    expectation = 0.0
    for index, probability in state.probabilities().items():
        parity = bin(index & mask).count("1") % 2
        expectation += probability if parity == 0 else -probability
    return expectation


def collapse(state: SparseState, qubit: int, outcome: int) -> tuple[float, SparseState]:
    """Project onto ``qubit == outcome`` and renormalize.

    Returns ``(probability_of_outcome, post_measurement_state)``.  Raises if
    the outcome has zero probability.
    """
    if outcome not in (0, 1):
        raise AnalysisError("measurement outcome must be 0 or 1")
    probability = state.marginal_probability(qubit, outcome)
    if probability <= 0:
        raise AnalysisError(f"outcome {outcome} on qubit {qubit} has zero probability")
    surviving = {
        index: amplitude
        for index, amplitude in state.items()
        if ((index >> qubit) & 1) == outcome
    }
    collapsed = SparseState(state.num_qubits, surviving).normalized()
    return probability, collapsed


def measure_sequentially(state: SparseState, qubits: Sequence[int], seed: int | None = None) -> tuple[str, SparseState]:
    """Simulate a projective measurement of ``qubits`` one at a time.

    Returns the observed bitstring (first measured qubit is the rightmost
    character) and the collapsed post-measurement state.
    """
    rng = random.Random(seed)
    outcomes: list[int] = []
    current = state
    for qubit in qubits:
        probability_one = current.marginal_probability(qubit, 1)
        outcome = 1 if rng.random() < probability_one else 0
        outcomes.append(outcome)
        _probability, current = collapse(current, qubit, outcome)
    bitstring = "".join(str(bit) for bit in reversed(outcomes))
    return bitstring, current
