"""Output layer: result containers, sampling, analysis, visualization, export."""

from .analysis import (
    bloch_vector,
    entanglement_entropy,
    global_phase_between,
    purity,
    reduced_density_matrix,
    shannon_entropy,
    state_fidelity,
    states_agree,
    total_variation_distance,
)
from .export import (
    read_state_csv,
    result_to_json,
    state_from_json,
    state_to_json,
    write_records_csv,
    write_records_json,
    write_state_csv,
)
from .result import DEFAULT_PRUNE_ATOL, SimulationResult, SparseState
from .sampling import (
    collapse,
    expectation_of_parity,
    marginal_counts,
    measure_sequentially,
    sample_counts,
    sample_indices,
)
from .visualization import (
    bloch_text,
    comparison_table,
    format_amplitude_table,
    histogram,
    line_plot,
    probability_histogram,
)

__all__ = [
    "bloch_vector",
    "entanglement_entropy",
    "global_phase_between",
    "purity",
    "reduced_density_matrix",
    "shannon_entropy",
    "state_fidelity",
    "states_agree",
    "total_variation_distance",
    "read_state_csv",
    "result_to_json",
    "state_from_json",
    "state_to_json",
    "write_records_csv",
    "write_records_json",
    "write_state_csv",
    "DEFAULT_PRUNE_ATOL",
    "SimulationResult",
    "SparseState",
    "collapse",
    "expectation_of_parity",
    "marginal_counts",
    "measure_sequentially",
    "sample_counts",
    "sample_indices",
    "bloch_text",
    "comparison_table",
    "format_amplitude_table",
    "histogram",
    "line_plot",
    "probability_histogram",
]
