"""The four Bell states, the smallest entangled circuits.

Used in unit tests, the quickstart example, and the educational demo
scenario as a two-qubit warm-up before the GHZ walk-through.
"""

from __future__ import annotations

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError

#: Valid Bell-state labels, following the usual Phi/Psi +/- convention.
BELL_LABELS = ("phi+", "phi-", "psi+", "psi-")


def bell_circuit(label: str = "phi+") -> QuantumCircuit:
    """Prepare one of the four Bell states on two qubits.

    ``phi+`` = (|00> + |11>)/sqrt(2), ``phi-`` = (|00> - |11>)/sqrt(2),
    ``psi+`` = (|01> + |10>)/sqrt(2), ``psi-`` = (|01> - |10>)/sqrt(2).
    """
    label = label.lower()
    if label not in BELL_LABELS:
        raise CircuitError(f"unknown Bell state {label!r}; expected one of {BELL_LABELS}")
    circuit = QuantumCircuit(2, name=f"bell_{label.replace('+', 'plus').replace('-', 'minus')}")
    if label.startswith("psi"):
        circuit.x(1)
    circuit.h(0)
    circuit.cx(0, 1)
    if label.endswith("-"):
        circuit.z(0)
    return circuit


def bell_expected_amplitudes(label: str = "phi+") -> dict[int, complex]:
    """Exact nonzero amplitudes of the requested Bell state (basis index -> amplitude)."""
    amplitude = 2 ** -0.5
    label = label.lower()
    if label == "phi+":
        return {0b00: complex(amplitude), 0b11: complex(amplitude)}
    if label == "phi-":
        return {0b00: complex(amplitude), 0b11: complex(-amplitude)}
    if label == "psi+":
        return {0b01: complex(amplitude), 0b10: complex(amplitude)}
    if label == "psi-":
        # The circuit produces (|10> - |01>)/sqrt(2) up to global sign; we pin
        # the convention produced by bell_circuit: |01> gets the minus sign.
        return {0b01: complex(-amplitude), 0b10: complex(amplitude)}
    raise CircuitError(f"unknown Bell state {label!r}; expected one of {BELL_LABELS}")
