"""Standard circuit families used by the demos, tests and benchmarks."""

from .ansatz import ansatz_parameter_count, bound_ansatz, hardware_efficient_ansatz
from .bell import BELL_LABELS, bell_circuit, bell_expected_amplitudes
from .ghz import ghz_circuit, ghz_expected_amplitudes, ghz_with_measurement
from .grover import (
    diffusion_operator,
    grover_circuit,
    grover_success_probability,
    optimal_grover_iterations,
    phase_oracle,
)
from .oracles import (
    bernstein_vazirani_circuit,
    bernstein_vazirani_expected_index,
    deutsch_jozsa_circuit,
    deutsch_jozsa_is_constant,
)
from .parity import (
    expected_parity,
    parity_check_circuit,
    parity_expected_basis_state,
    superposed_parity_circuit,
)
from .qaoa import (
    complete_graph,
    maxcut_cut_value,
    maxcut_expected_value,
    qaoa_maxcut_circuit,
    ring_graph,
)
from .phase_estimation import (
    expected_phase_index,
    phase_estimation_circuit,
    phase_estimation_success_probability,
)
from .qft import qft_circuit, qft_expected_amplitudes, qft_on_basis_state
from .random_circuits import random_circuit, random_dense_circuit, random_sparse_circuit
from .superposition import (
    dense_phase_circuit,
    superposition_circuit,
    superposition_expected_amplitudes,
)
from .wstate import w_state_circuit, w_state_expected_amplitudes

__all__ = [
    "ansatz_parameter_count",
    "bound_ansatz",
    "hardware_efficient_ansatz",
    "BELL_LABELS",
    "bell_circuit",
    "bell_expected_amplitudes",
    "ghz_circuit",
    "ghz_expected_amplitudes",
    "ghz_with_measurement",
    "diffusion_operator",
    "grover_circuit",
    "grover_success_probability",
    "optimal_grover_iterations",
    "phase_oracle",
    "bernstein_vazirani_circuit",
    "bernstein_vazirani_expected_index",
    "deutsch_jozsa_circuit",
    "deutsch_jozsa_is_constant",
    "expected_phase_index",
    "phase_estimation_circuit",
    "phase_estimation_success_probability",
    "expected_parity",
    "parity_check_circuit",
    "parity_expected_basis_state",
    "superposed_parity_circuit",
    "complete_graph",
    "maxcut_cut_value",
    "maxcut_expected_value",
    "qaoa_maxcut_circuit",
    "ring_graph",
    "qft_circuit",
    "qft_expected_amplitudes",
    "qft_on_basis_state",
    "random_circuit",
    "random_dense_circuit",
    "random_sparse_circuit",
    "dense_phase_circuit",
    "superposition_circuit",
    "superposition_expected_amplitudes",
    "w_state_circuit",
    "w_state_expected_amplitudes",
]
