"""Quantum phase estimation circuits.

QPE combines the two structural extremes already present in the benchmark
suite — a counting register driven dense by Hadamards and controlled phase
rotations, followed by an inverse QFT — which makes it a natural "hard but
structured" workload for the SQL pipeline and a classic educational example.

The implementation estimates the eigenphase of a single-qubit phase gate
``P(2*pi*phi)`` applied to its ``|1>`` eigenstate, so the exact answer is
known analytically and every backend can be checked against it.
"""

from __future__ import annotations

import math

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError
from .qft import qft_circuit


def phase_estimation_circuit(num_counting: int, phase: float, measure: bool = False) -> QuantumCircuit:
    """Estimate ``phase`` (in turns, i.e. [0, 1)) with ``num_counting`` counting qubits.

    Qubits 0..num_counting-1 form the counting register (qubit 0 is the least
    significant bit of the estimate); the last qubit holds the ``|1>``
    eigenstate of the unitary ``P(2*pi*phase)``.
    """
    if num_counting < 1:
        raise CircuitError("phase estimation needs at least one counting qubit")
    if not 0.0 <= phase < 1.0:
        raise CircuitError("phase must lie in [0, 1) (it is measured in turns)")

    eigen = num_counting
    circuit = QuantumCircuit(num_counting + 1, name=f"qpe_{num_counting}_{phase:g}")
    circuit.x(eigen)  # prepare the |1> eigenstate
    for qubit in range(num_counting):
        circuit.h(qubit)
    # Controlled-U^(2^k): U = P(2*pi*phase) is diagonal, so powers just scale the angle.
    for qubit in range(num_counting):
        angle = 2 * math.pi * phase * (1 << qubit)
        circuit.cp(angle, qubit, eigen)
    # Inverse QFT on the counting register; counting qubit k then holds bit k
    # of the phase estimate.
    inverse_qft = qft_circuit(num_counting, do_swaps=True, inverse=True)
    circuit = circuit.compose(inverse_qft, qubits=list(range(num_counting)))
    circuit.name = f"qpe_{num_counting}_{phase:g}"
    if measure:
        for qubit in range(num_counting):
            circuit.measure(qubit, qubit)
    return circuit


def expected_phase_index(num_counting: int, phase: float) -> int:
    """The counting-register index QPE peaks at: ``round(phase * 2**m) mod 2**m``."""
    if num_counting < 1:
        raise CircuitError("phase estimation needs at least one counting qubit")
    return int(round(phase * (1 << num_counting))) % (1 << num_counting)


def phase_estimation_success_probability(num_counting: int, phase: float) -> float:
    """Probability of measuring the nearest grid point (1.0 when the phase is exact)."""
    scaled = phase * (1 << num_counting)
    nearest = round(scaled)
    delta = scaled - nearest
    if abs(delta) < 1e-12:
        return 1.0
    m = 1 << num_counting
    return (math.sin(math.pi * delta) / (m * math.sin(math.pi * delta / m))) ** 2
