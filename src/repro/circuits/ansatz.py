"""Hardware-efficient variational ansatz circuits.

These layered RY/RZ + entangler circuits are the other standard
parameterized family (VQE-style).  They are useful both for parameter-space
sweeps and as tunable-density workloads: with small angles the state stays
concentrated, with generic angles it becomes dense quickly.
"""

from __future__ import annotations

from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..core.parameters import Parameter, ParameterValue
from ..errors import CircuitError

#: Supported entanglement layouts.
ENTANGLEMENT_PATTERNS = ("linear", "circular", "full")


def _entangler_pairs(num_qubits: int, pattern: str) -> list[tuple[int, int]]:
    if pattern == "linear":
        return [(qubit, qubit + 1) for qubit in range(num_qubits - 1)]
    if pattern == "circular":
        pairs = [(qubit, qubit + 1) for qubit in range(num_qubits - 1)]
        if num_qubits > 2:
            pairs.append((num_qubits - 1, 0))
        return pairs
    if pattern == "full":
        return [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    raise CircuitError(f"unknown entanglement pattern {pattern!r}; expected one of {ENTANGLEMENT_PATTERNS}")


def hardware_efficient_ansatz(
    num_qubits: int,
    reps: int = 1,
    entanglement: str = "linear",
    parameter_prefix: str = "theta",
    rotation_gates: Sequence[str] = ("ry", "rz"),
) -> QuantumCircuit:
    """Layered rotation + CX-entangler ansatz.

    Each repetition applies the chosen single-qubit rotation gates to every
    qubit (one fresh parameter per gate) followed by a CX entangling layer;
    a final rotation layer closes the circuit.  The total parameter count is
    ``num_qubits * len(rotation_gates) * (reps + 1)``.
    """
    if num_qubits < 1:
        raise CircuitError("ansatz needs at least one qubit")
    if reps < 0:
        raise CircuitError("ansatz repetitions must be non-negative")
    for gate_name in rotation_gates:
        if gate_name not in ("rx", "ry", "rz", "p"):
            raise CircuitError(f"unsupported rotation gate {gate_name!r}")

    circuit = QuantumCircuit(num_qubits, name=f"ansatz_{num_qubits}_r{reps}_{entanglement}")
    pairs = _entangler_pairs(num_qubits, entanglement) if num_qubits > 1 else []
    counter = 0

    def rotation_layer() -> None:
        nonlocal counter
        for qubit in range(num_qubits):
            for gate_name in rotation_gates:
                parameter = Parameter(f"{parameter_prefix}[{counter}]")
                getattr(circuit, gate_name)(parameter, qubit)
                counter += 1

    rotation_layer()
    for _rep in range(reps):
        for control, target in pairs:
            circuit.cx(control, target)
        rotation_layer()
    return circuit


def bound_ansatz(
    num_qubits: int,
    values: Sequence[float],
    reps: int = 1,
    entanglement: str = "linear",
    rotation_gates: Sequence[str] = ("ry", "rz"),
) -> QuantumCircuit:
    """A hardware-efficient ansatz with all parameters bound to ``values``."""
    ansatz = hardware_efficient_ansatz(
        num_qubits, reps=reps, entanglement=entanglement, rotation_gates=rotation_gates
    )
    parameters = sorted(ansatz.parameters, key=lambda parameter: int(parameter.name.split("[")[1][:-1]))
    if len(values) != len(parameters):
        raise CircuitError(f"ansatz has {len(parameters)} parameters, got {len(values)} values")
    return ansatz.bind_parameters({parameter: float(value) for parameter, value in zip(parameters, values)})


def ansatz_parameter_count(num_qubits: int, reps: int = 1, rotation_gates: Sequence[str] = ("ry", "rz")) -> int:
    """Number of free parameters of :func:`hardware_efficient_ansatz`."""
    return num_qubits * len(rotation_gates) * (reps + 1)
