"""Equal-superposition circuits: the canonical *dense* workload.

A Hadamard on every qubit produces the uniform superposition over all
``2**n`` basis states.  The paper's second demo scenario benchmarks this
circuit because it is the worst case for the relational representation: the
state table holds ``2**n`` rows, so the RDBMS loses its sparsity advantage
and the dense state-vector simulator is expected to win (the "14% worse on
dense circuits" observation in the introduction).
"""

from __future__ import annotations

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError


def superposition_circuit(num_qubits: int, layers: int = 1) -> QuantumCircuit:
    """``layers`` rounds of Hadamards on every qubit.

    With an odd number of layers the result is the uniform superposition;
    with an even number it returns to |0...0> (useful for checking that the
    relational state collapses back to a single row).
    """
    if num_qubits < 1:
        raise CircuitError("superposition circuit needs at least one qubit")
    if layers < 1:
        raise CircuitError("superposition circuit needs at least one layer")
    circuit = QuantumCircuit(num_qubits, name=f"superposition_{num_qubits}x{layers}")
    for _layer in range(layers):
        for qubit in range(num_qubits):
            circuit.h(qubit)
    return circuit


def dense_phase_circuit(num_qubits: int, rounds: int = 2) -> QuantumCircuit:
    """A dense circuit with entangling structure.

    Each round applies Hadamards, a ring of CZ gates and a layer of T gates.
    The state stays fully dense (all ``2**n`` amplitudes nonzero) while also
    exercising two-qubit joins, making it a harder dense benchmark than plain
    Hadamard layers.
    """
    if num_qubits < 2:
        raise CircuitError("dense phase circuit needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"dense_phase_{num_qubits}x{rounds}")
    for _round in range(rounds):
        for qubit in range(num_qubits):
            circuit.h(qubit)
        for qubit in range(num_qubits):
            circuit.cz(qubit, (qubit + 1) % num_qubits)
        for qubit in range(num_qubits):
            circuit.t(qubit)
    return circuit


def superposition_expected_amplitudes(num_qubits: int) -> dict[int, complex]:
    """Exact amplitudes of the uniform superposition (all equal to 2^{-n/2})."""
    amplitude = complex(2 ** (-num_qubits / 2.0))
    return {index: amplitude for index in range(1 << num_qubits)}
