"""GHZ state preparation circuits.

The GHZ state ``(|0...0> + |1...1>)/sqrt(2)`` is the paper's running example
(Fig. 2) and the workload of its "Simulation Method Benchmarking" and
"Educational Exploration" demo scenarios.  It is the canonical *sparse*
circuit: after the initial Hadamard the state never has more than two nonzero
amplitudes, which is exactly the regime where the relational representation
(and therefore the RDBMS backends) wins by orders of magnitude over a dense
state vector.
"""

from __future__ import annotations

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError


def ghz_circuit(num_qubits: int, ladder: bool = True) -> QuantumCircuit:
    """GHZ preparation: ``H`` on qubit 0 followed by a chain of CX gates.

    Parameters
    ----------
    num_qubits:
        Number of qubits (>= 1).
    ladder:
        If True (default, and what Fig. 2 shows) each CX targets the next
        qubit with the previous qubit as control (``cx(0,1), cx(1,2), ...``).
        If False, all CX gates are controlled by qubit 0 (a "star" layout);
        the final state is identical but the circuit depth differs, which is
        useful for fusion and scheduling experiments.
    """
    if num_qubits < 1:
        raise CircuitError("GHZ circuit needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for target in range(1, num_qubits):
        control = target - 1 if ladder else 0
        circuit.cx(control, target)
    return circuit


def ghz_with_measurement(num_qubits: int, ladder: bool = True) -> QuantumCircuit:
    """GHZ preparation followed by measurement of every qubit."""
    circuit = ghz_circuit(num_qubits, ladder=ladder)
    circuit.measure_all()
    return circuit


def ghz_expected_amplitudes(num_qubits: int) -> dict[int, complex]:
    """The exact nonzero amplitudes of the GHZ state, keyed by basis index."""
    if num_qubits < 1:
        raise CircuitError("GHZ state needs at least one qubit")
    amplitude = 2 ** -0.5
    return {0: complex(amplitude), (1 << num_qubits) - 1: complex(amplitude)}
