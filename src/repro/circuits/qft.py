"""Quantum Fourier transform circuits.

The QFT is the standard dense, structured benchmark circuit: it uses
Hadamards plus many controlled-phase gates, produces fully dense states from
computational-basis inputs, and its controlled-phase ladder is a natural
stress test for the two-qubit join path of the SQL translation.
"""

from __future__ import annotations

import math

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError


def qft_circuit(num_qubits: int, do_swaps: bool = True, inverse: bool = False) -> QuantumCircuit:
    """The quantum Fourier transform on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Width of the transform.
    do_swaps:
        Append the final qubit-reversal SWAP network (default True).
    inverse:
        Build the inverse QFT instead.
    """
    if num_qubits < 1:
        raise CircuitError("QFT needs at least one qubit")
    name = f"{'iqft' if inverse else 'qft'}_{num_qubits}"
    circuit = QuantumCircuit(num_qubits, name=name)
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for distance, control in enumerate(reversed(range(target)), start=1):
            angle = math.pi / (2 ** distance)
            circuit.cp(angle, control, target)
    if do_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    if inverse:
        circuit = circuit.inverse()
        circuit.name = name
    return circuit


def qft_on_basis_state(num_qubits: int, basis_index: int, do_swaps: bool = True) -> QuantumCircuit:
    """Prepare ``|basis_index>`` with X gates and apply the QFT to it.

    The exact output amplitudes are known analytically (see
    :func:`qft_expected_amplitudes`), which makes this family a convenient
    correctness check for every backend.
    """
    if not 0 <= basis_index < (1 << num_qubits):
        raise CircuitError(f"basis index {basis_index} out of range for {num_qubits} qubits")
    circuit = QuantumCircuit(num_qubits, name=f"qft_basis_{num_qubits}_{basis_index}")
    for qubit in range(num_qubits):
        if (basis_index >> qubit) & 1:
            circuit.x(qubit)
    return circuit.compose(qft_circuit(num_qubits, do_swaps=do_swaps))


def qft_expected_amplitudes(num_qubits: int, basis_index: int) -> dict[int, complex]:
    """Analytic QFT output for a basis-state input: ``2^{-n/2} e^{2 pi i j k / 2^n}``."""
    dimension = 1 << num_qubits
    if not 0 <= basis_index < dimension:
        raise CircuitError(f"basis index {basis_index} out of range for {num_qubits} qubits")
    norm = dimension ** -0.5
    return {
        k: norm * complex(math.cos(2 * math.pi * basis_index * k / dimension),
                          math.sin(2 * math.pi * basis_index * k / dimension))
        for k in range(dimension)
    }
