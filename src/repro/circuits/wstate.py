"""W-state preparation circuits.

The W state ``(|100..0> + |010..0> + ... + |000..1>)/sqrt(n)`` has exactly
``n`` nonzero amplitudes — linear rather than constant (GHZ) or exponential
(uniform superposition) — so it fills in the middle of the sparsity spectrum
swept by the capacity benchmarks.
"""

from __future__ import annotations

import math

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError


def w_state_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare the n-qubit W state with the standard RY + CX cascade.

    The construction rotates the amplitude of the remaining |0...0> branch
    onto each successive qubit: qubit 0 receives amplitude ``1/sqrt(n)``,
    then conditioned on all previous qubits being zero the next qubit
    receives ``1/sqrt(n-1)`` of the remainder, and so on.
    """
    if num_qubits < 1:
        raise CircuitError("W state needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"w_{num_qubits}")
    if num_qubits == 1:
        circuit.x(0)
        return circuit

    # Start with the excitation on qubit 0, then distribute it to the rest.
    circuit.x(0)
    for stage in range(1, num_qubits):
        remaining = num_qubits - stage + 1
        # Rotate a 1/remaining share of the excitation from qubit stage-1 to qubit stage.
        theta = 2 * math.acos(math.sqrt(1.0 / remaining))
        circuit.cry(theta, stage - 1, stage)
        circuit.cx(stage, stage - 1)
    return circuit


def w_state_expected_amplitudes(num_qubits: int) -> dict[int, complex]:
    """Exact nonzero amplitudes of the W state (one-hot basis states, equal weight)."""
    if num_qubits < 1:
        raise CircuitError("W state needs at least one qubit")
    amplitude = complex(num_qubits ** -0.5)
    return {1 << qubit: amplitude for qubit in range(num_qubits)}
