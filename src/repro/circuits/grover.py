"""Grover search circuits.

Grover's algorithm alternates a phase oracle marking the searched bitstring
with the diffusion operator.  Density oscillates between sparse and dense
across iterations, which makes it a useful mid-ground workload between GHZ
(sparse) and uniform superposition (dense), and it is one of the "quantum
algorithm design and testing" workloads the paper's first demo scenario is
aimed at.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError
from ..core.gates import unitary_gate
import numpy as np


def _marked_index(marked: Sequence[int] | str | int, num_qubits: int) -> int:
    if isinstance(marked, int):
        index = marked
    elif isinstance(marked, str):
        if len(marked) != num_qubits:
            raise CircuitError(f"marked bitstring {marked!r} must have length {num_qubits}")
        # Convention: character k of the string is qubit k (little-endian).
        index = sum((1 << k) for k, ch in enumerate(marked) if ch == "1")
    else:
        bits = list(marked)
        if len(bits) != num_qubits:
            raise CircuitError(f"marked bit list must have length {num_qubits}")
        index = sum((1 << k) for k, bit in enumerate(bits) if int(bit))
    if not 0 <= index < (1 << num_qubits):
        raise CircuitError(f"marked index {index} out of range for {num_qubits} qubits")
    return index


def phase_oracle(num_qubits: int, marked_index: int) -> QuantumCircuit:
    """A phase oracle flipping the sign of exactly one basis state.

    Built from X conjugation around a multi-controlled Z, synthesised as an
    explicit diagonal unitary for widths above three qubits (keeps the gate
    count small and the matrix exact).
    """
    circuit = QuantumCircuit(num_qubits, name=f"oracle_{marked_index}")
    if num_qubits == 1:
        if marked_index == 0:
            circuit.x(0)
            circuit.z(0)
            circuit.x(0)
        else:
            circuit.z(0)
        return circuit
    # Map the marked state onto |1...1>, apply CZ/CCZ/diagonal, map back.
    flips = [q for q in range(num_qubits) if not (marked_index >> q) & 1]
    for qubit in flips:
        circuit.x(qubit)
    if num_qubits == 2:
        circuit.cz(0, 1)
    elif num_qubits == 3:
        circuit.ccz(0, 1, 2)
    else:
        diagonal = np.ones(1 << num_qubits, dtype=np.complex128)
        diagonal[-1] = -1.0
        circuit.append(unitary_gate(np.diag(diagonal), name=f"mcz_{num_qubits}"), list(range(num_qubits)))
    for qubit in flips:
        circuit.x(qubit)
    return circuit


def diffusion_operator(num_qubits: int) -> QuantumCircuit:
    """The Grover diffusion operator ``2|s><s| - I`` (inversion about the mean)."""
    circuit = QuantumCircuit(num_qubits, name=f"diffusion_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    oracle_zero = phase_oracle(num_qubits, 0)
    circuit = circuit.compose(oracle_zero)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    circuit.name = f"diffusion_{num_qubits}"
    return circuit


def optimal_grover_iterations(num_qubits: int, num_marked: int = 1) -> int:
    """The iteration count maximizing the success probability."""
    dimension = 1 << num_qubits
    angle = math.asin(math.sqrt(num_marked / dimension))
    return max(1, int(round(math.pi / (4 * angle) - 0.5)))


def grover_circuit(
    num_qubits: int,
    marked: Sequence[int] | str | int,
    iterations: int | None = None,
    measure: bool = False,
) -> QuantumCircuit:
    """Full Grover search for a single marked bitstring.

    Parameters
    ----------
    num_qubits:
        Search-space width.
    marked:
        The marked item: an integer index, a bitstring (character ``k`` is
        qubit ``k``), or a bit list.
    iterations:
        Number of Grover iterations; defaults to the optimal count.
    measure:
        Append measurement of every qubit.
    """
    if num_qubits < 1:
        raise CircuitError("Grover search needs at least one qubit")
    index = _marked_index(marked, num_qubits)
    rounds = optimal_grover_iterations(num_qubits) if iterations is None else int(iterations)
    if rounds < 0:
        raise CircuitError("iteration count must be non-negative")
    circuit = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}_{index}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    oracle = phase_oracle(num_qubits, index)
    diffusion = diffusion_operator(num_qubits)
    for _round in range(rounds):
        circuit = circuit.compose(oracle)
        circuit = circuit.compose(diffusion)
    circuit.name = f"grover_{num_qubits}_{index}"
    if measure:
        circuit.measure_all()
    return circuit


def grover_success_probability(num_qubits: int, iterations: int) -> float:
    """Analytic success probability after ``iterations`` rounds (single marked item)."""
    dimension = 1 << num_qubits
    angle = math.asin(math.sqrt(1.0 / dimension))
    return math.sin((2 * iterations + 1) * angle) ** 2
