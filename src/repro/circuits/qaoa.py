"""QAOA (Quantum Approximate Optimization Algorithm) circuit families.

QAOA for MaxCut is the canonical *parameterized circuit family*: a problem
graph fixes the ZZ cost layer, and each depth-``p`` instance carries ``2p``
free angles ``(gamma_1, beta_1, ..., gamma_p, beta_p)``.  The paper's
Simulation Layer automates sweeps over such parameter spaces (Sec. 3.3);
the benchmark ``bench_parameter_sweep`` uses this family.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.circuit import QuantumCircuit
from ..core.parameters import Parameter, ParameterValue
from ..errors import CircuitError

Edge = tuple[int, int]


def ring_graph(num_nodes: int) -> list[Edge]:
    """Edges of a ring (cycle) graph on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise CircuitError("a ring graph needs at least two nodes")
    return [(node, (node + 1) % num_nodes) for node in range(num_nodes)]


def complete_graph(num_nodes: int) -> list[Edge]:
    """Edges of the complete graph on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise CircuitError("a complete graph needs at least two nodes")
    return [(a, b) for a in range(num_nodes) for b in range(a + 1, num_nodes)]


def _validate_edges(num_qubits: int, edges: Iterable[Edge]) -> list[Edge]:
    result = []
    for edge in edges:
        a, b = int(edge[0]), int(edge[1])
        if a == b:
            raise CircuitError(f"self-loop edge ({a}, {b}) is not allowed")
        if not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise CircuitError(f"edge ({a}, {b}) out of range for {num_qubits} qubits")
        result.append((a, b))
    if not result:
        raise CircuitError("QAOA needs at least one edge")
    return result


def qaoa_maxcut_circuit(
    num_qubits: int,
    edges: Sequence[Edge] | None = None,
    p: int = 1,
    gammas: Sequence[ParameterValue] | None = None,
    betas: Sequence[ParameterValue] | None = None,
) -> QuantumCircuit:
    """Depth-``p`` QAOA circuit for MaxCut on the given graph.

    When ``gammas``/``betas`` are omitted, symbolic parameters
    ``gamma[i]`` / ``beta[i]`` are created so the circuit stays a
    parameterized family that can be bound later or swept.
    """
    if p < 1:
        raise CircuitError("QAOA depth p must be at least 1")
    edges = _validate_edges(num_qubits, edges if edges is not None else ring_graph(num_qubits))
    if gammas is None:
        gammas = [Parameter(f"gamma[{layer}]") for layer in range(p)]
    if betas is None:
        betas = [Parameter(f"beta[{layer}]") for layer in range(p)]
    if len(gammas) != p or len(betas) != p:
        raise CircuitError(f"need exactly {p} gamma and beta values")

    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}_p{p}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(p):
        gamma = gammas[layer]
        beta = betas[layer]
        for a, b in edges:
            # Cost layer: e^{-i gamma Z_a Z_b} implemented directly as RZZ.
            circuit.rzz(2 * gamma if hasattr(gamma, "parameters") else 2 * float(gamma), a, b)
        for qubit in range(num_qubits):
            circuit.rx(2 * beta if hasattr(beta, "parameters") else 2 * float(beta), qubit)
    return circuit


def maxcut_cut_value(edges: Sequence[Edge], assignment: int) -> int:
    """Classical cut value of a bitstring ``assignment`` (bit k = side of node k)."""
    value = 0
    for a, b in edges:
        if ((assignment >> a) & 1) != ((assignment >> b) & 1):
            value += 1
    return value


def maxcut_expected_value(edges: Sequence[Edge], probabilities: dict[int, float]) -> float:
    """Expected cut value of a measurement distribution over bitstrings."""
    return sum(probability * maxcut_cut_value(edges, bitstring) for bitstring, probability in probabilities.items())
