"""Random circuit generators with controllable sparsity.

The benchmarking framework needs workloads whose relational-state density can
be dialled from "a handful of rows" to "all 2^n rows".  Three generators are
provided:

* :func:`random_circuit` — generic random circuits over the standard gate set
  (used by correctness property tests: every backend must agree with the
  dense state-vector reference).
* :func:`random_sparse_circuit` — only permutation/diagonal gates after a
  bounded number of branching gates, so the number of nonzero amplitudes is
  bounded by ``2**max_branching``.
* :func:`random_dense_circuit` — branching gates everywhere, driving the
  state to full density quickly.

All generators take an explicit seed; results are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError

#: Single-qubit gates that can increase the nonzero-amplitude count.
BRANCHING_1Q = ("h", "rx", "ry", "sx", "u")
#: Single-qubit gates that never increase the nonzero-amplitude count.
NON_BRANCHING_1Q = ("x", "y", "z", "s", "sdg", "t", "tdg", "rz", "p")
#: Two-qubit gates that never increase the nonzero-amplitude count.
NON_BRANCHING_2Q = ("cx", "cz", "cp", "swap", "rzz")
#: Two-qubit gates that can branch.
BRANCHING_2Q = ("ch", "crx", "cry", "rxx")


def _append_random_gate(circuit: QuantumCircuit, name: str, qubits: Sequence[int], rng: random.Random) -> None:
    angle = rng.uniform(0, 2 * math.pi)
    if name in ("rx", "ry", "rz", "p"):
        getattr(circuit, name)(angle, qubits[0])
    elif name == "u":
        circuit.u(angle, rng.uniform(0, 2 * math.pi), rng.uniform(0, 2 * math.pi), qubits[0])
    elif name in ("crx", "cry", "crz", "cp"):
        getattr(circuit, name)(angle, qubits[0], qubits[1])
    elif name in ("rzz", "rxx"):
        getattr(circuit, name)(angle, qubits[0], qubits[1])
    elif name in ("cx", "cz", "ch", "cy", "swap", "iswap"):
        getattr(circuit, name)(qubits[0], qubits[1])
    else:
        getattr(circuit, name)(qubits[0])


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: int = 0,
    two_qubit_probability: float = 0.4,
) -> QuantumCircuit:
    """A generic random circuit of the given depth.

    Each layer fills the qubits with randomly chosen gates; with probability
    ``two_qubit_probability`` a random adjacent-or-not pair receives a
    two-qubit gate, otherwise single-qubit gates are used.
    """
    if num_qubits < 1:
        raise CircuitError("random circuit needs at least one qubit")
    if depth < 0:
        raise CircuitError("depth must be non-negative")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}_s{seed}")
    one_qubit_gates = BRANCHING_1Q + NON_BRANCHING_1Q
    two_qubit_gates = NON_BRANCHING_2Q + BRANCHING_2Q
    for _layer in range(depth):
        available = list(range(num_qubits))
        rng.shuffle(available)
        while available:
            if len(available) >= 2 and rng.random() < two_qubit_probability:
                a, b = available.pop(), available.pop()
                _append_random_gate(circuit, rng.choice(two_qubit_gates), (a, b), rng)
            else:
                qubit = available.pop()
                _append_random_gate(circuit, rng.choice(one_qubit_gates), (qubit,), rng)
    return circuit


def random_sparse_circuit(
    num_qubits: int,
    depth: int,
    max_branching: int = 2,
    seed: int = 0,
) -> QuantumCircuit:
    """A random circuit whose state never exceeds ``2**max_branching`` nonzero amplitudes.

    At most ``max_branching`` branching gates (Hadamards) are inserted; every
    other gate is a permutation or diagonal gate, so sparsity is preserved.
    This is the workload class for the sparse-capacity experiment (E3).
    """
    if max_branching < 0:
        raise CircuitError("max_branching must be non-negative")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"sparse_{num_qubits}x{depth}_b{max_branching}_s{seed}")
    branch_layers = sorted(rng.sample(range(max(depth, 1)), k=min(max_branching, depth))) if depth else []
    for layer in range(depth):
        if layer in branch_layers:
            circuit.h(rng.randrange(num_qubits))
        for qubit in range(num_qubits):
            choice = rng.random()
            if choice < 0.35 and num_qubits >= 2:
                other = rng.randrange(num_qubits - 1)
                if other >= qubit:
                    other += 1
                _append_random_gate(circuit, rng.choice(NON_BRANCHING_2Q), (qubit, other), rng)
            else:
                _append_random_gate(circuit, rng.choice(NON_BRANCHING_1Q), (qubit,), rng)
    return circuit


def random_dense_circuit(num_qubits: int, depth: int, seed: int = 0) -> QuantumCircuit:
    """A random circuit that drives the state dense as fast as possible.

    Every layer starts with Hadamards on all qubits followed by random
    entangling and phase gates — the stress case for the relational
    representation (experiment E4).
    """
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"dense_{num_qubits}x{depth}_s{seed}")
    for _layer in range(depth):
        for qubit in range(num_qubits):
            circuit.h(qubit)
        for qubit in range(0, num_qubits - 1, 2):
            _append_random_gate(circuit, rng.choice(NON_BRANCHING_2Q), (qubit, qubit + 1), rng)
        for qubit in range(num_qubits):
            circuit.t(qubit)
    return circuit
