"""Oracle-based textbook algorithms: Bernstein–Vazirani and Deutsch–Jozsa.

These are the classic "algorithm design and testing" workloads the paper's
first demo scenario targets: small, structured circuits whose correct answer
is known classically, so a researcher can iterate on them quickly and check
every backend's output at a glance.  Both use phase oracles built only from
CX / X / Z gates, so their relational states stay extremely sparse.
"""

from __future__ import annotations

from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError


def _parse_bits(bits: Sequence[int] | str, name: str) -> list[int]:
    if isinstance(bits, str):
        bits = [int(ch) for ch in bits]
    values = [int(b) for b in bits]
    if not values:
        raise CircuitError(f"{name} needs at least one bit")
    if any(b not in (0, 1) for b in values):
        raise CircuitError(f"{name} must be a bitstring, got {values}")
    return values


def bernstein_vazirani_circuit(secret: Sequence[int] | str, measure: bool = True) -> QuantumCircuit:
    """Bernstein–Vazirani: recover a secret bitstring with one oracle query.

    Qubit ``k`` of the data register corresponds to bit ``k`` of ``secret``
    (character ``k`` when a string is given); the last qubit is the phase
    ancilla.  After the circuit, measuring the data register yields the
    secret with probability 1.
    """
    bits = _parse_bits(secret, "secret")
    num_data = len(bits)
    circuit = QuantumCircuit(num_data + 1, name=f"bv_{''.join(str(b) for b in bits)}")
    ancilla = num_data

    # Phase kickback ancilla in |->.
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)
    # Oracle: f(x) = secret . x  (one CX per set secret bit).
    for qubit, bit in enumerate(bits):
        if bit:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)
    if measure:
        for qubit in range(num_data):
            circuit.measure(qubit, qubit)
    return circuit


def bernstein_vazirani_expected_index(secret: Sequence[int] | str) -> int:
    """The basis index of the data register after the BV circuit (= the secret)."""
    bits = _parse_bits(secret, "secret")
    return sum(bit << position for position, bit in enumerate(bits))


def deutsch_jozsa_circuit(
    num_data: int, oracle: str = "balanced", pattern: Sequence[int] | str | None = None, measure: bool = True
) -> QuantumCircuit:
    """Deutsch–Jozsa: decide whether an oracle is constant or balanced.

    Parameters
    ----------
    num_data:
        Width of the data register.
    oracle:
        ``"constant0"`` (f = 0), ``"constant1"`` (f = 1), or ``"balanced"``
        (f(x) = pattern . x mod 2, which is balanced for any nonzero pattern).
    pattern:
        Mask used by the balanced oracle (defaults to all ones).

    Measuring all zeros on the data register means "constant"; anything else
    means "balanced".
    """
    if num_data < 1:
        raise CircuitError("Deutsch-Jozsa needs at least one data qubit")
    oracle = oracle.lower()
    if oracle not in ("constant0", "constant1", "balanced"):
        raise CircuitError(f"unknown oracle kind {oracle!r}")
    if pattern is None:
        pattern_bits = [1] * num_data
    else:
        pattern_bits = _parse_bits(pattern, "pattern")
        if len(pattern_bits) != num_data:
            raise CircuitError("pattern length must equal the data-register width")
        if oracle == "balanced" and not any(pattern_bits):
            raise CircuitError("a balanced oracle needs a nonzero pattern")

    circuit = QuantumCircuit(num_data + 1, name=f"dj_{oracle}_{num_data}")
    ancilla = num_data
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)

    if oracle == "constant1":
        circuit.z(ancilla)  # global phase on the |-> ancilla; f(x) = 1 for all x
    elif oracle == "balanced":
        for qubit, bit in enumerate(pattern_bits):
            if bit:
                circuit.cx(qubit, ancilla)

    for qubit in range(num_data):
        circuit.h(qubit)
    if measure:
        for qubit in range(num_data):
            circuit.measure(qubit, qubit)
    return circuit


def deutsch_jozsa_is_constant(data_register_index: int) -> bool:
    """Interpret a Deutsch–Jozsa measurement of the data register."""
    return data_register_index == 0
