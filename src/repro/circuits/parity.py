"""Quantum parity-check circuits (the paper's first demo scenario).

The parity-check algorithm determines whether the number of ones in a given
bitstring is even or odd: the data qubits are prepared in the bitstring, and
a chain of CX gates accumulates their parity onto an ancilla qubit, which is
then measured.  Because every gate is a permutation gate the state always has
exactly one nonzero amplitude — the extreme sparse case, and a good "rapid
algorithm iteration" example for the SQL pipeline.
"""

from __future__ import annotations

from typing import Sequence

from ..core.circuit import QuantumCircuit
from ..errors import CircuitError


def _validate_bits(bits: Sequence[int]) -> list[int]:
    values = [int(b) for b in bits]
    if not values:
        raise CircuitError("parity check needs at least one data bit")
    if any(b not in (0, 1) for b in values):
        raise CircuitError(f"bitstring must contain only 0/1, got {list(bits)}")
    return values


def parity_check_circuit(bits: Sequence[int] | str, measure: bool = True) -> QuantumCircuit:
    """Parity check of a classical bitstring.

    Parameters
    ----------
    bits:
        The input bitstring, e.g. ``[1, 0, 1]`` or ``"101"``.  Bit ``k`` is
        loaded onto qubit ``k`` with an X gate when set.
    measure:
        Measure the ancilla (the last qubit) when True.

    The ancilla ends in |1> iff the bitstring has odd parity.
    """
    if isinstance(bits, str):
        bits = [int(ch) for ch in bits]
    values = _validate_bits(bits)
    num_data = len(values)
    circuit = QuantumCircuit(num_data + 1, name=f"parity_{''.join(str(b) for b in values)}")
    for qubit, bit in enumerate(values):
        if bit:
            circuit.x(qubit)
    ancilla = num_data
    for qubit in range(num_data):
        circuit.cx(qubit, ancilla)
    if measure:
        circuit.measure(ancilla, 0)
    return circuit


def superposed_parity_circuit(num_data: int) -> QuantumCircuit:
    """Parity evaluation over *all* bitstrings in superposition.

    Hadamards put the data register into the uniform superposition, then the
    CX chain writes each branch's parity onto the ancilla.  The resulting
    state entangles every bitstring with its parity — a compact example of
    how a classical predicate becomes a quantum oracle, and a mid-density
    workload between GHZ and full superposition.
    """
    if num_data < 1:
        raise CircuitError("parity check needs at least one data qubit")
    circuit = QuantumCircuit(num_data + 1, name=f"parity_superposed_{num_data}")
    for qubit in range(num_data):
        circuit.h(qubit)
    for qubit in range(num_data):
        circuit.cx(qubit, num_data)
    return circuit


def expected_parity(bits: Sequence[int] | str) -> int:
    """Classical reference: parity (0 = even, 1 = odd) of the bitstring."""
    if isinstance(bits, str):
        bits = [int(ch) for ch in bits]
    values = _validate_bits(bits)
    return sum(values) % 2


def parity_expected_basis_state(bits: Sequence[int] | str) -> int:
    """The single basis index the parity circuit ends in (before measurement)."""
    if isinstance(bits, str):
        bits = [int(ch) for ch in bits]
    values = _validate_bits(bits)
    index = 0
    for position, bit in enumerate(values):
        index |= bit << position
    index |= expected_parity(values) << len(values)
    return index
