"""Job service: multi-user execution on top of compile–bind–execute.

The ROADMAP's north star is serving heavy simulation traffic, and the
natural unit of that traffic is a *job*: one circuit, one method, one
parameter point or a whole sweep grid.  :class:`JobService` accepts jobs
(:meth:`~JobService.submit` returns a :class:`JobHandle` immediately), runs
them on a small worker pool, and leases method instances from a shared
:class:`EnginePool` so concurrent jobs on the same (method, options)
combination reuse warm engines — and with them the memdb plan cache —
without ever sharing one engine between two running jobs.

Every job goes through the same pipeline the synchronous API uses:
``method.compile(circuit)`` then ``bind(params).execute()`` (or
``execute_batch`` for grids).  :class:`QymeraSession` and the benchmark
drivers are thin clients of this pipeline; the service adds queueing,
polling and streaming on top.

Two execution tiers serve the work.  The default **thread tier** runs each
job on the worker thread pool — cheap, shares one address space, and fast
whenever the engines release the GIL (numpy kernels, I/O).  The optional
**process-backed batch tier** (``process_workers``) fans ``param_grid``
sweeps out in chunks to spawned worker processes, each compiling the
circuit once per chunk and keeping warm engines between chunks: CPU-bound
multi-user sweep traffic scales past the GIL entirely, at the cost of
pickling the circuit and results across the process boundary.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..backends import available_backends
from ..core.circuit import QuantumCircuit
from ..errors import QymeraError
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import drain_shared_traces, maybe_span, shared_tracer, tracing_env_enabled
from ..output.result import SimulationResult
from ..simulators import available_simulators
from ..simulators.base import BaseSimulator

#: Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_ERROR = "error"
JOB_CANCELLED = "cancelled"

_TERMINAL = frozenset({JOB_DONE, JOB_ERROR, JOB_CANCELLED})


class _OptionToken:
    """Hashable stand-in for an unhashable option value.

    Holds a strong reference to the value, so identity-based reprs can never
    be recycled onto a different object while a fingerprint using the token
    is alive (repr alone would alias a garbage-collected option with a new
    object allocated at the same address).
    """

    __slots__ = ("value", "_repr")

    def __init__(self, value: object) -> None:
        self.value = value
        self._repr = repr(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OptionToken) and self._repr == other._repr

    def __hash__(self) -> int:
        return hash(self._repr)

    def __repr__(self) -> str:
        return self._repr


def options_fingerprint(options: Mapping[str, object]) -> tuple:
    """A hashable, order-insensitive fingerprint of method options.

    Hashable values are kept as-is (stateful objects like caches hash by
    identity, which is exactly right for pooling: two backends built around
    different cache objects must not alias); unhashable values are wrapped
    in a :class:`_OptionToken` that keeps them alive and compares by repr.
    """
    items = []
    for key in sorted(options, key=str):
        value = options[key]
        try:
            hash(value)
        except TypeError:
            value = _OptionToken(value)
        items.append((str(key), value))
    return tuple(items)


def make_method(method: str, **options) -> BaseSimulator:
    """Instantiate a simulation method (backend or baseline simulator) by name."""
    backends = available_backends()
    simulators = available_simulators()
    if method in backends:
        return backends[method](**options)
    if method in simulators:
        return simulators[method](**options)
    raise QymeraError(
        f"unknown simulation method {method!r}; available: {sorted(set(backends) | set(simulators))}"
    )


# ---------------------------------------------------------------------------
# Process-backed batch tier
# ---------------------------------------------------------------------------

#: Per-worker-process method cache, keyed by (method, pickled canonical
#: options): repeated chunks of the same sweep reuse a warm engine — and
#: with it the child's process-wide memdb plan cache — exactly like the
#: thread tier's EnginePool, just one cache per worker process.
_PROCESS_METHODS: dict[tuple[str, bytes], BaseSimulator] = {}


def _process_method_key(method: str, options: Mapping[str, object]) -> tuple[str, bytes]:
    # Key by the *pickled value state* of the options, never by repr: an
    # identity-based repr embeds an address that the allocator can recycle
    # onto a differently-configured object, silently aliasing engines (the
    # hazard _OptionToken guards against on the thread tier).  Pickle bytes
    # encode exactly the state the engine in this process was built from —
    # options reached the worker pickled in the first place — so equal
    # bytes imply an equivalently-configured engine, and a spurious
    # mismatch merely builds a fresh one.
    rendered = pickle.dumps(sorted(options.items(), key=lambda item: str(item[0])))
    return method, rendered


#: Traces shipped back per process-tier chunk: enough for forensics on the
#: chunk that just ran, bounded so a wide sweep never floods the pickle pipe.
_CHUNK_TRACE_LIMIT = 8


def _execute_grid_chunk(
    method: str,
    options: dict,
    circuit: "QuantumCircuit",
    points: list[dict],
) -> tuple[list["SimulationResult"], dict]:
    """Worker-process entry point: compile once, execute one grid chunk.

    Runs in a spawned worker with no shared state; everything it needs
    (method name, options, circuit template, parameter points) arrives
    pickled, and the per-point results are pickled back together with the
    worker's observability snapshot: its pid, the warm engine's unified
    ``engine_stats()`` (when the method exposes one), and — when tracing is
    enabled in the worker (``REPRO_TRACE`` travels through the inherited
    environment) — the traces its shared ring collected for this chunk.
    The parent merges these into the job's metadata on chunk join.
    """
    key = _process_method_key(method, options)
    engine = _PROCESS_METHODS.get(key)
    if engine is None:
        engine = make_method(method, **options)
        _PROCESS_METHODS[key] = engine
    executable = engine.compile(circuit)
    results = [executable.bind(point).execute() for point in points]
    worker_stats: dict = {"pid": os.getpid(), "points": len(points)}
    stats_fn = getattr(engine, "engine_stats", None)
    if stats_fn is not None:
        try:
            worker_stats["engine"] = stats_fn()
        except Exception:  # noqa: BLE001 — diagnostics must not fail the chunk
            pass
    traces = drain_shared_traces(_CHUNK_TRACE_LIMIT)
    if traces:
        worker_stats["traces"] = traces
    return results, worker_stats


class EnginePool:
    """A lease-based pool of method instances keyed by (method, options).

    Method instances are not thread-safe (the memdb backend keeps a live
    engine between runs), so the pool hands each instance to at most one
    job at a time: :meth:`acquire` pops an idle instance or builds a fresh
    one, :meth:`release` returns it for the next job.  Releasing more
    instances than ``max_idle_per_key`` discards the surplus — the plan
    cache is shared process-wide, so a discarded engine loses nothing
    another engine cannot recover.
    """

    def __init__(self, max_idle_per_key: int = 4) -> None:
        self._idle: dict[tuple, list[BaseSimulator]] = {}
        self._lock = threading.Lock()
        self.max_idle_per_key = int(max_idle_per_key)
        self._created = 0
        self._reused = 0
        #: Keys that have leased at least once: a later acquire finding their
        #: idle list empty means concurrent jobs are competing for the same
        #: (method, options) engines — the lease-contention signal.
        self._keys_seen: set[tuple] = set()
        self._contended = 0

    def acquire(self, method: str, options: Mapping[str, object]) -> tuple[tuple, BaseSimulator]:
        """Lease an instance for one job; returns ``(key, instance)``."""
        key = (method, options_fingerprint(options))
        with self._lock:
            idle = self._idle.get(key)
            if idle:
                self._reused += 1
                self._keys_seen.add(key)
                return key, idle.pop()
            if key in self._keys_seen:
                self._contended += 1
            self._keys_seen.add(key)
        instance = make_method(method, **options)
        with self._lock:
            self._created += 1
        return key, instance

    def release(self, key: tuple, instance: BaseSimulator) -> None:
        """Return a leased instance so later jobs can reuse its warm state."""
        with self._lock:
            idle = self._idle.setdefault(key, [])
            if len(idle) < self.max_idle_per_key:
                idle.append(instance)

    def stats(self) -> dict:
        """Pool counters: instances created, leases served from idle, idle sizes.

        Idle counts aggregate over option fingerprints, one total per method.
        """
        with self._lock:
            idle: dict[str, int] = {}
            for (method, _fingerprint), instances in self._idle.items():
                idle[method] = idle.get(method, 0) + len(instances)
            return {
                "created": self._created,
                "reused": self._reused,
                "contended": self._contended,
                "idle": idle,
            }


@dataclass
class JobRequest:
    """One unit of simulation work.

    Exactly one of ``params`` (a single parameter point — may be empty for
    unparameterized circuits) or ``param_grid`` (a batch sweep) applies;
    leaving both unset runs the circuit as-is.
    """

    circuit: QuantumCircuit
    method: str = "memdb"
    options: Mapping[str, object] = field(default_factory=dict)
    params: Mapping[str, float] | None = None
    param_grid: Sequence[Mapping[str, float]] | None = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.params is not None and self.param_grid is not None:
            raise QymeraError("pass either params (one point) or param_grid (a sweep), not both")

    @property
    def total_points(self) -> int:
        """How many executions this request fans out to."""
        return len(self.param_grid) if self.param_grid is not None else 1


class JobHandle:
    """Live view of one submitted job: poll, wait, stream.

    Thread-safe: the worker appends results and flips the status under the
    handle's condition variable; clients block on it in :meth:`result` and
    :meth:`stream`.
    """

    def __init__(self, job_id: int, request: JobRequest) -> None:
        self.job_id = job_id
        self.request = request
        self._condition = threading.Condition()
        self._status = JOB_QUEUED
        self._results: list[SimulationResult] = []
        self._error: BaseException | None = None
        self._cancel_requested = False
        self._future: Future | None = None
        #: Observability side-channel: the worker attaches execution metadata
        #: here (per-worker-process engine stats and traces for process-tier
        #: sweeps) before the terminal transition; read it after ``done``.
        self.metadata: dict = {}
        self._submitted_at = time.monotonic()
        #: Set by the owning service at submit; JobHandles built directly
        #: (tests, embedding) stay metrics-free.
        self._metrics: "MetricsRegistry | None" = None

    # -------------------------------------------------------------- queries

    def status(self) -> str:
        """Current lifecycle state (queued / running / done / error / cancelled)."""
        with self._condition:
            return self._status

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status() in _TERMINAL

    def poll(self) -> dict:
        """One-shot progress snapshot (what a UI would render per refresh)."""
        with self._condition:
            return {
                "job_id": self.job_id,
                "status": self._status,
                "method": self.request.method,
                "circuit": self.request.circuit.name,
                "tag": self.request.tag,
                "completed_points": len(self._results),
                "total_points": self.request.total_points,
                "error": str(self._error) if self._error is not None else "",
            }

    # -------------------------------------------------------------- results

    def result(self, timeout: float | None = None) -> SimulationResult | list[SimulationResult]:
        """Block until the job finishes; a grid job returns the full result list.

        Re-raises the job's error; raises :class:`QymeraError` on timeout or
        cancellation.
        """
        with self._condition:
            if not self._condition.wait_for(lambda: self._status in _TERMINAL, timeout=timeout):
                raise QymeraError(f"job {self.job_id} did not finish within {timeout}s")
            if self._error is not None:
                raise self._error
            if self._status == JOB_CANCELLED:
                raise QymeraError(f"job {self.job_id} was cancelled")
            if self.request.param_grid is not None:
                return list(self._results)
            return self._results[0]

    def stream(self, timeout: float | None = None) -> Iterator[SimulationResult]:
        """Yield per-point results as the worker produces them.

        ``timeout`` bounds the wait for *each* next result.  The iterator
        ends when the job completes; a failing or cancelled job raises after
        the results that did complete were yielded.
        """
        position = 0
        while True:
            with self._condition:
                ready = self._condition.wait_for(
                    lambda: len(self._results) > position or self._status in _TERMINAL,
                    timeout=timeout,
                )
                if not ready:
                    raise QymeraError(f"job {self.job_id} produced no result within {timeout}s")
                if len(self._results) > position:
                    item = self._results[position]
                else:
                    if self._error is not None:
                        raise self._error
                    if self._status == JOB_CANCELLED:
                        raise QymeraError(f"job {self.job_id} was cancelled")
                    return
            position += 1
            yield item

    # ------------------------------------------------------------- control

    def cancel(self) -> bool:
        """Request cancellation.

        Queued jobs die immediately; a running grid job stops at its next
        point boundary.  Returns True only when the job is *guaranteed* to
        produce no further results (it was still queued); a False return
        means the request was recorded best-effort but a running job may
        still complete — poll the status to find out.
        """
        with self._condition:
            if self._status in _TERMINAL:
                return False
            self._cancel_requested = True
            future = self._future
        if future is not None and future.cancel():
            self._transition(JOB_CANCELLED)
            return True
        return False

    # ------------------------------------------------------- worker callbacks

    def _transition(self, status: str, error: BaseException | None = None) -> None:
        with self._condition:
            if self._status in _TERMINAL:
                return
            previous = self._status
            self._status = status
            self._error = error
            self._condition.notify_all()
        # Metrics bookkeeping outside the condition lock: the terminal guard
        # above already guarantees each transition is recorded exactly once.
        metrics = self._metrics
        if metrics is None:
            return
        if status == JOB_RUNNING:
            metrics.gauge("jobs.queue_depth").dec()
            metrics.gauge("jobs.running").inc()
            metrics.histogram("jobs.queue_wait_seconds").observe(
                time.monotonic() - self._submitted_at
            )
        elif status in _TERMINAL:
            if previous == JOB_QUEUED:
                # Cancelled while still queued: it never became "running".
                metrics.gauge("jobs.queue_depth").dec()
            else:
                metrics.gauge("jobs.running").dec()
            metrics.counter(f"jobs.{status}").inc()

    def _push_result(self, result: SimulationResult) -> None:
        with self._condition:
            self._results.append(result)
            self._condition.notify_all()

    @property
    def _cancelled(self) -> bool:
        with self._condition:
            return self._cancel_requested

    def __repr__(self) -> str:
        return f"JobHandle(id={self.job_id}, status={self.status()!r}, method={self.request.method!r})"


class JobService:
    """Accepts simulation jobs and runs them on a shared engine pool.

    Parameters
    ----------
    max_workers:
        Size of the worker thread pool (created lazily on first submit).
    pool:
        The :class:`EnginePool` leased engines come from; one service-owned
        pool by default.  Passing a shared pool lets several services (or a
        service plus a session) draw from the same warm engines.
    max_retained_jobs:
        Finished handles kept for ``poll``/``result`` lookups.  Each submit
        evicts the oldest *terminal* handles beyond this bound (running and
        queued jobs are never evicted), so a long-running service does not
        accumulate every past job's result states.  ``None`` retains all.
    process_workers:
        Size of the **process-backed batch tier**: when set, ``param_grid``
        sweeps are split into chunks and executed on a pool of spawned
        worker processes, each compiling the circuit once and keeping warm
        engines between chunks.  Threads only escape the GIL inside numpy
        kernels; CPU-bound multi-user sweep traffic scales past it entirely
        on this tier.  Jobs whose payload (circuit, options, grid) does not
        pickle fall back to the thread tier transparently.  Single-point
        jobs always run on threads (a process round-trip costs more than it
        can win back on one point).
    process_chunk_points:
        Grid points per process-tier chunk (default: grid split evenly, two
        chunks per worker, so chunk completions stream results back while
        later chunks still run).
    metrics:
        The :class:`~repro.obs.MetricsRegistry` service-level instruments
        record into — queue depth and queue-wait, jobs running, per-tier
        execute latency (p50/p95/p99), terminal counters (done / error /
        cancelled).  One service-owned registry by default; pass
        :func:`repro.obs.global_registry` to fold these into the
        process-wide snapshot.
    """

    def __init__(
        self,
        max_workers: int = 4,
        pool: EnginePool | None = None,
        max_retained_jobs: int | None = 256,
        process_workers: int | None = None,
        process_chunk_points: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise QymeraError("JobService needs at least one worker")
        if max_retained_jobs is not None and max_retained_jobs < 1:
            raise QymeraError("max_retained_jobs must be positive (or None to retain all)")
        if process_workers is not None and process_workers < 1:
            raise QymeraError("process_workers must be positive when given")
        if process_chunk_points is not None and process_chunk_points < 1:
            raise QymeraError("process_chunk_points must be positive when given")
        self.max_workers = int(max_workers)
        self.max_retained_jobs = max_retained_jobs
        self.process_workers = process_workers
        self.process_chunk_points = process_chunk_points
        self.pool = pool if pool is not None else EnginePool()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor: ThreadPoolExecutor | None = None
        self._process_executor: ProcessPoolExecutor | None = None
        self._jobs: dict[int, JobHandle] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        self._process_chunks = 0
        self._process_points = 0
        self._process_fallbacks = 0

    # ------------------------------------------------------------ submission

    def submit(self, request: JobRequest | None = None, /, **kwargs) -> JobHandle:
        """Queue a job and return its handle immediately.

        Accepts a prebuilt :class:`JobRequest` or its fields as keyword
        arguments (``circuit=..., method=..., params=...``).
        """
        if request is None:
            request = JobRequest(**kwargs)
        elif kwargs:
            raise QymeraError("pass either a JobRequest or keyword fields, not both")
        with self._lock:
            if self._closed:
                raise QymeraError("the job service has been shut down")
            self._evict_terminal_locked()
            job_id = next(self._ids)
            handle = JobHandle(job_id, request)
            handle._metrics = self.metrics
            self._jobs[job_id] = handle
            self.metrics.counter("jobs.submitted").inc()
            self.metrics.gauge("jobs.queue_depth").inc()
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="qymera-job"
                )
            handle._future = self._executor.submit(self._run_job, handle)
        return handle

    def _evict_terminal_locked(self) -> None:
        """Drop the oldest finished handles beyond ``max_retained_jobs``."""
        if self.max_retained_jobs is None:
            return
        excess = len(self._jobs) - (self.max_retained_jobs - 1)
        if excess <= 0:
            return
        for job_id in sorted(self._jobs):
            if excess <= 0:
                break
            if self._jobs[job_id].status() in _TERMINAL:
                del self._jobs[job_id]
                excess -= 1

    def purge(self) -> int:
        """Drop every finished handle now; returns how many were removed."""
        with self._lock:
            terminal = [job_id for job_id, handle in self._jobs.items() if handle.status() in _TERMINAL]
            for job_id in terminal:
                del self._jobs[job_id]
            return len(terminal)

    def _run_job(self, handle: JobHandle) -> None:
        if handle._cancelled:
            handle._transition(JOB_CANCELLED)
            return
        handle._transition(JOB_RUNNING)
        request = handle.request
        # Any escape — QymeraError or not (bad constructor kwargs raise
        # TypeError, bad parameter values ValueError) — must land the job in
        # a terminal state, or result()/stream() callers block forever.
        if request.param_grid is not None and self._use_process_tier(request):
            try:
                with self.metrics.histogram("jobs.process_tier_seconds").time():
                    self._run_grid_in_processes(handle, request)
            except Exception as exc:
                handle._transition(JOB_ERROR, exc)
            return
        try:
            key, engine = self.pool.acquire(request.method, request.options)
        except Exception as exc:
            handle._transition(JOB_ERROR, exc)
            return
        try:
            # When tracing is on (REPRO_TRACE or an engine-level tracer), the
            # job span becomes the root this thread's compile/query spans
            # nest under; with tracing off it is a no-op context.
            with self.metrics.histogram("jobs.thread_tier_seconds").time(), maybe_span(
                "job", job_id=handle.job_id, method=request.method
            ):
                executable = engine.compile(request.circuit)
                if request.param_grid is not None:
                    for point in request.param_grid:
                        if handle._cancelled:
                            handle._transition(JOB_CANCELLED)
                            return
                        handle._push_result(executable.bind(point).execute())
                else:
                    handle._push_result(executable.bind(request.params or {}).execute())
            handle._transition(JOB_DONE)
        except Exception as exc:
            handle._transition(JOB_ERROR, exc)
        finally:
            self.pool.release(key, engine)

    # -------------------------------------------------- process-backed tier

    def _use_process_tier(self, request: JobRequest) -> bool:
        """Route a grid job to worker processes when possible.

        The payload must survive pickling (spawned workers receive it
        serialized); anything that does not — exotic options, closures in a
        circuit — silently stays on the thread tier, counted in the stats.
        """
        if self.process_workers is None or not request.param_grid:
            return False
        try:
            # Probe with one representative point, not the whole grid: the
            # circuit and options dominate picklability (points are plain
            # name->float dicts), and each chunk pickles its own points at
            # submit time anyway — serializing a large grid twice would
            # stall the worker thread before the first chunk dispatches.
            pickle.dumps(
                (request.circuit, dict(request.options), dict(request.param_grid[0]))
            )
        except Exception:
            with self._lock:
                self._process_fallbacks += 1
            return False
        return True

    def _acquire_process_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise QymeraError("the job service has been shut down")
            if self._process_executor is None:
                # Spawn (not fork): the service itself is multi-threaded, and
                # forking a threaded process can deadlock held locks.
                self._process_executor = ProcessPoolExecutor(
                    max_workers=self.process_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._process_executor

    def _run_grid_in_processes(self, handle: JobHandle, request: JobRequest) -> None:
        """Fan a sweep grid out over the process pool, streaming in order.

        The grid is split into contiguous chunks; each worker process
        compiles the circuit once per chunk (warm engines persist between
        chunks of the same method+options).  Chunk futures are drained in
        submission order so per-point results stream back to ``stream()``
        callers in grid order; cancellation takes effect at the next chunk
        boundary.
        """
        executor = self._acquire_process_executor()
        points = [dict(point) for point in request.param_grid or []]
        workers = self.process_workers or 1
        if self.process_chunk_points is not None:
            chunk_size = self.process_chunk_points
        else:
            chunk_size = max(1, -(-len(points) // (workers * 2)))
        chunks = [points[start : start + chunk_size] for start in range(0, len(points), chunk_size)]
        options = dict(request.options)
        futures = [
            executor.submit(_execute_grid_chunk, request.method, options, request.circuit, chunk)
            for chunk in chunks
        ]
        with self._lock:
            self._process_chunks += len(chunks)
            self._process_points += len(points)
        try:
            for future in futures:
                if handle._cancelled:
                    for pending in futures:
                        pending.cancel()
                    handle._transition(JOB_CANCELLED)
                    return
                results, worker_stats = future.result()
                self._merge_worker_stats(handle, worker_stats)
                for result in results:
                    handle._push_result(result)
            handle._transition(JOB_DONE)
        except Exception as exc:
            for pending in futures:
                pending.cancel()
            handle._transition(JOB_ERROR, exc)

    def _merge_worker_stats(self, handle: JobHandle, worker_stats: dict) -> None:
        """Fold one chunk's worker-process snapshot into the job metadata.

        Per worker pid the job keeps the *latest* engine-stats snapshot
        (counters are cumulative in the worker, so the last chunk's snapshot
        subsumes earlier ones) and accumulates the points it executed.
        Worker traces are appended to the parent's shared ring when tracing
        is enabled here too, so ``recent_traces()`` in the parent shows
        process-tier executions next to local ones.
        """
        pid = worker_stats.get("pid")
        tier = handle.metadata.setdefault("process_tier", {"workers": {}})
        worker = tier["workers"].setdefault(pid, {"points": 0, "chunks": 0})
        worker["points"] += int(worker_stats.get("points", 0))
        worker["chunks"] += 1
        if "engine" in worker_stats:
            worker["engine"] = worker_stats["engine"]
        traces = worker_stats.get("traces") or []
        if traces:
            self.metrics.counter("jobs.worker_traces").inc(len(traces))
            if tracing_env_enabled():
                ring = shared_tracer().ring
                for trace in traces:
                    ring.append(trace)

    # --------------------------------------------------------------- queries

    def job(self, job_id: int) -> JobHandle:
        """Look a job up by id."""
        with self._lock:
            if job_id not in self._jobs:
                raise QymeraError(f"no job with id {job_id}")
            return self._jobs[job_id]

    def poll(self, job_id: int) -> dict:
        """Progress snapshot of one job (see :meth:`JobHandle.poll`)."""
        return self.job(job_id).poll()

    def result(self, job_id: int, timeout: float | None = None):
        """Block for one job's result (see :meth:`JobHandle.result`)."""
        return self.job(job_id).result(timeout=timeout)

    def stream(self, job_id: int, timeout: float | None = None) -> Iterator[SimulationResult]:
        """Stream one job's per-point results (see :meth:`JobHandle.stream`)."""
        return self.job(job_id).stream(timeout=timeout)

    def jobs(self) -> list[JobHandle]:
        """All handles this service has accepted, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def stats(self) -> dict:
        """Service-level counters: jobs by status, engine pool, process tier."""
        by_status: dict[str, int] = {}
        for handle in self.jobs():
            status = handle.status()
            by_status[status] = by_status.get(status, 0) + 1
        with self._lock:
            process_tier = {
                "enabled": self.process_workers is not None,
                "workers": self.process_workers,
                "chunks": self._process_chunks,
                "points": self._process_points,
                "fallbacks": self._process_fallbacks,
            }
        return {
            "jobs": by_status,
            "pool": self.pool.stats(),
            "process_tier": process_tier,
            "metrics": self.metrics.snapshot(),
        }

    # -------------------------------------------------------------- lifetime

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        with self._lock:
            executor = self._executor
            process_executor = self._process_executor
            self._executor = None
            self._process_executor = None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=wait)
        if process_executor is not None:
            process_executor.shutdown(wait=wait)

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown(wait=True)
