"""Job service: multi-user execution on top of compile–bind–execute.

The ROADMAP's north star is serving heavy simulation traffic, and the
natural unit of that traffic is a *job*: one circuit, one method, one
parameter point or a whole sweep grid.  :class:`JobService` accepts jobs
(:meth:`~JobService.submit` returns a :class:`JobHandle` immediately), runs
them on a small worker pool, and leases method instances from a shared
:class:`EnginePool` so concurrent jobs on the same (method, options)
combination reuse warm engines — and with them the memdb plan cache —
without ever sharing one engine between two running jobs.

Every job goes through the same pipeline the synchronous API uses:
``method.compile(circuit)`` then ``bind(params).execute()`` (or
``execute_batch`` for grids).  :class:`QymeraSession` and the benchmark
drivers are thin clients of this pipeline; the service adds queueing,
polling and streaming on top.

Two execution tiers serve the work.  The default **thread tier** runs each
job on the worker thread pool — cheap, shares one address space, and fast
whenever the engines release the GIL (numpy kernels, I/O).  The optional
**process-backed batch tier** (``process_workers``) fans ``param_grid``
sweeps out in chunks to spawned worker processes, each compiling the
circuit once per chunk and keeping warm engines between chunks: CPU-bound
multi-user sweep traffic scales past the GIL entirely, at the cost of
pickling the circuit and results across the process boundary.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import random
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..backends import available_backends
from ..core.circuit import QuantumCircuit
from ..errors import QymeraError
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import (
    TraceContext,
    activate_context,
    drain_shared_traces_counted,
    maybe_span,
    shared_tracer,
    span_record,
    tracing_env_enabled,
)
from ..output.result import SimulationResult
from ..simulators import available_simulators
from ..simulators.base import BaseSimulator

#: Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_ERROR = "error"
JOB_CANCELLED = "cancelled"

_TERMINAL = frozenset({JOB_DONE, JOB_ERROR, JOB_CANCELLED})


class _OptionToken:
    """Hashable stand-in for an unhashable option value.

    Holds a strong reference to the value, so identity-based reprs can never
    be recycled onto a different object while a fingerprint using the token
    is alive (repr alone would alias a garbage-collected option with a new
    object allocated at the same address).
    """

    __slots__ = ("value", "_repr")

    def __init__(self, value: object) -> None:
        self.value = value
        self._repr = repr(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OptionToken) and self._repr == other._repr

    def __hash__(self) -> int:
        return hash(self._repr)

    def __repr__(self) -> str:
        return self._repr


def options_fingerprint(options: Mapping[str, object]) -> tuple:
    """A hashable, order-insensitive fingerprint of method options.

    Hashable values are kept as-is (stateful objects like caches hash by
    identity, which is exactly right for pooling: two backends built around
    different cache objects must not alias); unhashable values are wrapped
    in a :class:`_OptionToken` that keeps them alive and compares by repr.
    """
    items = []
    for key in sorted(options, key=str):
        value = options[key]
        try:
            hash(value)
        except TypeError:
            value = _OptionToken(value)
        items.append((str(key), value))
    return tuple(items)


def make_method(method: str, **options) -> BaseSimulator:
    """Instantiate a simulation method (backend or baseline simulator) by name."""
    backends = available_backends()
    simulators = available_simulators()
    if method in backends:
        return backends[method](**options)
    if method in simulators:
        return simulators[method](**options)
    raise QymeraError(
        f"unknown simulation method {method!r}; available: {sorted(set(backends) | set(simulators))}"
    )


# ---------------------------------------------------------------------------
# Process-backed batch tier
# ---------------------------------------------------------------------------

#: Per-worker-process method cache, keyed by (method, pickled canonical
#: options): repeated chunks of the same sweep reuse a warm engine — and
#: with it the child's process-wide memdb plan cache — exactly like the
#: thread tier's EnginePool, just one cache per worker process.
_PROCESS_METHODS: dict[tuple[str, bytes], BaseSimulator] = {}


def _process_method_key(method: str, options: Mapping[str, object]) -> tuple[str, bytes]:
    # Key by the *pickled value state* of the options, never by repr: an
    # identity-based repr embeds an address that the allocator can recycle
    # onto a differently-configured object, silently aliasing engines (the
    # hazard _OptionToken guards against on the thread tier).  Pickle bytes
    # encode exactly the state the engine in this process was built from —
    # options reached the worker pickled in the first place — so equal
    # bytes imply an equivalently-configured engine, and a spurious
    # mismatch merely builds a fresh one.
    rendered = pickle.dumps(sorted(options.items(), key=lambda item: str(item[0])))
    return method, rendered


#: Traces shipped back per process-tier chunk: enough for forensics on the
#: chunk that just ran, bounded so a wide sweep never floods the pickle pipe.
_CHUNK_TRACE_LIMIT = 8


def _execute_grid_chunk(
    method: str,
    options: dict,
    circuit: "QuantumCircuit",
    points: list[dict],
    trace: tuple[str, str] | None = None,
) -> tuple[list["SimulationResult"], dict]:
    """Worker-process entry point: compile once, execute one grid chunk.

    Runs in a spawned worker with no shared state; everything it needs
    (method name, options, circuit template, parameter points) arrives
    pickled, and the per-point results are pickled back together with the
    worker's observability snapshot: its pid, the warm engine's unified
    ``engine_stats()`` (when the method exposes one), and — when tracing is
    enabled in the worker (``REPRO_TRACE`` travels through the inherited
    environment) — the traces its shared ring collected for this chunk.
    The parent merges these into the job's metadata on chunk join.

    ``trace`` is the request's serialized identity, ``(trace_id,
    job_span_id)``: activating it as this worker's context makes every root
    span the chunk produces carry the trace id and parent to the job span
    the parent process opened, so the merged traces stitch into one request
    tree instead of arriving as anonymous islands.
    """
    key = _process_method_key(method, options)
    engine = _PROCESS_METHODS.get(key)
    if engine is None:
        engine = make_method(method, **options)
        _PROCESS_METHODS[key] = engine
    context = TraceContext(trace[0], span_id=trace[1]) if trace is not None else None
    with activate_context(context):
        if context is not None:
            # A traced request: open a chunk root against the worker's
            # shared tracer even without REPRO_TRACE — it adopts the
            # activated context, so the engine's compile/query spans nest
            # under it and the whole subtree ships home with trace identity.
            chunk_span = shared_tracer().span("chunk", pid=os.getpid(), points=len(points))
        else:
            chunk_span = nullcontext(None)
        with chunk_span:
            executable = engine.compile(circuit)
            results = [executable.bind(point).execute() for point in points]
    worker_stats: dict = {"pid": os.getpid(), "points": len(points)}
    # Drain before the engine-stats snapshot so the snapshot's tracing
    # section already reflects any traces the chunk limit just dropped.
    traces, dropped = drain_shared_traces_counted(_CHUNK_TRACE_LIMIT)
    if traces:
        worker_stats["traces"] = traces
    if dropped:
        worker_stats["traces_dropped"] = dropped
    stats_fn = getattr(engine, "engine_stats", None)
    if stats_fn is not None:
        try:
            worker_stats["engine"] = stats_fn()
        except Exception:  # noqa: BLE001 — diagnostics must not fail the chunk
            pass
    return results, worker_stats


class EnginePool:
    """A lease-based pool of method instances keyed by (method, options).

    Method instances are not thread-safe (the memdb backend keeps a live
    engine between runs), so the pool hands each instance to at most one
    job at a time: :meth:`acquire` pops an idle instance or builds a fresh
    one, :meth:`release` returns it for the next job.  Releasing more
    instances than ``max_idle_per_key`` discards the surplus — the plan
    cache is shared process-wide, so a discarded engine loses nothing
    another engine cannot recover.
    """

    def __init__(self, max_idle_per_key: int = 4) -> None:
        self._idle: dict[tuple, list[BaseSimulator]] = {}
        self._lock = threading.Lock()
        self.max_idle_per_key = int(max_idle_per_key)
        self._created = 0
        self._reused = 0
        #: Keys that have leased at least once: a later acquire finding their
        #: idle list empty means concurrent jobs are competing for the same
        #: (method, options) engines — the lease-contention signal.
        self._keys_seen: set[tuple] = set()
        self._contended = 0
        self._closed = False
        self._discarded_on_close = 0

    def acquire(self, method: str, options: Mapping[str, object]) -> tuple[tuple, BaseSimulator]:
        """Lease an instance for one job; returns ``(key, instance)``."""
        key = (method, options_fingerprint(options))
        with self._lock:
            if self._closed:
                raise QymeraError("the engine pool has been closed")
            idle = self._idle.get(key)
            if idle:
                self._reused += 1
                self._keys_seen.add(key)
                return key, idle.pop()
            if key in self._keys_seen:
                self._contended += 1
            self._keys_seen.add(key)
        instance = make_method(method, **options)
        with self._lock:
            self._created += 1
        return key, instance

    def release(self, key: tuple, instance: BaseSimulator) -> None:
        """Return a leased instance so later jobs can reuse its warm state.

        After :meth:`close` the instance is discarded instead of pooled, so
        a job racing a shutdown can always release its lease without
        resurrecting idle state the closer believed gone — leases never
        leak, they just stop being reusable.
        """
        with self._lock:
            if self._closed:
                self._discarded_on_close += 1
                return
            idle = self._idle.setdefault(key, [])
            if len(idle) < self.max_idle_per_key:
                idle.append(instance)

    def close(self) -> None:
        """Stop leasing: drops all idle instances, rejects new acquires.

        In-flight leases stay valid — their release lands in the discard
        path above.  Idempotent.
        """
        with self._lock:
            self._closed = True
            self._discarded_on_close += sum(len(instances) for instances in self._idle.values())
            self._idle.clear()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats(self) -> dict:
        """Pool counters: instances created, leases served from idle, idle sizes.

        Idle counts aggregate over option fingerprints, one total per method.
        """
        with self._lock:
            idle: dict[str, int] = {}
            for (method, _fingerprint), instances in self._idle.items():
                idle[method] = idle.get(method, 0) + len(instances)
            return {
                "created": self._created,
                "reused": self._reused,
                "contended": self._contended,
                "closed": self._closed,
                "discarded_on_close": self._discarded_on_close,
                "idle": idle,
            }


@dataclass
class JobRequest:
    """One unit of simulation work.

    Exactly one of ``params`` (a single parameter point — may be empty for
    unparameterized circuits) or ``param_grid`` (a batch sweep) applies;
    leaving both unset runs the circuit as-is.
    """

    circuit: QuantumCircuit
    method: str = "memdb"
    options: Mapping[str, object] = field(default_factory=dict)
    params: Mapping[str, float] | None = None
    param_grid: Sequence[Mapping[str, float]] | None = None
    tag: str = ""
    #: Who submitted this job.  The serving tier's fair scheduler queues and
    #: meters per tenant; the default tenant keeps library use single-party.
    tenant: str = "default"
    #: Distributed-trace identity (set by the HTTP ingress from the request's
    #: ``traceparent``, by journal replay from the persisted trace id, or
    #: minted at submit when the service has a tracer and none was given).
    trace: TraceContext | None = None

    def __post_init__(self) -> None:
        if self.params is not None and self.param_grid is not None:
            raise QymeraError("pass either params (one point) or param_grid (a sweep), not both")
        if not self.tenant:
            raise QymeraError("tenant must be a non-empty string")

    @property
    def total_points(self) -> int:
        """How many executions this request fans out to."""
        return len(self.param_grid) if self.param_grid is not None else 1


class JobHandle:
    """Live view of one submitted job: poll, wait, stream.

    Thread-safe: the worker appends results and flips the status under the
    handle's condition variable; clients block on it in :meth:`result` and
    :meth:`stream`.
    """

    def __init__(self, job_id: int, request: JobRequest) -> None:
        self.job_id = job_id
        self.request = request
        self._condition = threading.Condition()
        self._status = JOB_QUEUED
        self._results: list[SimulationResult] = []
        self._error: BaseException | None = None
        self._cancel_requested = False
        self._future: Future | None = None
        #: Observability side-channel: the worker attaches execution metadata
        #: here (per-worker-process engine stats and traces for process-tier
        #: sweeps) before the terminal transition; read it after ``done``.
        self.metadata: dict = {}
        self._submitted_at = time.monotonic()
        #: Set by the owning service at submit; JobHandles built directly
        #: (tests, embedding) stay metrics-free.
        self._metrics: "MetricsRegistry | None" = None
        #: Serving-tier hooks, set by the owning service at submit: the
        #: durable journal lifecycle records land through ``_journal``;
        #: ``_tenant_prefix`` namespaces per-tenant instruments; the fair
        #: scheduler's DRR accounting reads ``_cost_units``; and
        #: ``_on_queue_cancel`` lets :meth:`cancel` pull a still-queued
        #: handle back out of the scheduler before it ever gets a future.
        self._journal = None
        self._tenant_prefix: str | None = None
        self._cost_units = 1.0
        self._on_queue_cancel = None
        #: Tracing hooks, set by the owning service at submit: the request's
        #: TraceContext, the service callback that seals its trace-store
        #: entry on the terminal transition, the scheduler's enqueue
        #: timestamp (perf_counter) and DRR round count for the queue-wait
        #: span's attribution.
        self._trace: "TraceContext | None" = None
        self._trace_seal = None
        self._enqueued_pc: float | None = None
        self._drr_rounds = 0

    # -------------------------------------------------------------- queries

    def status(self) -> str:
        """Current lifecycle state (queued / running / done / error / cancelled)."""
        with self._condition:
            return self._status

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status() in _TERMINAL

    def poll(self) -> dict:
        """One-shot progress snapshot (what a UI would render per refresh)."""
        with self._condition:
            return {
                "job_id": self.job_id,
                "status": self._status,
                "method": self.request.method,
                "circuit": self.request.circuit.name,
                "tag": self.request.tag,
                "tenant": self.request.tenant,
                "completed_points": len(self._results),
                "total_points": self.request.total_points,
                "error": str(self._error) if self._error is not None else "",
            }

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True when it did.

        Unlike :meth:`result` this never raises — it is the drain primitive
        shutdown and load generators use.
        """
        with self._condition:
            return self._condition.wait_for(lambda: self._status in _TERMINAL, timeout=timeout)

    # -------------------------------------------------------------- results

    def result(self, timeout: float | None = None) -> SimulationResult | list[SimulationResult]:
        """Block until the job finishes; a grid job returns the full result list.

        Re-raises the job's error; raises :class:`QymeraError` on timeout or
        cancellation.
        """
        with self._condition:
            if not self._condition.wait_for(lambda: self._status in _TERMINAL, timeout=timeout):
                raise QymeraError(f"job {self.job_id} did not finish within {timeout}s")
            if self._error is not None:
                raise self._error
            if self._status == JOB_CANCELLED:
                raise QymeraError(f"job {self.job_id} was cancelled")
            if self.request.param_grid is not None:
                return list(self._results)
            return self._results[0]

    def stream(self, timeout: float | None = None) -> Iterator[SimulationResult]:
        """Yield per-point results as the worker produces them.

        ``timeout`` bounds the wait for *each* next result.  The iterator
        ends when the job completes; a failing or cancelled job raises after
        the results that did complete were yielded.
        """
        position = 0
        while True:
            with self._condition:
                ready = self._condition.wait_for(
                    lambda: len(self._results) > position or self._status in _TERMINAL,
                    timeout=timeout,
                )
                if not ready:
                    raise QymeraError(f"job {self.job_id} produced no result within {timeout}s")
                if len(self._results) > position:
                    item = self._results[position]
                else:
                    if self._error is not None:
                        raise self._error
                    if self._status == JOB_CANCELLED:
                        raise QymeraError(f"job {self.job_id} was cancelled")
                    return
            position += 1
            yield item

    # ------------------------------------------------------------- control

    def cancel(self) -> bool:
        """Request cancellation.

        Queued jobs die immediately; a running grid job stops at its next
        point boundary.  Returns True only when the job is *guaranteed* to
        produce no further results (it was still queued); a False return
        means the request was recorded best-effort but a running job may
        still complete — poll the status to find out.
        """
        with self._condition:
            if self._status in _TERMINAL:
                return False
            self._cancel_requested = True
            future = self._future
        if future is None and self._on_queue_cancel is not None:
            # Scheduler-queued handle with no future yet: pull it out of the
            # fair queue.  A dispatch racing this returns False from the
            # removal and the worker honors _cancel_requested instead.
            if self._on_queue_cancel(self):
                self._transition(JOB_CANCELLED)
                return True
            return False
        if future is not None and future.cancel():
            self._transition(JOB_CANCELLED)
            return True
        return False

    # ------------------------------------------------------- worker callbacks

    def _transition(self, status: str, error: BaseException | None = None) -> None:
        with self._condition:
            if self._status in _TERMINAL:
                return
            previous = self._status
            self._status = status
            self._error = error
            self._condition.notify_all()
        # Journal and metrics bookkeeping outside the condition lock: the
        # terminal guard above already guarantees each transition is recorded
        # exactly once.
        journal = self._journal
        if journal is not None:
            try:
                if status == JOB_RUNNING:
                    journal.record_started(self.job_id)
                elif status in _TERMINAL:
                    journal.record_terminal(
                        self.job_id, status, error=str(error) if error is not None else ""
                    )
            except Exception:  # noqa: BLE001 — a full disk must not hang result() callers
                if self._metrics is not None:
                    self._metrics.counter("journal.write_errors").inc()
        if status in _TERMINAL and self._trace_seal is not None:
            # Seal before the metrics observations below so the moment an
            # exemplar becomes visible on /v1/stats its trace is already
            # assembled and queryable on /v1/traces.
            try:
                self._trace_seal(self, status)
            except Exception:  # noqa: BLE001 — tracing must not fail the job
                pass
        metrics = self._metrics
        if metrics is None:
            return
        prefix = self._tenant_prefix
        if status == JOB_RUNNING:
            metrics.gauge("jobs.queue_depth").dec()
            metrics.gauge("jobs.running").inc()
            metrics.histogram("jobs.queue_wait_seconds").observe(
                time.monotonic() - self._submitted_at
            )
            if prefix is not None:
                metrics.gauge(f"{prefix}queued").dec()
                metrics.gauge(f"{prefix}in_flight").inc()
        elif status in _TERMINAL:
            if previous == JOB_QUEUED:
                # Cancelled while still queued: it never became "running".
                metrics.gauge("jobs.queue_depth").dec()
                if prefix is not None:
                    metrics.gauge(f"{prefix}queued").dec()
            else:
                metrics.gauge("jobs.running").dec()
                if prefix is not None:
                    metrics.gauge(f"{prefix}in_flight").dec()
                    trace = self._trace
                    exemplar = (
                        {"trace_id": trace.trace_id, "job_id": self.job_id}
                        if trace is not None
                        else None
                    )
                    metrics.histogram(f"{prefix}latency_seconds").observe(
                        time.monotonic() - self._submitted_at, exemplar=exemplar
                    )
            metrics.counter(f"jobs.{status}").inc()
            if prefix is not None:
                metrics.counter(f"{prefix}{status}").inc()

    def _push_result(self, result: SimulationResult) -> None:
        with self._condition:
            self._results.append(result)
            index = len(self._results) - 1
            self._condition.notify_all()
        journal = self._journal
        if journal is not None:
            try:
                journal.record_point(self.job_id, index)
            except Exception:  # noqa: BLE001 — a full disk must not hang stream() callers
                if self._metrics is not None:
                    self._metrics.counter("journal.write_errors").inc()

    @property
    def _cancelled(self) -> bool:
        with self._condition:
            return self._cancel_requested

    def __repr__(self) -> str:
        return f"JobHandle(id={self.job_id}, status={self.status()!r}, method={self.request.method!r})"


class JobService:
    """Accepts simulation jobs and runs them on a shared engine pool.

    Parameters
    ----------
    max_workers:
        Size of the worker thread pool (created lazily on first submit).
    pool:
        The :class:`EnginePool` leased engines come from; one service-owned
        pool by default.  Passing a shared pool lets several services (or a
        service plus a session) draw from the same warm engines.
    max_retained_jobs:
        Finished handles kept for ``poll``/``result`` lookups.  Each submit
        evicts the oldest *terminal* handles beyond this bound (running and
        queued jobs are never evicted), so a long-running service does not
        accumulate every past job's result states.  ``None`` retains all.
    process_workers:
        Size of the **process-backed batch tier**: when set, ``param_grid``
        sweeps are split into chunks and executed on a pool of spawned
        worker processes, each compiling the circuit once and keeping warm
        engines between chunks.  Threads only escape the GIL inside numpy
        kernels; CPU-bound multi-user sweep traffic scales past it entirely
        on this tier.  Jobs whose payload (circuit, options, grid) does not
        pickle fall back to the thread tier transparently.  Single-point
        jobs always run on threads (a process round-trip costs more than it
        can win back on one point).
    process_chunk_points:
        Grid points per process-tier chunk (default: grid split evenly, two
        chunks per worker, so chunk completions stream results back while
        later chunks still run).
    metrics:
        The :class:`~repro.obs.MetricsRegistry` service-level instruments
        record into — queue depth and queue-wait, jobs running, per-tier
        execute latency (p50/p95/p99), terminal counters (done / error /
        cancelled).  One service-owned registry by default; pass
        :func:`repro.obs.global_registry` to fold these into the
        process-wide snapshot.
    """

    def __init__(
        self,
        max_workers: int = 4,
        pool: EnginePool | None = None,
        max_retained_jobs: int | None = 256,
        process_workers: int | None = None,
        process_chunk_points: int | None = None,
        metrics: MetricsRegistry | None = None,
        scheduler=None,
        admission=None,
        journal=None,
        tracer=None,
    ) -> None:
        if max_workers < 1:
            raise QymeraError("JobService needs at least one worker")
        if max_retained_jobs is not None and max_retained_jobs < 1:
            raise QymeraError("max_retained_jobs must be positive (or None to retain all)")
        if process_workers is not None and process_workers < 1:
            raise QymeraError("process_workers must be positive when given")
        if process_chunk_points is not None and process_chunk_points < 1:
            raise QymeraError("process_chunk_points must be positive when given")
        if admission is not None and scheduler is None:
            raise QymeraError("admission control needs a scheduler (it prices the fair queue)")
        self.max_workers = int(max_workers)
        self.max_retained_jobs = max_retained_jobs
        self.process_workers = process_workers
        self.process_chunk_points = process_chunk_points
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else EnginePool()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Serving-tier collaborators (see repro.service.server): a
        #: FairScheduler replaces the executor's FIFO with per-tenant DRR
        #: queues fed by a dispatcher thread; an AdmissionController prices
        #: submits against the queued backlog; a JobJournal makes every
        #: lifecycle edge durable and replayable.
        self.scheduler = scheduler
        self.admission = admission
        self.journal = journal
        #: Optional :class:`~repro.obs.Tracer` for request-scoped tracing:
        #: job spans open against it (engine spans nest under them on the
        #: same thread), and when it carries a ``request_store`` the service
        #: records admission / queue-wait / request-root spans there and
        #: seals each request's entry on its terminal transition.
        self.tracer = tracer
        self._executor: ThreadPoolExecutor | None = None
        self._process_executor: ProcessPoolExecutor | None = None
        self._dispatcher: threading.Thread | None = None
        self._dispatch_stop = threading.Event()
        self._inflight = threading.Semaphore(self.max_workers)
        self._jobs: dict[int, JobHandle] = {}
        start_id = 1
        if journal is not None:
            # Never reuse a job id a previous incarnation journaled: the
            # journal is one append-only history across restarts.
            entries = journal.entries()
            if entries:
                start_id = max(entry.job_id for entry in entries) + 1
        self._ids = itertools.count(start_id)
        self._lock = threading.Lock()
        self._closed = False
        self._process_chunks = 0
        self._process_points = 0
        self._process_fallbacks = 0
        self._worker_traces_dropped = 0

    # ------------------------------------------------------------ submission

    def submit(self, request: JobRequest | None = None, /, **kwargs) -> JobHandle:
        """Queue a job and return its handle immediately.

        Accepts a prebuilt :class:`JobRequest` or its fields as keyword
        arguments (``circuit=..., method=..., params=...``).
        """
        if request is None:
            request = JobRequest(**kwargs)
        elif kwargs:
            raise QymeraError("pass either a JobRequest or keyword fields, not both")
        return self._submit_request(request)

    def _trace_store(self):
        """The tracer's request store, or None when tracing is not wired."""
        return self.tracer.request_store if self.tracer is not None else None

    def _submit_request(self, request: JobRequest, resumed_from: int | None = None) -> JobHandle:
        # Trace identity first: the ingress (or replay) may have attached
        # one; a library submit against a traced service mints its own here,
        # head-sampled at the tenant's configured rate.
        trace = request.trace
        store = self._trace_store()
        if trace is None and store is not None:
            rate = 1.0 if self.scheduler is None else self.scheduler.sample_rate(request.tenant)
            trace = request.trace = TraceContext.generate(sampled=random.random() < rate)
        if trace is not None and store is not None:
            store.open(trace, tenant=request.tenant)
        else:
            # No store to seal into: don't carry half-wired tracing state.
            store = None
        # Admission control prices the submit against the fair queue's
        # backlog *before* a handle exists — a rejected submit burns no job
        # id and leaves no journal record.  Replayed jobs skip it: they were
        # admitted by a previous incarnation.
        cost = 1.0
        if self.admission is not None and resumed_from is None:
            decision = self.admission.assess(
                request, self.scheduler.queued_cost(), self.scheduler.queued_jobs()
            )
            cost = decision.cost
            if store is not None:
                assessed = time.perf_counter()
                store.record(span_record(
                    "admission",
                    trace_id=trace.trace_id,
                    parent_span_id=trace.span_id,
                    start_s=assessed - decision.elapsed_s,
                    end_s=assessed,
                    attrs={
                        "action": decision.action,
                        "cost_units": round(decision.cost, 3),
                        "reason": decision.reason,
                    },
                ))
            if decision.action != "admit":
                self.metrics.counter("jobs.rejected").inc()
                self.metrics.counter(f"tenant.{request.tenant}.rejected").inc()
                if store is not None:
                    self._seal_rejected(trace, request, decision.reason)
                from .server.admission import AdmissionRejected

                raise AdmissionRejected(
                    f"admission control rejected the submit ({decision.reason}; "
                    f"cost {decision.cost:.1f} units)",
                    retry_after=decision.retry_after,
                    reason=decision.reason,
                )
        with self._lock:
            if self._closed:
                raise QymeraError("the job service has been shut down")
            self._evict_terminal_locked()
            job_id = next(self._ids)
            handle = JobHandle(job_id, request)
            handle._metrics = self.metrics
            handle._tenant_prefix = f"tenant.{request.tenant}."
            self._jobs[job_id] = handle
        handle._enqueued_pc = time.perf_counter()
        if trace is not None:
            handle._trace = trace
            if store is not None:
                handle._trace_seal = self._seal_trace
                store.bind_job(trace.trace_id, job_id)
        # Journal before enqueueing: once the scheduler can dispatch the
        # handle, every lifecycle edge must already have somewhere durable
        # to land.
        if self.journal is not None:
            handle._journal = self.journal
            self.journal.record_submitted(
                job_id,
                request,
                resumed_from=resumed_from,
                trace_id=trace.trace_id if trace is not None else "",
            )
        if self.scheduler is not None:
            try:
                self.scheduler.submit(handle, cost=cost)
            except QymeraError as exc:
                # Quota-rejected: the handle never escaped, drop it so the
                # id neither lingers in lookups nor counts as accepted, and
                # close its journal entry so replay never resurrects it.
                with self._lock:
                    self._jobs.pop(job_id, None)
                if self.journal is not None:
                    try:
                        self.journal.record_terminal(job_id, JOB_CANCELLED, error=f"quota: {exc}")
                    except Exception:  # noqa: BLE001
                        self.metrics.counter("journal.write_errors").inc()
                self.metrics.counter("jobs.rejected").inc()
                self.metrics.counter(f"tenant.{request.tenant}.rejected").inc()
                if store is not None:
                    self._seal_rejected(trace, request, "quota")
                raise
            handle._on_queue_cancel = self.scheduler.remove
        self.metrics.counter("jobs.submitted").inc()
        self.metrics.gauge("jobs.queue_depth").inc()
        self.metrics.counter(f"tenant.{request.tenant}.submitted").inc()
        self.metrics.gauge(f"tenant.{request.tenant}.queued").inc()
        with self._lock:
            if self._closed:
                # Shutdown raced the submit: withdraw cleanly (and close the
                # journal entry so replay does not resurrect it).
                self._jobs.pop(job_id, None)
                if self.scheduler is not None:
                    self.scheduler.remove(handle)
                handle._transition(JOB_CANCELLED)
                raise QymeraError("the job service has been shut down")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="qymera-job"
                )
            if self.scheduler is None:
                handle._future = self._executor.submit(self._run_job, handle)
            elif self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="qymera-dispatch", daemon=True
                )
                self._dispatcher.start()
        return handle

    # ----------------------------------------------------- request tracing

    def _seal_rejected(self, trace: TraceContext, request: JobRequest, reason: str) -> None:
        """Close a rejected submit's trace: root span + terminal seal."""
        store = self._trace_store()
        if store is None:
            return
        now = time.perf_counter()
        store.record(span_record(
            "request",
            trace_id=trace.trace_id,
            span_id=trace.span_id,
            parent_span_id=trace.parent_span_id,
            start_s=trace.started_s,
            end_s=now,
            attrs={"tenant": request.tenant, "method": request.method,
                   "status": "rejected", "reason": reason},
        ))
        store.seal(trace.trace_id, "rejected", now - trace.started_s)

    def _seal_trace(self, handle: JobHandle, status: str) -> None:
        """Terminal-transition hook: record the request root span and seal.

        The root span covers submit-to-terminal, so every child recorded for
        the request (admission, queue wait, job, engine queries) nests
        inside its interval — the non-overlapping-parent property the trace
        tests assert.
        """
        trace = handle._trace
        store = self._trace_store()
        if trace is None or store is None:
            return
        now = time.perf_counter()
        store.record(span_record(
            "request",
            trace_id=trace.trace_id,
            span_id=trace.span_id,
            parent_span_id=trace.parent_span_id,
            start_s=trace.started_s,
            end_s=now,
            attrs={
                "job_id": handle.job_id,
                "tenant": handle.request.tenant,
                "method": handle.request.method,
                "status": status,
                "sampled": trace.sampled,
            },
        ))
        store.seal(trace.trace_id, status, now - trace.started_s)

    def _record_queue_wait(self, handle: JobHandle) -> None:
        """Render the enqueue->dispatch gap as the request's queue-wait span."""
        trace = handle._trace
        store = self._trace_store()
        if trace is None or store is None or handle._enqueued_pc is None:
            return
        now = time.perf_counter()
        attrs: dict = {
            "tenant": handle.request.tenant,
            "cost_units": round(handle._cost_units, 3),
        }
        if handle._drr_rounds:
            attrs["drr_rounds"] = handle._drr_rounds
        store.record(span_record(
            "queue_wait",
            trace_id=trace.trace_id,
            parent_span_id=trace.span_id,
            start_s=handle._enqueued_pc,
            end_s=now,
            attrs=attrs,
        ))

    @contextmanager
    def _job_span(self, handle: JobHandle):
        """The job's execution span, joined to its request trace when sampled.

        Untraced requests keep the old behavior (``maybe_span``: nest under
        whatever is active, or root against the env tracer).  Traced,
        *sampled* requests activate their context and open the span against
        the service tracer (falling back to the env-shared one), so the job
        tree carries the trace id and parents under the request root.
        Traced-but-unsampled requests skip execution spans entirely — that
        is the head-sampling saving.
        """
        request = handle.request
        trace = handle._trace
        if trace is None:
            with maybe_span("job", job_id=handle.job_id, method=request.method) as span:
                yield span
            return
        if not trace.sampled:
            yield None
            return
        tracer = self.tracer
        if tracer is None and tracing_env_enabled():
            tracer = shared_tracer()
        if tracer is None:
            yield None
            return
        with activate_context(trace):
            with tracer.span(
                "job", job_id=handle.job_id, method=request.method, tenant=request.tenant
            ) as span:
                yield span

    def _dispatch_loop(self) -> None:
        """Feed the executor from the fair scheduler, one slot per worker.

        The semaphore caps outstanding futures at ``max_workers``, so the
        executor's internal FIFO never grows a backlog of its own — ordering
        decisions stay with the scheduler, right up to the moment a worker
        is actually free.
        """
        while True:
            handle = self.scheduler.next_job(timeout=0.25)
            if handle is None:
                if self._dispatch_stop.is_set():
                    return
                continue
            self._inflight.acquire()
            with self._lock:
                executor = self._executor
            if executor is None:
                # Shut down between pick and dispatch: the drain path owns
                # queued handles, this one is ours to finalize.
                self._inflight.release()
                self.scheduler.on_finish(handle)
                handle._transition(JOB_CANCELLED)
                continue
            with handle._condition:
                already_cancelled = handle._cancel_requested
            if already_cancelled:
                self._inflight.release()
                self.scheduler.on_finish(handle)
                handle._transition(JOB_CANCELLED)
                continue
            future = executor.submit(self._run_scheduled, handle)
            with handle._condition:
                handle._future = future

    def _run_scheduled(self, handle: JobHandle) -> None:
        try:
            self._run_job(handle)
        finally:
            self.scheduler.on_finish(handle)
            self._inflight.release()
            if self.admission is not None:
                self.admission.observe_served(handle._cost_units)

    def _evict_terminal_locked(self) -> None:
        """Drop the oldest finished handles beyond ``max_retained_jobs``."""
        if self.max_retained_jobs is None:
            return
        excess = len(self._jobs) - (self.max_retained_jobs - 1)
        if excess <= 0:
            return
        for job_id in sorted(self._jobs):
            if excess <= 0:
                break
            if self._jobs[job_id].status() in _TERMINAL:
                del self._jobs[job_id]
                excess -= 1

    def purge(self) -> int:
        """Drop every finished handle now; returns how many were removed.

        Only *terminal* handles are ever dropped — queued and running jobs
        survive any purge by construction (same guarantee as the per-submit
        retention eviction).  When the service has a journal, purged jobs
        remain answerable through :meth:`final_status`.
        """
        with self._lock:
            terminal = [job_id for job_id, handle in self._jobs.items() if handle.status() in _TERMINAL]
            for job_id in terminal:
                del self._jobs[job_id]
            return len(terminal)

    def _run_job(self, handle: JobHandle) -> None:
        if handle._cancelled:
            handle._transition(JOB_CANCELLED)
            return
        self._record_queue_wait(handle)
        handle._transition(JOB_RUNNING)
        request = handle.request
        # Any escape — QymeraError or not (bad constructor kwargs raise
        # TypeError, bad parameter values ValueError) — must land the job in
        # a terminal state, or result()/stream() callers block forever.
        if request.param_grid is not None and self._use_process_tier(request):
            try:
                with self.metrics.histogram("jobs.process_tier_seconds").time(), \
                        self._job_span(handle) as job_span:
                    finished = self._run_grid_in_processes(handle, request, job_span)
                # The DONE transition happens *after* the job span closes so
                # the sealed trace already contains the complete span tree.
                if finished:
                    handle._transition(JOB_DONE)
            except Exception as exc:
                handle._transition(JOB_ERROR, exc)
            return
        try:
            key, engine = self.pool.acquire(request.method, request.options)
        except Exception as exc:
            handle._transition(JOB_ERROR, exc)
            return
        try:
            # When tracing is on (a request trace, REPRO_TRACE, or an
            # engine-level tracer), the job span becomes the root this
            # thread's compile/query spans nest under; with tracing off it
            # is a no-op context.
            with self.metrics.histogram("jobs.thread_tier_seconds").time(), \
                    self._job_span(handle):
                executable = engine.compile(request.circuit)
                if request.param_grid is not None:
                    for point in request.param_grid:
                        if handle._cancelled:
                            handle._transition(JOB_CANCELLED)
                            return
                        handle._push_result(executable.bind(point).execute())
                else:
                    handle._push_result(executable.bind(request.params or {}).execute())
            handle._transition(JOB_DONE)
        except Exception as exc:
            handle._transition(JOB_ERROR, exc)
        finally:
            self.pool.release(key, engine)

    # -------------------------------------------------- process-backed tier

    def _use_process_tier(self, request: JobRequest) -> bool:
        """Route a grid job to worker processes when possible.

        The payload must survive pickling (spawned workers receive it
        serialized); anything that does not — exotic options, closures in a
        circuit — silently stays on the thread tier, counted in the stats.
        """
        if self.process_workers is None or not request.param_grid:
            return False
        try:
            # Probe with one representative point, not the whole grid: the
            # circuit and options dominate picklability (points are plain
            # name->float dicts), and each chunk pickles its own points at
            # submit time anyway — serializing a large grid twice would
            # stall the worker thread before the first chunk dispatches.
            pickle.dumps(
                (request.circuit, dict(request.options), dict(request.param_grid[0]))
            )
        except Exception:
            with self._lock:
                self._process_fallbacks += 1
            return False
        return True

    def _acquire_process_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise QymeraError("the job service has been shut down")
            if self._process_executor is None:
                # Spawn (not fork): the service itself is multi-threaded, and
                # forking a threaded process can deadlock held locks.
                self._process_executor = ProcessPoolExecutor(
                    max_workers=self.process_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._process_executor

    def _run_grid_in_processes(self, handle: JobHandle, request: JobRequest, job_span=None) -> bool:
        """Fan a sweep grid out over the process pool, streaming in order.

        The grid is split into contiguous chunks; each worker process
        compiles the circuit once per chunk (warm engines persist between
        chunks of the same method+options).  Chunk futures are drained in
        submission order so per-point results stream back to ``stream()``
        callers in grid order; cancellation takes effect at the next chunk
        boundary.

        Returns True when every chunk completed (caller transitions DONE
        after the job span closes), False after a cancellation (already
        transitioned here).  Exceptions propagate after cancelling pending
        chunks.
        """
        executor = self._acquire_process_executor()
        points = [dict(point) for point in request.param_grid or []]
        workers = self.process_workers or 1
        if self.process_chunk_points is not None:
            chunk_size = self.process_chunk_points
        else:
            chunk_size = max(1, -(-len(points) // (workers * 2)))
        chunks = [points[start : start + chunk_size] for start in range(0, len(points), chunk_size)]
        options = dict(request.options)
        # Ship the trace identity with each chunk so worker-side spans carry
        # the request's trace id and parent under the job span; fall back to
        # the request root when the job span itself was not traced.
        trace_arg = None
        if job_span is not None and getattr(job_span, "trace_id", None):
            trace_arg = (job_span.trace_id, job_span.span_id)
        elif handle._trace is not None and handle._trace.sampled:
            trace_arg = (handle._trace.trace_id, handle._trace.span_id)
        futures = [
            executor.submit(
                _execute_grid_chunk, request.method, options, request.circuit, chunk, trace_arg
            )
            for chunk in chunks
        ]
        with self._lock:
            self._process_chunks += len(chunks)
            self._process_points += len(points)
        try:
            for future in futures:
                if handle._cancelled:
                    for pending in futures:
                        pending.cancel()
                    handle._transition(JOB_CANCELLED)
                    return False
                results, worker_stats = future.result()
                self._merge_worker_stats(handle, worker_stats)
                for result in results:
                    handle._push_result(result)
            return True
        except Exception:
            for pending in futures:
                pending.cancel()
            raise

    def _merge_worker_stats(self, handle: JobHandle, worker_stats: dict) -> None:
        """Fold one chunk's worker-process snapshot into the job metadata.

        Per worker pid the job keeps the *latest* engine-stats snapshot
        (counters are cumulative in the worker, so the last chunk's snapshot
        subsumes earlier ones) and accumulates the points it executed.
        Worker traces are appended to the parent's shared ring when tracing
        is enabled here too, so ``recent_traces()`` in the parent shows
        process-tier executions next to local ones.
        """
        pid = worker_stats.get("pid")
        tier = handle.metadata.setdefault("process_tier", {"workers": {}})
        worker = tier["workers"].setdefault(pid, {"points": 0, "chunks": 0})
        worker["points"] += int(worker_stats.get("points", 0))
        worker["chunks"] += 1
        if "engine" in worker_stats:
            worker["engine"] = worker_stats["engine"]
        dropped = int(worker_stats.get("traces_dropped", 0))
        if dropped:
            # Workers cap the traces they ship per chunk; surface the
            # truncation everywhere a reader might otherwise assume the
            # trace set is complete.
            tier["traces_dropped"] = tier.get("traces_dropped", 0) + dropped
            with self._lock:
                self._worker_traces_dropped += dropped
            self.metrics.counter("jobs.worker_traces_dropped").inc(dropped)
            tracer = self.tracer
            if tracer is None and tracing_env_enabled():
                tracer = shared_tracer()
            if tracer is not None:
                with tracer._lock:
                    tracer.traces_dropped += dropped
        traces = worker_stats.get("traces") or []
        if traces:
            self.metrics.counter("jobs.worker_traces").inc(len(traces))
            store = self._trace_store()
            for trace in traces:
                # perf_counter() is not comparable across processes, so tag
                # each shipped span tree with its origin pid — trace readers
                # only assert timing monotonicity within one process.
                trace.setdefault("attrs", {})["worker_pid"] = pid
                if store is not None and trace.get("trace_id"):
                    store.record(trace)
            if tracing_env_enabled():
                ring = shared_tracer().ring
                for trace in traces:
                    ring.append(trace)

    # --------------------------------------------------------------- queries

    def job(self, job_id: int) -> JobHandle:
        """Look a job up by id."""
        with self._lock:
            if job_id not in self._jobs:
                raise QymeraError(f"no job with id {job_id}")
            return self._jobs[job_id]

    def final_status(self, job_id: int) -> dict | None:
        """Journal-backed answer for a job whose handle is gone.

        Retention eviction and :meth:`purge` drop terminal handles, but the
        journal remembers their final state: this returns it (status,
        completed points, error) or ``None`` when no journal is attached or
        the id was never journaled.  The HTTP front end renders the
        difference as ``410 Gone`` (known, pruned) vs ``404`` (never seen).
        """
        if self.journal is None:
            return None
        return self.journal.final_status(job_id)

    def replay_journal(self) -> list[JobHandle]:
        """Re-enqueue every incomplete job the journal recorded.

        Called once at startup by a restarted server: grid jobs resume at
        their first unfinished point (the journal's ``point`` records prove
        what is already computed), single-point jobs re-run whole.  Returns
        the new handles, linked to their originals via the journal's
        ``resumed_from`` field.  Jobs whose payload was not serializable are
        counted in ``jobs.replay_skipped`` and left terminal-less in the
        old journal generation.
        """
        if self.journal is None:
            raise QymeraError("replay needs a journal-backed service")
        handles = []
        for plan in self.journal.replay_plan():
            if plan["request"] is None:
                self.metrics.counter("jobs.replay_skipped").inc()
                continue
            if plan.get("trace_id") and self._trace_store() is not None:
                # Re-adopt the original submit's trace id (fresh root span
                # id): the replayed job's spans join the original request's
                # trace, preserving lineage across the restart.
                plan["request"].trace = TraceContext(plan["trace_id"], sampled=True)
            handle = self._submit_request(plan["request"], resumed_from=plan["job_id"])
            # Close the original entry so a second restart replays the
            # resumed job's own journal state, not the stale original again.
            self.journal.record_terminal(
                plan["job_id"], JOB_CANCELLED, error=f"superseded by replay job {handle.job_id}"
            )
            handles.append(handle)
            self.metrics.counter("jobs.replayed").inc()
        return handles

    def poll(self, job_id: int) -> dict:
        """Progress snapshot of one job (see :meth:`JobHandle.poll`)."""
        return self.job(job_id).poll()

    def result(self, job_id: int, timeout: float | None = None):
        """Block for one job's result (see :meth:`JobHandle.result`)."""
        return self.job(job_id).result(timeout=timeout)

    def stream(self, job_id: int, timeout: float | None = None) -> Iterator[SimulationResult]:
        """Stream one job's per-point results (see :meth:`JobHandle.stream`)."""
        return self.job(job_id).stream(timeout=timeout)

    def jobs(self) -> list[JobHandle]:
        """All handles this service has accepted, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def stats(self) -> dict:
        """Service-level counters: jobs by status, engine pool, process tier."""
        by_status: dict[str, int] = {}
        for handle in self.jobs():
            status = handle.status()
            by_status[status] = by_status.get(status, 0) + 1
        with self._lock:
            process_tier = {
                "enabled": self.process_workers is not None,
                "workers": self.process_workers,
                "chunks": self._process_chunks,
                "points": self._process_points,
                "fallbacks": self._process_fallbacks,
                "traces_dropped": self._worker_traces_dropped,
            }
        stats = {
            "jobs": by_status,
            "pool": self.pool.stats(),
            "process_tier": process_tier,
            "metrics": self.metrics.snapshot(),
        }
        if self.scheduler is not None:
            stats["scheduler"] = self.scheduler.snapshot()
        if self.admission is not None:
            stats["admission"] = self.admission.stats()
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        if self.tracer is not None:
            stats["tracing"] = self.tracer.stats()
        return stats

    # -------------------------------------------------------------- lifetime

    def shutdown(self, wait: bool = True, drain_timeout: float | None = None) -> None:
        """Stop accepting work and wind the service down in order.

        Queued (never-started) jobs are cancelled immediately; running jobs
        drain — forever with ``wait=True`` and no deadline, or up to
        ``drain_timeout`` seconds, after which they get a cancel request
        (grid jobs stop at their next point boundary) and the executor
        teardown collects them.  The journal is flushed after the last
        lifecycle record, and a service-owned engine pool is closed so a
        release racing the shutdown discards its lease instead of leaking
        it into a pool nobody drains.
        """
        with self._lock:
            executor = self._executor
            process_executor = self._process_executor
            self._executor = None
            self._process_executor = None
            self._closed = True
            dispatcher = self._dispatcher
            self._dispatcher = None
        if self.scheduler is not None:
            self._dispatch_stop.set()
            for handle in self.scheduler.drain():
                handle._transition(JOB_CANCELLED)
            self.scheduler.close()
            if dispatcher is not None:
                dispatcher.join(timeout=10.0)
        if wait:
            deadline = None if drain_timeout is None else time.monotonic() + drain_timeout
            for handle in self.jobs():
                if deadline is None:
                    handle.wait(None)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not handle.wait(remaining):
                    handle.cancel()
        if executor is not None:
            executor.shutdown(wait=wait)
        if process_executor is not None:
            process_executor.shutdown(wait=wait)
        if self.journal is not None:
            try:
                self.journal.flush()
            except Exception:  # noqa: BLE001 — shutdown must complete regardless
                self.metrics.counter("journal.write_errors").inc()
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown(wait=True)
