"""End-to-end session: the programmatic equivalent of the Qymera web UI.

The original system is a web application with three tabs (Fig. 3): a Circuit
Panel for building/loading circuits, a Simulation Panel for selecting methods
and running them, and a Visualization Panel for inspecting results and
benchmarks.  :class:`QymeraSession` reproduces that workflow as a plain
Python facade, wiring the four architecture layers of Fig. 1 together:

* the **Circuit Panel** wraps the Circuit Layer (builder, file input, code
  input, parameterized families);
* the **Simulation Panel** wraps the Translation + Simulation Layers
  (SQL generation, backend selection, runs, sweeps, benchmarks);
* the **Output Panel** wraps the Output Layer (state tables, histograms,
  Bloch views, exports).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from ..backends import DuckDBBackend, MemDBBackend, SQLiteBackend, available_backends
from ..bench.metrics import BenchmarkRecord
from ..bench.runner import BenchmarkRunner, default_method_factories
from ..core.builder import CircuitGridBuilder
from ..core.circuit import QuantumCircuit
from ..errors import QymeraError
from ..io.json_io import load_circuit, loads_circuit
from ..io.qasm import load_qasm, loads_qasm
from ..io.quil import loads_quil
from ..output.analysis import bloch_vector, entanglement_entropy
from ..output.export import result_to_json, write_records_csv, write_state_csv
from ..output.result import SimulationResult, SparseState
from ..output.sampling import sample_counts
from ..output.visualization import (
    bloch_text,
    comparison_table,
    format_amplitude_table,
    histogram,
    probability_histogram,
)
from ..simulators import available_simulators
from ..sql.translator import SQLTranslation
from .jobs import JobHandle, JobService, make_method, options_fingerprint


class CircuitPanel:
    """Circuit construction and import (the Circuit Layer front-ends)."""

    def __init__(self) -> None:
        self._circuits: dict[str, QuantumCircuit] = {}

    # ------------------------------------------------------------- building

    def new_builder(self, num_qubits: int, name: str = "builder") -> CircuitGridBuilder:
        """Start a drag-and-drop style grid builder."""
        return CircuitGridBuilder(num_qubits, name=name)

    def add_circuit(self, circuit: QuantumCircuit, name: str | None = None) -> str:
        """Register a circuit under a name (code-input path)."""
        key = name or circuit.name
        self._circuits[key] = circuit
        return key

    def add_from_builder(self, builder: CircuitGridBuilder, name: str | None = None) -> str:
        """Compile a grid builder and register the resulting circuit."""
        circuit = builder.build(name=name)
        return self.add_circuit(circuit, name)

    # --------------------------------------------------------------- loading

    def load_file(self, path: str | Path, name: str | None = None) -> str:
        """Load a circuit file (.qasm or .json), registering it by name."""
        path = Path(path)
        if path.suffix.lower() == ".qasm":
            circuit = load_qasm(path, name=name)
        elif path.suffix.lower() == ".json":
            circuit = load_circuit(path)
        else:
            raise QymeraError(f"unsupported circuit file type {path.suffix!r} (expected .qasm or .json)")
        return self.add_circuit(circuit, name)

    def load_text(self, text: str, fmt: str, name: str | None = None) -> str:
        """Load circuit source text: ``fmt`` is ``qasm``, ``json`` or ``quil``."""
        fmt = fmt.lower()
        if fmt == "qasm":
            circuit = loads_qasm(text, name=name or "qasm_circuit")
        elif fmt == "json":
            circuit = loads_circuit(text)
        elif fmt == "quil":
            circuit = loads_quil(text, name=name or "quil_program")
        else:
            raise QymeraError(f"unsupported circuit text format {fmt!r}")
        return self.add_circuit(circuit, name)

    # ------------------------------------------------------------- retrieval

    def get(self, name: str) -> QuantumCircuit:
        """Fetch a registered circuit."""
        if name not in self._circuits:
            raise QymeraError(f"no circuit named {name!r}; registered: {sorted(self._circuits)}")
        return self._circuits[name]

    def names(self) -> list[str]:
        """Names of all registered circuits."""
        return sorted(self._circuits)

    def bind(self, name: str, values: Mapping[str, float], new_name: str | None = None) -> str:
        """Bind a parameterized circuit family and register the bound instance."""
        bound = self.get(name).bind_parameters(dict(values))
        key = new_name or f"{name}_bound"
        bound.name = key
        return self.add_circuit(bound, key)

    def describe(self, name: str) -> dict:
        """Structural summary of a circuit (shown in the UI's side panel)."""
        circuit = self.get(name)
        return {
            "name": name,
            "num_qubits": circuit.num_qubits,
            "num_gates": circuit.size(),
            "depth": circuit.depth(),
            "two_qubit_gates": circuit.num_nonlocal_gates(),
            "branching_gates": circuit.branching_gate_count() if not circuit.is_parameterized else None,
            "parameters": sorted(parameter.name for parameter in circuit.parameters),
            "counts": circuit.count_ops(),
        }


class SimulationPanel:
    """Method selection and execution (Translation + Simulation Layers).

    Every run goes through the compile–bind–execute pipeline
    (``method.compile(circuit).bind().execute()``).  Method instances are
    pooled per (method, options) combination: reusing the instance keeps the
    memdb backend's engine — and with it the compiled-plan cache — alive
    across runs, so re-running a circuit family (rebinding parameters,
    sweeping a grid) skips SQL parsing and planning after the first run.
    Asynchronous work (sweep grids, concurrent users) goes through
    :meth:`submit`, which queues onto the session's :class:`JobService`.
    """

    def __init__(self, circuit_panel: CircuitPanel, job_service: JobService | None = None) -> None:
        self._circuits = circuit_panel
        self._results: dict[tuple[str, str, tuple], SimulationResult] = {}
        self._method_pool: dict[tuple, object] = {}
        self._jobs = job_service if job_service is not None else JobService()

    # -------------------------------------------------------------- methods

    @staticmethod
    def available_methods() -> list[str]:
        """All simulation methods usable in this environment."""
        return sorted(set(available_backends()) | set(available_simulators()))

    @staticmethod
    def _make_method(method: str, **options):
        return make_method(method, **options)

    # ------------------------------------------------------------------ runs

    def translate(self, circuit_name: str, dialect: str = "sqlite", fuse: bool = False) -> SQLTranslation:
        """Show the SQL that would run for a circuit (the demo's inspection view)."""
        backends = {"sqlite": SQLiteBackend, "memdb": MemDBBackend, "duckdb": DuckDBBackend}
        if dialect not in backends:
            raise QymeraError(
                f"unknown SQL dialect {dialect!r}; expected one of {sorted(backends)}"
            )
        # DuckDBBackend raises BackendUnavailableError when the package is absent.
        backend = backends[dialect](fuse=fuse)
        return backend.translate(self._circuits.get(circuit_name))

    def explain(self, circuit_name: str, analyze: bool = False, **options) -> str:
        """The memdb optimizer's plan for a circuit's generated query.

        Shows the chosen logical rewrites, join order, the costed
        fused-vs-generic operator decision, estimated (and with
        ``analyze=True`` actual) cardinalities, and plan-cache provenance.
        Uses the pooled memdb method instance so provenance reflects the
        same plan cache the runs hit.
        """
        circuit = self._circuits.get(circuit_name)
        backend = self._pooled_method("memdb", options)
        if not isinstance(backend, MemDBBackend):
            raise QymeraError("EXPLAIN is only available on the memdb backend")
        return backend.explain_circuit(circuit, analyze=analyze)

    def engine_stats(self, method: str = "memdb", **options) -> dict:
        """Unified engine statistics of a pooled backend instance.

        Returns the versioned schema from :mod:`repro.obs.schema` —
        ``plan_cache``, ``optimizer``, ``adaptive``, ``parallel``,
        ``storage`` and ``tracing`` sections under one ``schema_version``.
        The ``optimizer`` block includes the ``adaptive`` feedback-loop
        state: re-plans requested, correction factors learned from observed
        actual-vs-estimated cardinalities, and the most recent trigger
        events (see :meth:`adaptive_stats` for just that slice).
        """
        backend = self._pooled_method(method, options)
        if not isinstance(backend, MemDBBackend):
            raise QymeraError(f"engine statistics are not exposed by method {method!r}")
        return backend.engine_stats()

    def recent_traces(self, **options) -> list[dict]:
        """Recent query span trees of the pooled memdb backend (needs tracing on)."""
        backend = self._pooled_method("memdb", options)
        if not isinstance(backend, MemDBBackend):
            raise QymeraError("query traces are only available on the memdb backend")
        return backend.recent_traces()

    def slow_queries(self, **options) -> list[dict]:
        """Slow-query log entries of the pooled memdb backend (needs tracing on)."""
        backend = self._pooled_method("memdb", options)
        if not isinstance(backend, MemDBBackend):
            raise QymeraError("the slow-query log is only available on the memdb backend")
        return backend.slow_queries()

    def adaptive_stats(self, **options) -> dict:
        """The memdb adaptive re-optimization state of the pooled backend."""
        return self.engine_stats("memdb", **options)["optimizer"].get("adaptive", {})

    def parallel_stats(self, **options) -> dict:
        """The memdb morsel-parallel execution state of the pooled backend."""
        return self.engine_stats("memdb", **options).get("parallel", {})

    def run(self, circuit_name: str, method: str = "sqlite", **options) -> SimulationResult:
        """Simulate a registered circuit with one method.

        Back-compat facade over the compile–bind–execute pipeline; results
        are stored under (circuit, method, options-fingerprint) so runs of
        the same circuit with different options never overwrite each other.
        """
        circuit = self._circuits.get(circuit_name)
        simulator = self._pooled_method(method, options)
        result = simulator.compile(circuit).bind().execute()
        self._results[(circuit_name, method, options_fingerprint(options))] = result
        return result

    def submit(
        self,
        circuit_name: str,
        method: str = "memdb",
        params: Mapping[str, float] | None = None,
        param_grid: Sequence[Mapping[str, float]] | None = None,
        **options,
    ) -> JobHandle:
        """Queue a run (or a whole sweep grid) on the session's job service.

        Returns immediately with a :class:`~repro.service.jobs.JobHandle`;
        use its ``poll`` / ``result`` / ``stream`` methods to follow it.
        """
        return self._jobs.submit(
            circuit=self._circuits.get(circuit_name),
            method=method,
            options=options,
            params=params,
            param_grid=param_grid,
            tag=circuit_name,
        )

    @property
    def jobs(self) -> JobService:
        """The job service backing :meth:`submit`."""
        return self._jobs

    def _pooled_method(self, method: str, options: Mapping[str, object]):
        # Deliberately NOT options_fingerprint (the results/job key): the
        # pool key uses the raw option values so that unhashable — typically
        # mutable — values never pool.  Pooling them by repr would alias a
        # backend built around an option object that the caller mutates
        # later; a fresh instance per run is the safe fallback.
        try:
            key = (method, tuple(sorted(options.items())))
            simulator = self._method_pool.get(key)
        except TypeError:
            # Unhashable option values: fall back to a fresh instance.
            return self._make_method(method, **options)
        if simulator is None:
            simulator = self._make_method(method, **options)
            self._method_pool[key] = simulator
        return simulator

    def run_all(
        self,
        circuit_name: str,
        methods: Sequence[str] | None = None,
        options: Mapping[str, Mapping[str, object]] | None = None,
    ) -> dict[str, SimulationResult]:
        """Simulate one circuit with several methods (the comparison view).

        ``options`` maps a method name to the keyword options forwarded to
        that method's run (and thus into the pooled-instance lookup), e.g.
        ``{"memdb": {"fuse": True}}``.
        """
        chosen = list(methods) if methods is not None else self.available_methods()
        per_method = {name: dict(value) for name, value in options.items()} if options else {}
        unknown = sorted(set(per_method) - set(chosen))
        if unknown:
            raise QymeraError(
                f"options given for methods that will not run: {unknown}; running {sorted(chosen)}"
            )
        return {method: self.run(circuit_name, method, **per_method.get(method, {})) for method in chosen}

    def benchmark(
        self,
        workloads: Sequence[str],
        sizes: Sequence[int],
        methods: Sequence[str] | None = None,
        max_state_bytes: int | None = None,
    ) -> list[BenchmarkRecord]:
        """Run the benchmarking suite over named workloads and sizes."""
        factories = default_method_factories(max_state_bytes=max_state_bytes)
        if methods is not None:
            missing = [m for m in methods if m not in factories]
            if missing:
                raise QymeraError(f"unknown benchmark methods {missing}; available: {sorted(factories)}")
            factories = {name: factories[name] for name in methods}
        runner = BenchmarkRunner(methods=factories)
        return runner.run_suite(workloads, sizes)

    def result(self, circuit_name: str, method: str, **options) -> SimulationResult:
        """Fetch a previously computed result.

        Pass the run's options to address one of several stored runs of the
        same (circuit, method); with no options, the lookup falls back to
        the single stored run when it is unambiguous.
        """
        key = (circuit_name, method, options_fingerprint(options))
        if key in self._results:
            return self._results[key]
        matches = [
            value
            for (circuit, run_method, _fingerprint), value in self._results.items()
            if circuit == circuit_name and run_method == method
        ]
        if not options:
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise QymeraError(
                    f"{len(matches)} stored results for circuit {circuit_name!r} with method "
                    f"{method!r}; pass the run's options to disambiguate"
                )
        suffix = " and those options" if options else ""
        raise QymeraError(
            f"no stored result for circuit {circuit_name!r} with method {method!r}{suffix}"
        )

    def results(self) -> dict[tuple[str, str, tuple], SimulationResult]:
        """All stored results keyed by (circuit, method, options fingerprint)."""
        return dict(self._results)


class OutputPanel:
    """Result inspection, visualization and export (the Output Layer).

    Every view accepts the run's keyword ``options`` so that runs of the
    same (circuit, method) with different options can each be inspected;
    with no options the lookup resolves the single stored run.
    """

    def __init__(self, simulation_panel: SimulationPanel) -> None:
        self._simulations = simulation_panel

    def state_table(self, circuit_name: str, method: str, max_rows: int = 32, **options) -> str:
        """The final state as the paper's relational output table."""
        result = self._simulations.result(circuit_name, method, **options)
        return format_amplitude_table(result.state, max_rows=max_rows)

    def probability_histogram(self, circuit_name: str, method: str, **options) -> str:
        """ASCII histogram of measurement probabilities."""
        result = self._simulations.result(circuit_name, method, **options)
        return probability_histogram(result.state)

    def sample_histogram(
        self, circuit_name: str, method: str, shots: int = 1024, seed: int | None = 7, **options
    ) -> str:
        """ASCII histogram of sampled measurement shots."""
        result = self._simulations.result(circuit_name, method, **options)
        return histogram(sample_counts(result.state, shots, seed=seed))

    def bloch_view(self, circuit_name: str, method: str, qubit: int, **options) -> str:
        """Bloch-sphere description of one qubit (the educational visualization)."""
        result = self._simulations.result(circuit_name, method, **options)
        return bloch_text(bloch_vector(result.state, qubit))

    def entanglement(self, circuit_name: str, method: str, qubits: Sequence[int], **options) -> float:
        """Entanglement entropy (bits) of a qubit subset in the final state."""
        result = self._simulations.result(circuit_name, method, **options)
        return entanglement_entropy(result.state, qubits)

    def performance_table(self, circuit_name: str, methods: Sequence[str] | None = None) -> str:
        """Per-method time / memory comparison for one circuit.

        Runs of the same method with different options appear as separate
        rows, distinguished by the ``options`` column.
        """
        stored = self._simulations.results()
        rows = []
        for (name, method, fingerprint), result in sorted(
            stored.items(), key=lambda item: (item[0][0], item[0][1], repr(item[0][2]))
        ):
            if name != circuit_name:
                continue
            if methods is not None and method not in methods:
                continue
            rows.append(
                {
                    "method": method,
                    "options": ", ".join(f"{key}={value!r}" for key, value in fingerprint),
                    "wall_time_s": result.wall_time_s,
                    "peak_state_rows": result.peak_state_rows,
                    "peak_state_bytes": result.peak_state_bytes,
                    "nonzero": result.state.num_nonzero,
                }
            )
        if not rows:
            raise QymeraError(f"no stored results for circuit {circuit_name!r}")
        columns = ["method", "options", "wall_time_s", "peak_state_rows", "peak_state_bytes", "nonzero"]
        if all(not row["options"] for row in rows):
            columns.remove("options")
        return comparison_table(rows, columns=columns)

    def export_state_csv(self, circuit_name: str, method: str, path: str | Path, **options) -> Path:
        """Write the final state's relational rows to CSV."""
        result = self._simulations.result(circuit_name, method, **options)
        return write_state_csv(result.state, path)

    def export_result_json(self, circuit_name: str, method: str, **options) -> str:
        """Full result (state + metadata) as a JSON string."""
        return result_to_json(self._simulations.result(circuit_name, method, **options))

    def export_benchmark_csv(self, records: Sequence[BenchmarkRecord], path: str | Path) -> Path:
        """Write benchmark records to CSV."""
        return write_records_csv([record.to_dict() for record in records], path)


class QymeraSession:
    """One end-to-end session: circuits in, SQL-backed simulation, results out.

    Example (the paper's GHZ walk-through)::

        session = QymeraSession()
        builder = session.circuits.new_builder(3)
        builder.place("h", [0])
        builder.place("cx", [0, 1])
        builder.place("cx", [1, 2])
        session.circuits.add_from_builder(builder, "ghz")
        print(session.simulations.translate("ghz").cte_query())
        session.simulations.run("ghz", "sqlite")
        print(session.output.state_table("ghz", "sqlite"))
    """

    def __init__(self, job_service: JobService | None = None) -> None:
        self.circuits = CircuitPanel()
        self.jobs = job_service if job_service is not None else JobService()
        self.simulations = SimulationPanel(self.circuits, job_service=self.jobs)
        self.output = OutputPanel(self.simulations)

    def quick_run(self, circuit: QuantumCircuit, method: str = "sqlite") -> SimulationResult:
        """Register, run and return in one call (the quickstart path)."""
        name = self.circuits.add_circuit(circuit)
        return self.simulations.run(name, method)

    def final_state(self, circuit: QuantumCircuit, method: str = "sqlite") -> SparseState:
        """Just the final state of a circuit under one method."""
        return self.quick_run(circuit, method).state
