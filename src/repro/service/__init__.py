"""End-to-end session facade (the programmatic web UI)."""

from .session import CircuitPanel, OutputPanel, QymeraSession, SimulationPanel

__all__ = ["CircuitPanel", "OutputPanel", "QymeraSession", "SimulationPanel"]
