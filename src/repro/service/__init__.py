"""End-to-end session facade (the programmatic web UI), the job service,
and the multi-tenant serving tier (:mod:`repro.service.server`)."""

from .jobs import (
    EnginePool,
    JobHandle,
    JobRequest,
    JobService,
    make_method,
    options_fingerprint,
)
from .session import CircuitPanel, OutputPanel, QymeraSession, SimulationPanel

__all__ = [
    "CircuitPanel",
    "EnginePool",
    "JobHandle",
    "JobRequest",
    "JobService",
    "OutputPanel",
    "QymeraSession",
    "SimulationPanel",
    "make_method",
    "options_fingerprint",
]
