"""Cost-model-backed admission control: queue when fair, reject before melting.

Quotas (scheduler.py) protect tenants from each other; admission control
protects the *service* from its aggregate backlog.  Every submit is priced
in cost units by a :class:`CostEstimator` — grid jobs cost their full fan
out — and compared against the cost already queued: under the ceiling the
job is admitted into the fair queue, over it the submit is rejected with a
``retry_after`` derived from the observed service rate, so clients back
off instead of piling onto a melting server.

For memdb-backed jobs the default estimator is genuinely optimizer-backed:
the circuit is translated to its CTE chain once per structure, parsed with
the engine's parser, and priced by the optimizer's
:class:`~repro.backends.memdb.optimizer.cost.CostModel` cardinality
estimates (``estimate_select_input_rows`` per block, CTE outputs chained
via ``set_derived_rows`` exactly like the planner does).  Structures are
memoized, so pricing a sweep's thousandth submit is a dict lookup.  Other
methods — and any translation/parse failure — fall back to a structural
estimate (gates x points, scaled by state width).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...errors import QymeraError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..jobs import JobRequest

#: Admission outcomes.
ADMIT = "admit"
REJECT = "reject"


class AdmissionRejected(QymeraError):
    """The service declined a submit; carries the client's backoff hint."""

    def __init__(self, message: str, retry_after: float = 1.0, reason: str = "overload") -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))
        self.reason = reason


@dataclass(frozen=True)
class AdmissionDecision:
    action: str
    cost: float
    reason: str = ""
    retry_after: float = 0.0
    #: How long pricing + the admit/reject decision took — rendered as the
    #: request's ``admission`` span by the tracing layer.
    elapsed_s: float = 0.0


class StructuralCostEstimator:
    """Method-agnostic cost proxy: work scales with gates, points and width."""

    def estimate(self, request: "JobRequest") -> float:
        circuit = request.circuit
        gates = max(1, len(circuit.instructions))
        # Wide circuits touch exponentially more state rows; clamp the
        # exponent so a 30-qubit submit prices as "very expensive", not inf.
        width_factor = 1.0 + min(circuit.num_qubits, 16) / 8.0
        return float(request.total_points) * gates * width_factor


class MemdbCostEstimator(StructuralCostEstimator):
    """Optimizer-backed pricing for memdb jobs, structural fallback otherwise.

    One circuit *structure* (the translated CTE text — parameter values do
    not change it) is priced once and memoized; the estimate sums
    ``log2(1 + estimated_input_rows)`` per block — the same quantity EXPLAIN
    prints as ``est_rows``, log-scaled because UES upper bounds compound
    multiplicatively over a deep CTE chain (a 30-block chain estimates
    astronomically many rows; what admission needs is a monotone, bounded
    work ranking, which the per-block log sum is).
    """

    def __init__(self, max_cached_structures: int = 256) -> None:
        self._max_cached = int(max_cached_structures)
        self._cache: dict[str, float] = {}
        self._lock = threading.Lock()
        self._plan_priced = 0
        self._fallbacks = 0

    def estimate(self, request: "JobRequest") -> float:
        if request.method != "memdb":
            return super().estimate(request)
        per_point = self._per_point_units(request)
        if per_point is None:
            with self._lock:
                self._fallbacks += 1
            return super().estimate(request)
        return per_point * float(request.total_points)

    def _per_point_units(self, request: "JobRequest") -> float | None:
        try:
            from ...backends.memdb_backend import MemDBBackend

            translation = MemDBBackend(**dict(request.options)).translate(request.circuit)
            query = translation.cte_query(pretty=False)
        except Exception:
            return None
        with self._lock:
            cached = self._cache.get(query)
        if cached is not None:
            return cached
        units = self._price_query(query)
        if units is None:
            return None
        with self._lock:
            if len(self._cache) >= self._max_cached:
                self._cache.clear()
            self._cache[query] = units
            self._plan_priced += 1
        return units

    def _price_query(self, query: str) -> float | None:
        try:
            from ...backends.memdb.ast_nodes import Select, WithSelect
            from ...backends.memdb.optimizer.cost import CostModel
            from ...backends.memdb.parser import parse_one

            statement = parse_one(query)
            model = CostModel()
            units = 0.0
            if isinstance(statement, WithSelect):
                for cte in statement.ctes:
                    units += math.log2(1.0 + model.estimate_select_input_rows(cte.query))
                    model.set_derived_rows(cte.name, model.estimate_select_rows(cte.query))
                units += math.log2(1.0 + model.estimate_select_input_rows(statement.query))
            elif isinstance(statement, Select):
                units = math.log2(1.0 + model.estimate_select_input_rows(statement))
            else:
                return None
            return max(1.0, units)
        except Exception:
            return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "estimator": "memdb-cost-model",
                "structures_cached": len(self._cache),
                "plan_priced": self._plan_priced,
                "fallbacks": self._fallbacks,
            }


class AdmissionController:
    """Decides admit-vs-reject per submit against the queued-cost ceiling.

    Parameters
    ----------
    max_queued_cost:
        Total cost units allowed to wait in the fair queues; a submit that
        would push the backlog past this is rejected.  ``None`` disables
        cost-based rejection (quotas still apply).
    max_queued_jobs:
        Coarse job-count ceiling on the backlog, independent of cost.
    estimator:
        Prices each request; defaults to :class:`MemdbCostEstimator`.
    min_retry_after:
        Floor for the backoff hint returned with rejections.
    """

    def __init__(
        self,
        max_queued_cost: float | None = None,
        max_queued_jobs: int | None = None,
        estimator: StructuralCostEstimator | None = None,
        min_retry_after: float = 0.25,
    ) -> None:
        if max_queued_cost is not None and max_queued_cost <= 0:
            raise QymeraError("max_queued_cost must be positive when given")
        if max_queued_jobs is not None and max_queued_jobs < 1:
            raise QymeraError("max_queued_jobs must be positive when given")
        self.max_queued_cost = max_queued_cost
        self.max_queued_jobs = max_queued_jobs
        self.estimator = estimator if estimator is not None else MemdbCostEstimator()
        self.min_retry_after = float(min_retry_after)
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0
        self._served_cost = 0.0
        self._service_started = time.monotonic()

    def assess(self, request: "JobRequest", queued_cost: float, queued_jobs: int) -> AdmissionDecision:
        """Price the request and decide against the current backlog.

        The decision carries its own wall time (``elapsed_s``): pricing may
        translate + parse + cost-model a never-seen circuit structure, and
        the tracing layer attributes that to the request as an ``admission``
        span rather than letting it hide inside end-to-end latency.
        """
        started = time.perf_counter()
        cost = self.estimator.estimate(request)
        if self.max_queued_jobs is not None and queued_jobs >= self.max_queued_jobs:
            retry = self._retry_after(queued_cost)
            with self._lock:
                self._rejected += 1
            return AdmissionDecision(
                REJECT, cost, reason="queue full", retry_after=retry,
                elapsed_s=time.perf_counter() - started,
            )
        if self.max_queued_cost is not None and queued_cost + cost > self.max_queued_cost:
            retry = self._retry_after(queued_cost + cost - self.max_queued_cost)
            with self._lock:
                self._rejected += 1
            return AdmissionDecision(
                REJECT, cost, reason="cost ceiling", retry_after=retry,
                elapsed_s=time.perf_counter() - started,
            )
        with self._lock:
            self._admitted += 1
        return AdmissionDecision(ADMIT, cost, elapsed_s=time.perf_counter() - started)

    def observe_served(self, cost: float) -> None:
        """Record completed work so ``retry_after`` tracks real throughput."""
        with self._lock:
            self._served_cost += max(0.0, float(cost))

    def _retry_after(self, excess_cost: float) -> float:
        """Backoff hint: how long draining ``excess_cost`` should take.

        Uses the observed lifetime service rate (cost units per second); a
        cold controller falls back to the floor.
        """
        with self._lock:
            elapsed = max(1e-6, time.monotonic() - self._service_started)
            rate = self._served_cost / elapsed
        if rate <= 0:
            return max(self.min_retry_after, 1.0)
        return max(self.min_retry_after, excess_cost / rate)

    def stats(self) -> dict:
        with self._lock:
            stats = {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "served_cost": round(self._served_cost, 6),
                "max_queued_cost": self.max_queued_cost,
                "max_queued_jobs": self.max_queued_jobs,
            }
        estimator_stats = getattr(self.estimator, "stats", None)
        if estimator_stats is not None:
            stats["estimator"] = estimator_stats()
        return stats
