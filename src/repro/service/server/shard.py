"""Sharded engine pools with consistent-hash routing.

Warm engine state — prepared plans re-bound from the plan cache, live
table layouts, adaptive correction factors — is per *engine instance*, and
an :class:`~repro.service.jobs.EnginePool` hands instances out at random
within a (method, options) key.  Sharding pins each key to one shard of
smaller pools via a consistent-hash ring, so the same kind of work keeps
landing on the same warm engines, and resizing the shard count moves only
``~1/shards`` of the keys (the consistent-hashing property, checked by the
shard tests).

:class:`ShardedEnginePool` is a drop-in for :class:`EnginePool`: ``acquire``
returns an opaque key that ``release`` uses to find the owning shard, which
is exactly the contract ``JobService`` already programs against.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Mapping

from ...errors import QymeraError
from ..jobs import EnginePool, options_fingerprint


class ConsistentHashRing:
    """A hash ring of numbered nodes with virtual replicas.

    ``node_for(key)`` maps a string key to the first node clockwise from
    the key's hash; replicas smooth the load split across nodes.
    """

    def __init__(self, nodes: int, replicas: int = 64) -> None:
        if nodes < 1:
            raise QymeraError("the ring needs at least one node")
        if replicas < 1:
            raise QymeraError("replicas must be positive")
        self.nodes = int(nodes)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for node in range(self.nodes):
            for replica in range(self.replicas):
                points.append((self._hash(f"node:{node}:replica:{replica}"), node))
        points.sort()
        self._hashes = [point for point, _node in points]
        self._owners = [node for _point, node in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")

    def node_for(self, key: str) -> int:
        position = bisect.bisect(self._hashes, self._hash(key))
        if position == len(self._hashes):
            position = 0
        return self._owners[position]


class ShardedEnginePool:
    """N engine-pool shards behind one EnginePool-shaped interface.

    Routing key is ``(method, options-fingerprint)`` — the same identity the
    flat pool leases by — so every submit of one workload shape reaches the
    same shard and re-leases its warm engines.
    """

    def __init__(self, shards: int = 4, max_idle_per_key: int = 4, replicas: int = 64) -> None:
        if shards < 1:
            raise QymeraError("ShardedEnginePool needs at least one shard")
        self._shards = [EnginePool(max_idle_per_key=max_idle_per_key) for _ in range(shards)]
        self._ring = ConsistentHashRing(shards, replicas=replicas)

    def shard_for(self, method: str, options: Mapping[str, object]) -> int:
        """Which shard a (method, options) key routes to."""
        fingerprint = options_fingerprint(options)
        return self._ring.node_for(f"{method}|{fingerprint!r}")

    def acquire(self, method: str, options: Mapping[str, object]):
        shard_index = self.shard_for(method, options)
        key, instance = self._shards[shard_index].acquire(method, options)
        return (shard_index, key), instance

    def release(self, key, instance) -> None:
        shard_index, inner_key = key
        self._shards[shard_index].release(inner_key, instance)

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    @property
    def closed(self) -> bool:
        return all(shard.closed for shard in self._shards)

    def stats(self) -> dict:
        """Roll-up plus per-shard pool counters."""
        shard_stats = [shard.stats() for shard in self._shards]
        total = {
            "created": sum(stats["created"] for stats in shard_stats),
            "reused": sum(stats["reused"] for stats in shard_stats),
            "contended": sum(stats["contended"] for stats in shard_stats),
            "closed": all(stats["closed"] for stats in shard_stats),
            "discarded_on_close": sum(stats["discarded_on_close"] for stats in shard_stats),
        }
        idle: dict[str, int] = {}
        for stats in shard_stats:
            for method, count in stats["idle"].items():
                idle[method] = idle.get(method, 0) + count
        total["idle"] = idle
        total["shards"] = shard_stats
        return total
