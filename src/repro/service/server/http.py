"""Asyncio HTTP/JSON front end over the JobService (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio`` streams — no
third-party web framework, matching the repo's no-new-dependencies rule —
exposing the serving tier's endpoints::

    POST   /v1/jobs            submit  {tenant, circuit, method, options,
                                        params | param_grid, tag}
    GET    /v1/jobs/{id}        poll one job
    GET    /v1/jobs/{id}/stream chunked per-point results (one JSON per line)
    DELETE /v1/jobs/{id}        cancel
    GET    /v1/stats            service + scheduler + admission + journal
                                stats (the versioned engine_stats()/metrics
                                schema)
    GET    /v1/metrics          Prometheus text exposition of every service
                                counter/gauge/histogram, p99 exemplars
                                linking to traces
    GET    /v1/traces/{job_id}  one request's assembled span tree
    GET    /v1/traces           recent request traces (?tenant=, ?slow=1)
                                plus the slow-request log

Request handling never blocks the event loop: ``JobService`` calls —
submit (journal append), result waits, cancellation — run on the loop's
default thread-pool executor, and the stream endpoint pulls each next
point through the executor too, writing it out as one chunk as soon as the
worker produces it.

Tracing starts here: a submit carrying a W3C ``traceparent`` header joins
the caller's distributed trace (the ingress honors its sampling flag);
otherwise the server mints a :class:`~repro.obs.tracing.TraceContext`
head-sampled at the tenant's configured rate.  Responses echo
``traceparent`` and error bodies carry the ``trace_id``, so a client can
always quote the id that ``/v1/traces/{job_id}`` resolves.

Admission rejections surface as ``429`` with both a ``Retry-After`` header
and a JSON body; pruned-but-journaled jobs answer ``410 Gone`` carrying
their final journaled status instead of a bare ``404``.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from typing import TYPE_CHECKING

from ...errors import CircuitFormatError, QymeraError
from ...io.json_io import circuit_from_dict
from ...obs.metrics import PROMETHEUS_CONTENT_TYPE, global_registry, prometheus_exposition
from ...obs.tracing import TraceContext, new_trace_id, span_record
from ..jobs import JobRequest, JobService
from .admission import AdmissionRejected
from .scheduler import QuotaExceeded

if TYPE_CHECKING:  # pragma: no cover
    from .journal import JobJournal

#: Upper bound on accepted request bodies (a circuit document plus a large
#: parameter grid fits comfortably; anything bigger is a client bug).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _BadRequest(QymeraError):
    """Maps to a 400 with the message as the error body."""


def parse_job_payload(payload: dict) -> JobRequest:
    """Build a :class:`JobRequest` from a submit body (raises on bad input)."""
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    circuit_doc = payload.get("circuit")
    if not isinstance(circuit_doc, dict):
        raise _BadRequest("missing or invalid 'circuit' document")
    try:
        circuit = circuit_from_dict(circuit_doc)
    except CircuitFormatError as exc:
        raise _BadRequest(f"invalid circuit: {exc}") from exc
    params = payload.get("params")
    param_grid = payload.get("param_grid")
    if params is not None and not isinstance(params, dict):
        raise _BadRequest("'params' must be an object of name -> value")
    if param_grid is not None and (
        not isinstance(param_grid, list) or not all(isinstance(p, dict) for p in param_grid)
    ):
        raise _BadRequest("'param_grid' must be a list of objects")
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise _BadRequest("'options' must be an object")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise _BadRequest("'tenant' must be a non-empty string")
    try:
        return JobRequest(
            circuit=circuit,
            method=str(payload.get("method", "memdb")),
            options=options,
            params=params,
            param_grid=param_grid,
            tag=str(payload.get("tag", "")),
            tenant=tenant,
        )
    except QymeraError as exc:
        raise _BadRequest(str(exc)) from exc


class JobServer:
    """The serving tier's network surface: one JobService behind HTTP.

    Parameters
    ----------
    service:
        The (scheduler/journal-equipped) :class:`JobService` to serve.
    host / port:
        Bind address; port 0 picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    result_rows:
        When False (default), job results are summarized without the full
        amplitude row dump — poll payloads stay small; pass
        ``?rows=1`` on the poll/stream URL to get full states.
    """

    def __init__(
        self,
        service: JobService,
        host: str = "127.0.0.1",
        port: int = 0,
        result_rows: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.result_rows = bool(result_rows)
        self._server: asyncio.base_events.Server | None = None
        self._requests_served = 0
        self._lock = threading.Lock()
        self._client_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections (resolves the real port)."""
        if self._server is not None:
            raise QymeraError("the server is already running")
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Keep-alive handlers may still be parked in readline: cancel them
        # so the loop shuts down without pending-task warnings. A handler
        # task created for a just-accepted connection may not have run its
        # first step yet (so it is not registered in _client_tasks); the
        # listener is closed, so yielding to the loop lets every such task
        # start and register, then the cancel sweep drains the set.
        for _ in range(3):
            await asyncio.sleep(0)
        while self._client_tasks:
            pending = list(self._client_tasks)
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            await asyncio.sleep(0)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------- request parsing

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, body, headers, keep_alive = request
                with self._lock:
                    self._requests_served += 1
                started = time.perf_counter()
                route = self._route_family(path)
                # Ingress trace identity: join the caller's trace when a
                # valid traceparent arrived; reqinfo carries the id so every
                # error body below can echo it.
                context = TraceContext.from_traceparent(headers.get("traceparent", ""))
                reqinfo = {"trace_id": context.trace_id if context is not None else ""}
                status = 500
                try:
                    status = await self._dispatch(
                        method, path, query, body, context, reqinfo, writer
                    )
                except _BadRequest as exc:
                    status = 400
                    await self._send_json(
                        writer, 400, {"error": str(exc), **self._trace_ref(reqinfo)}
                    )
                except (AdmissionRejected, QuotaExceeded) as exc:
                    status = 429
                    await self._send_json(
                        writer,
                        429,
                        {"error": str(exc), "reason": exc.reason,
                         "retry_after": exc.retry_after, **self._trace_ref(reqinfo)},
                        headers={"Retry-After": f"{max(exc.retry_after, 0.0):.3f}"},
                    )
                except QymeraError as exc:
                    status = 500
                    await self._send_json(
                        writer, 500,
                        {"error": str(exc), "trace_id": self._error_trace_id(reqinfo)},
                    )
                except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
                    status = 500
                    await self._send_json(
                        writer, 500,
                        {"error": f"internal error: {exc}",
                         "trace_id": self._error_trace_id(reqinfo)},
                    )
                metrics = self.service.metrics
                metrics.counter("http.requests_total").inc()
                if status >= 500:
                    metrics.counter("http.errors_total").inc()
                metrics.histogram(f"http.route.{route}.latency_seconds").observe(
                    time.perf_counter() - started,
                    exemplar=(
                        {"trace_id": reqinfo["trace_id"]} if reqinfo["trace_id"] else None
                    ),
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        try:
            method, target, version = request_line.decode("ascii").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            # A garbage Content-Length used to escape as an unhandled
            # ValueError and kill the connection task; treat it as a
            # malformed request instead.
            return None
        if length > MAX_BODY_BYTES or length < 0:
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        query: dict[str, str] = {}
        for pair in query_string.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                query[key] = value
        keep_alive = headers.get("connection", "").lower() != "close" and version.upper() != "HTTP/1.0"
        return method.upper(), path, query, body, headers, keep_alive

    # ------------------------------------------------------------ dispatching

    @staticmethod
    def _route_family(path: str) -> str:
        """Normalized route label for per-route latency metrics."""
        parts = [part for part in path.split("/") if part]
        if parts[:1] != ["v1"] or len(parts) < 2:
            return "other"
        head = parts[1]
        if head == "jobs":
            if len(parts) == 2:
                return "/v1/jobs"
            if len(parts) == 3:
                return "/v1/jobs/{id}"
            if len(parts) == 4 and parts[3] == "stream":
                return "/v1/jobs/{id}/stream"
            return "other"
        if head in ("stats", "metrics"):
            return f"/v1/{head}"
        if head == "traces":
            return "/v1/traces" if len(parts) == 2 else "/v1/traces/{id}"
        return "other"

    def _trace_store(self):
        tracer = self.service.tracer
        return tracer.request_store if tracer is not None else None

    def _sample_rate(self, tenant: str) -> float:
        scheduler = self.service.scheduler
        return 1.0 if scheduler is None else scheduler.sample_rate(tenant)

    @staticmethod
    def _trace_ref(reqinfo: dict) -> dict:
        return {"trace_id": reqinfo["trace_id"]} if reqinfo["trace_id"] else {}

    @staticmethod
    def _error_trace_id(reqinfo: dict) -> str:
        """The id a 500 body quotes — minted when the request had none.

        A minted id resolves to no stored trace, but gives client and
        server logs a shared correlation key for the failure.
        """
        if not reqinfo["trace_id"]:
            reqinfo["trace_id"] = new_trace_id()
        return reqinfo["trace_id"]

    async def _dispatch(self, method, path, query, body, context, reqinfo, writer) -> int:
        parts = [part for part in path.split("/") if part]
        if parts[:1] != ["v1"]:
            return await self._send_json(writer, 404, {"error": f"unknown path {path!r}"})
        if parts == ["v1", "jobs"] and method == "POST":
            return await self._submit(body, context, reqinfo, writer)
        if parts == ["v1", "stats"] and method == "GET":
            return await self._stats(writer)
        if parts == ["v1", "metrics"] and method == "GET":
            return await self._metrics(writer)
        if parts == ["v1", "traces"] and method == "GET":
            return await self._traces_query(query, writer)
        if len(parts) == 3 and parts[1] == "traces" and method == "GET":
            return await self._trace_for_job(parts[2], writer)
        if len(parts) >= 3 and parts[1] == "jobs":
            try:
                job_id = int(parts[2])
            except ValueError:
                raise _BadRequest(f"job id must be an integer, got {parts[2]!r}")
            if len(parts) == 3 and method == "GET":
                return await self._poll(job_id, query, writer)
            if len(parts) == 3 and method == "DELETE":
                return await self._cancel(job_id, writer)
            if len(parts) == 4 and parts[3] == "stream" and method == "GET":
                return await self._stream(job_id, query, writer)
        return await self._send_json(writer, 405 if parts[1:2] == ["jobs"] else 404,
                                     {"error": f"unsupported {method} {path}"})

    # -------------------------------------------------------------- handlers

    async def _submit(self, body: bytes, context, reqinfo, writer) -> int:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from exc
        request = parse_job_payload(payload)
        # Attach trace identity before the service sees the request: a
        # traceparent-derived context keeps the caller's sampling decision;
        # otherwise mint one head-sampled at the tenant's rate.
        trace = context
        if trace is None and self._trace_store() is not None:
            rate = self._sample_rate(request.tenant)
            trace = TraceContext.generate(sampled=random.random() < rate)
        if trace is not None:
            request.trace = trace
            reqinfo["trace_id"] = trace.trace_id
        loop = asyncio.get_running_loop()
        # submit() appends to the journal and may price the plan — off-loop.
        handle = await loop.run_in_executor(None, self.service.submit, request)
        store = self._trace_store()
        if trace is not None and store is not None:
            # The ingress span: parse + admission + journal + enqueue, i.e.
            # the synchronous slice of the request the HTTP thread observed.
            store.record(span_record(
                "ingress",
                trace_id=trace.trace_id,
                parent_span_id=trace.span_id,
                start_s=trace.started_s,
                attrs={"route": "/v1/jobs", "tenant": request.tenant},
            ))
        response = {
            "job_id": handle.job_id, "status": handle.status(), "tenant": request.tenant,
        }
        response_headers = None
        if trace is not None:
            response["trace_id"] = trace.trace_id
            response_headers = {"traceparent": trace.to_traceparent()}
        return await self._send_json(writer, 202, response, headers=response_headers)

    async def _poll(self, job_id: int, query, writer) -> int:
        loop = asyncio.get_running_loop()
        try:
            handle = self.service.job(job_id)
        except QymeraError:
            final = self.service.final_status(job_id)
            if final is not None:
                final["error_detail"] = final.pop("error", "")
                final["source"] = "journal"
                return await self._send_json(writer, 410, final)
            return await self._send_json(writer, 404, {"error": f"no job with id {job_id}"})
        snapshot = handle.poll()
        if snapshot["status"] == "done" and query.get("rows") == "1":
            results = await loop.run_in_executor(None, lambda: handle.result(timeout=0.0))
            if not isinstance(results, list):
                results = [results]
            snapshot["results"] = [result.to_dict() for result in results]
        return await self._send_json(writer, 200, snapshot)

    async def _cancel(self, job_id: int, writer) -> int:
        loop = asyncio.get_running_loop()
        try:
            handle = self.service.job(job_id)
        except QymeraError:
            final = self.service.final_status(job_id)
            if final is not None:
                return await self._send_json(writer, 410, final)
            return await self._send_json(writer, 404, {"error": f"no job with id {job_id}"})
        cancelled = await loop.run_in_executor(None, handle.cancel)
        return await self._send_json(
            writer, 200, {"job_id": job_id, "cancelled": cancelled, "status": handle.status()}
        )

    async def _stream(self, job_id: int, query, writer) -> int:
        try:
            handle = self.service.job(job_id)
        except QymeraError:
            final = self.service.final_status(job_id)
            status = 410 if final is not None else 404
            return await self._send_json(
                writer, status, final or {"error": f"no job with id {job_id}"}
            )
        loop = asyncio.get_running_loop()
        include_rows = query.get("rows") == "1"
        timeout = float(query.get("timeout", "300"))
        await self._send_head(
            writer,
            200,
            {"Content-Type": "application/x-ndjson", "Transfer-Encoding": "chunked"},
        )
        iterator = handle.stream(timeout=timeout)
        sentinel = object()

        def pull():
            try:
                return next(iterator)
            except StopIteration:
                return sentinel

        try:
            while True:
                try:
                    item = await loop.run_in_executor(None, pull)
                except QymeraError as exc:
                    await self._write_chunk(writer, json.dumps({"error": str(exc)}) + "\n")
                    break
                if item is sentinel:
                    break
                record = item.to_dict()
                if not include_rows:
                    record.pop("rows", None)
                await self._write_chunk(writer, json.dumps(record) + "\n")
            await self._write_chunk(
                writer, json.dumps({"job_id": job_id, "status": handle.status()}) + "\n"
            )
        finally:
            # Terminating zero-length chunk ends the response.
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        return 200

    async def _stats(self, writer) -> int:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(None, self.service.stats)
        payload = {"schema_version": 1, "requests_served": self._requests_served, "service": stats}
        return await self._send_json(writer, 200, payload)

    async def _metrics(self, writer) -> int:
        """Prometheus text exposition of the process's metric registries.

        The service registry is rendered after the global one, so a name
        collision resolves in favor of the serving tier's numbers.
        """
        loop = asyncio.get_running_loop()

        def render() -> str:
            return prometheus_exposition(
                global_registry().snapshot(), self.service.metrics.snapshot()
            )

        text = await loop.run_in_executor(None, render)
        body = text.encode("utf-8")
        await self._send_head(writer, 200, {
            "Content-Type": PROMETHEUS_CONTENT_TYPE,
            "Content-Length": str(len(body)),
        })
        writer.write(body)
        await writer.drain()
        return 200

    async def _trace_for_job(self, job_part: str, writer) -> int:
        try:
            job_id = int(job_part)
        except ValueError:
            raise _BadRequest(f"job id must be an integer, got {job_part!r}")
        store = self._trace_store()
        if store is None:
            return await self._send_json(
                writer, 404, {"error": "request tracing is not enabled on this server"}
            )
        trace = store.for_job(job_id)
        if trace is None:
            return await self._send_json(
                writer, 404,
                {"error": f"no retained trace for job {job_id} "
                          "(not sampled, evicted, or unknown id)"},
            )
        return await self._send_json(writer, 200, trace)

    async def _traces_query(self, query, writer) -> int:
        store = self._trace_store()
        if store is None:
            return await self._send_json(
                writer, 404, {"error": "request tracing is not enabled on this server"}
            )
        tenant = query.get("tenant") or None
        slow = query.get("slow") == "1"
        try:
            limit = max(1, int(query.get("limit", "50")))
        except ValueError:
            raise _BadRequest("'limit' must be an integer")
        payload = {
            "traces": store.query(tenant=tenant, slow=slow, limit=limit),
            "slow_requests": store.slow_requests(tenant=tenant),
            "store": store.stats(),
        }
        return await self._send_json(writer, 200, payload)

    # --------------------------------------------------------------- writing

    async def _send_head(self, writer, status: int, headers: dict) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _send_json(self, writer, status: int, payload: dict, headers: dict | None = None) -> int:
        body = json.dumps(payload, default=repr).encode("utf-8")
        head = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
        }
        if headers:
            head.update(headers)
        await self._send_head(writer, status, head)
        writer.write(body)
        await writer.drain()
        return status

    async def _write_chunk(self, writer, text: str) -> None:
        data = text.encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
        await writer.drain()


class ServerThread:
    """Run a :class:`JobServer` on a background event loop thread.

    The synchronous harness tests, benchmarks and ``examples/serve.py``
    need a live server next to blocking client code; this owns the loop::

        with ServerThread(server) as addr:
            requests went to http://{addr[0]}:{addr[1]}
    """

    def __init__(self, server: JobServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise QymeraError("the server thread is already running")

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.server.start())
            self._started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(target=run, name="qymera-http", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise QymeraError("the HTTP server did not start within 10s")
        return self.server.host, self.server.port

    def stop(self) -> None:
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
            self._loop = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
