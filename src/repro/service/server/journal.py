"""Durable append-only job journal (JSONL) with restart replay.

The serving tier's durability story is one file of one-line JSON records:
every job the service accepts appends a ``submitted`` record carrying the
full request payload (circuit document, method, options, parameter grid,
tenant, and a content fingerprint), every lifecycle edge appends a
``started`` / ``point`` / terminal record, and a restarted server calls
:meth:`JobJournal.replay_plan` to find the jobs that never reached a
terminal state — re-enqueueing only the grid points that have no ``point``
record yet, so completed work is never recomputed.

Appends happen under one lock in arrival order, so the journal is also the
ground truth for the "zero dropped records" serving invariant: after a
clean shutdown every ``submitted`` id has a matching terminal record.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ...errors import QymeraError
from ...io.json_io import circuit_from_dict, circuit_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..jobs import JobRequest

#: Journal record events.
EVENT_SUBMITTED = "submitted"
EVENT_STARTED = "started"
EVENT_POINT = "point"
EVENT_DONE = "done"
EVENT_ERROR = "error"
EVENT_CANCELLED = "cancelled"

_TERMINAL_EVENTS = frozenset({EVENT_DONE, EVENT_ERROR, EVENT_CANCELLED})


def request_fingerprint(payload: dict) -> str:
    """Content hash of a serialized request (stable across restarts)."""
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def serialize_request(request: "JobRequest") -> dict | None:
    """Render a :class:`JobRequest` as a replayable JSON document.

    Returns ``None`` when the request cannot survive a JSON round trip
    (non-JSON-able options, circuits with compound parameter expressions):
    such jobs are journaled with ``payload: null`` — their lifecycle is
    still auditable, they just cannot be re-enqueued by replay.
    """
    try:
        payload = {
            "circuit": circuit_to_dict(request.circuit),
            "method": request.method,
            "options": dict(request.options),
            "params": dict(request.params) if request.params is not None else None,
            "param_grid": (
                [dict(point) for point in request.param_grid]
                if request.param_grid is not None
                else None
            ),
            "tag": request.tag,
            "tenant": request.tenant,
        }
        json.dumps(payload)  # options may hold arbitrary objects
    except (TypeError, ValueError, QymeraError):
        return None
    return payload


def deserialize_request(payload: dict) -> "JobRequest":
    """Rebuild a :class:`JobRequest` from a journaled payload."""
    from ..jobs import JobRequest  # deferred: jobs.py imports this module

    return JobRequest(
        circuit=circuit_from_dict(payload["circuit"]),
        method=payload.get("method", "memdb"),
        options=payload.get("options") or {},
        params=payload.get("params"),
        param_grid=payload.get("param_grid"),
        tag=payload.get("tag", ""),
        tenant=payload.get("tenant", "default"),
    )


class JournalEntry:
    """Folded per-job state reconstructed from a journal scan."""

    __slots__ = ("job_id", "tenant", "fingerprint", "status", "completed_points",
                 "total_points", "payload", "error", "resumed_from", "trace_id")

    def __init__(self, job_id: int) -> None:
        self.job_id = job_id
        self.tenant = "default"
        self.fingerprint = ""
        self.status = "submitted"
        self.completed_points = 0
        self.total_points = 1
        self.payload: dict | None = None
        self.error = ""
        self.resumed_from: int | None = None
        #: The distributed-trace id the original submit carried; a replayed
        #: job re-adopts it so its spans join the original request's trace.
        self.trace_id = ""

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL_EVENTS

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "completed_points": self.completed_points,
            "total_points": self.total_points,
            "error": self.error,
            "replayable": self.payload is not None,
            "trace_id": self.trace_id,
        }


class JobJournal:
    """Append-only JSONL journal of every job lifecycle edge.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on first append.  An existing
        file is scanned once at construction so :meth:`final_status` can
        answer for jobs from previous incarnations immediately.
    fsync:
        When True every terminal record is fsynced — survives the *host*
        dying, at a per-job syscall cost.  The default flushes Python's
        buffer per record (survives the process dying), which is the
        mid-sweep-kill contract the replay test exercises.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._file = None
        self._entries: dict[int, JournalEntry] = {}
        self._records_written = 0
        if self.path.exists():
            for record in self._scan():
                self._fold(record)

    # ----------------------------------------------------------- appending

    def _append(self, record: dict) -> None:
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(json.dumps(record, default=repr) + "\n")
            self._file.flush()
            if self.fsync and record.get("event") in _TERMINAL_EVENTS:
                os.fsync(self._file.fileno())
            self._records_written += 1
            self._fold(record)

    def record_submitted(
        self,
        job_id: int,
        request: "JobRequest",
        resumed_from: int | None = None,
        trace_id: str = "",
    ) -> str:
        """Journal an accepted job; returns its request fingerprint.

        ``trace_id`` is the submit's distributed-trace identity: persisting
        it here is what lets a journal-replayed job keep the lineage of the
        request that originally created it.
        """
        payload = serialize_request(request)
        fingerprint = request_fingerprint(payload) if payload is not None else ""
        record = {
            "event": EVENT_SUBMITTED,
            "job_id": job_id,
            "tenant": request.tenant,
            "fingerprint": fingerprint,
            "total_points": request.total_points,
            "payload": payload,
            "ts": time.time(),
        }
        if trace_id:
            record["trace_id"] = trace_id
        if resumed_from is not None:
            record["resumed_from"] = resumed_from
        self._append(record)
        return fingerprint

    def record_started(self, job_id: int) -> None:
        self._append({"event": EVENT_STARTED, "job_id": job_id, "ts": time.time()})

    def record_point(self, job_id: int, index: int) -> None:
        """One grid point finished (``index`` is its position in the grid)."""
        self._append({"event": EVENT_POINT, "job_id": job_id, "index": index, "ts": time.time()})

    def record_terminal(self, job_id: int, status: str, error: str = "") -> None:
        if status not in _TERMINAL_EVENTS:
            raise QymeraError(f"{status!r} is not a terminal journal event")
        record = {"event": status, "job_id": job_id, "ts": time.time()}
        if error:
            record["error"] = error
        self._append(record)

    # ------------------------------------------------------------- folding

    def _fold(self, record: dict) -> None:
        event = record.get("event")
        job_id = record.get("job_id")
        if event is None or job_id is None:
            return
        entry = self._entries.get(job_id)
        if entry is None:
            entry = self._entries[job_id] = JournalEntry(int(job_id))
        if event == EVENT_SUBMITTED:
            entry.tenant = record.get("tenant", "default")
            entry.fingerprint = record.get("fingerprint", "")
            entry.total_points = int(record.get("total_points", 1))
            entry.payload = record.get("payload")
            entry.resumed_from = record.get("resumed_from")
            entry.trace_id = record.get("trace_id", "")
        elif event == EVENT_STARTED:
            entry.status = EVENT_STARTED
        elif event == EVENT_POINT:
            entry.completed_points += 1
        elif event in _TERMINAL_EVENTS:
            entry.status = event
            entry.error = record.get("error", "")

    def _scan(self) -> Iterator[dict]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line is expected after a hard kill; every
                    # complete record before it is still recovered.
                    continue

    # ------------------------------------------------------------- queries

    def entries(self) -> list[JournalEntry]:
        """Folded per-job states, submission order."""
        with self._lock:
            return [self._entries[job_id] for job_id in sorted(self._entries)]

    def final_status(self, job_id: int) -> dict | None:
        """Last known state of a job, or ``None`` if this journal never saw it.

        This is what lets the HTTP layer answer ``410 Gone`` (with the final
        status) for handles the service has pruned, instead of ``404``.
        """
        with self._lock:
            entry = self._entries.get(job_id)
            return entry.to_dict() if entry is not None else None

    def incomplete(self) -> list[JournalEntry]:
        """Jobs with no terminal record (crashed or killed mid-flight)."""
        return [entry for entry in self.entries() if not entry.terminal]

    def replay_plan(self) -> list[dict]:
        """What a restarted server should re-enqueue.

        One plan per incomplete *replayable* job: the rebuilt
        :class:`JobRequest` narrowed to the grid points that have no
        ``point`` record (grid jobs complete in order on both tiers, so the
        completed prefix length identifies them), plus bookkeeping for the
        ``resumed_from`` journal link.  Jobs whose payload was not
        serializable are reported with ``request=None`` so callers can log
        the loss instead of silently dropping it.
        """
        plans = []
        for entry in self.incomplete():
            if entry.payload is None:
                plans.append({
                    "job_id": entry.job_id,
                    "request": None,
                    "skip_points": entry.completed_points,
                    "reason": "payload was not serializable",
                    "trace_id": entry.trace_id,
                })
                continue
            request = deserialize_request(entry.payload)
            skip = entry.completed_points
            if request.param_grid is not None and skip:
                remaining = list(request.param_grid)[skip:]
                if not remaining:
                    # Every point finished but the terminal record was lost
                    # to the kill: nothing to recompute.
                    continue
                request.param_grid = remaining
            plans.append({
                "job_id": entry.job_id,
                "request": request,
                "skip_points": skip,
                "reason": "",
                "trace_id": entry.trace_id,
            })
        return plans

    def stats(self) -> dict:
        with self._lock:
            entries = list(self._entries.values())
            written = self._records_written
        by_status: dict[str, int] = {}
        for entry in entries:
            by_status[entry.status] = by_status.get(entry.status, 0) + 1
        return {
            "path": str(self.path),
            "records_written": written,
            "jobs": len(entries),
            "by_status": by_status,
            "incomplete": sum(1 for entry in entries if not entry.terminal),
        }

    # ------------------------------------------------------------ lifetime

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._file.close()
                self._file = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
