"""Tenant-aware fair scheduling: weighted deficit round-robin + quotas.

The JobService's default queue is the thread pool's FIFO: one tenant
flooding grid sweeps starves everyone behind it.  :class:`FairScheduler`
replaces that with one queue *per tenant* and a deficit round-robin (DRR)
dispatcher: each scheduling pass visits tenants in rotation, grants each a
``quantum`` of cost credit scaled by its weight, and dispatches a tenant's
head job only when its accumulated deficit covers the job's cost units.
Two backlogged tenants with equal weights therefore get ~equal *service*
(in cost units) regardless of their submit rates — the fairness property
the serving benchmark gates on.

Quotas guard the queue edges per tenant: ``max_queued`` bounds backlog,
``max_in_flight`` bounds concurrency (a capped tenant is skipped by the
dispatcher without accruing deficit), and an optional token bucket bounds
submit *rate* (capacity ``burst``, refill ``rate`` tokens/second).  Quota
violations raise :class:`QuotaExceeded` carrying a ``retry_after`` hint,
which the HTTP front end turns into ``429 Retry-After``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ...errors import QymeraError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..jobs import JobHandle


class QuotaExceeded(QymeraError):
    """A tenant quota rejected a submit; ``retry_after`` hints when to retry."""

    def __init__(self, message: str, retry_after: float = 1.0, reason: str = "quota") -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))
        self.reason = reason


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant scheduling configuration.

    ``weight`` scales the tenant's DRR credit (2.0 = twice the service of a
    weight-1.0 tenant under saturation).  ``None`` limits are unlimited.
    ``sample_rate`` is the tenant's head-based trace-sampling probability:
    the fraction of this tenant's requests that record full execution spans
    (errors and slow requests are always retained regardless — the rate
    only gates the happy path's tracing cost).
    """

    weight: float = 1.0
    max_in_flight: int | None = None
    max_queued: int | None = None
    rate: float | None = None
    burst: float | None = None
    sample_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise QymeraError("tenant weight must be positive")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise QymeraError("max_in_flight must be positive when given")
        if self.max_queued is not None and self.max_queued < 1:
            raise QymeraError("max_queued must be positive when given")
        if self.rate is not None and self.rate <= 0:
            raise QymeraError("rate must be positive when given")
        if self.burst is not None and self.burst <= 0:
            raise QymeraError("burst must be positive when given")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise QymeraError("sample_rate must be between 0 and 1")


class TokenBucket:
    """A standard token bucket with an injectable clock (for edge tests).

    Starts full.  :meth:`try_take` returns 0.0 on success, otherwise the
    seconds until enough tokens will have refilled.
    """

    def __init__(self, rate: float, capacity: float, clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or capacity <= 0:
            raise QymeraError("token bucket rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_take(self, tokens: float = 1.0) -> float:
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


class _TenantState:
    __slots__ = ("name", "quota", "queue", "deficit", "running", "bucket",
                 "admitted", "rejected", "dispatched", "served_cost", "queue_wait_s")

    def __init__(self, name: str, quota: TenantQuota, clock: Callable[[], float]) -> None:
        self.name = name
        self.quota = quota
        self.queue: list["JobHandle"] = []
        self.deficit = 0.0
        self.running = 0
        self.bucket = (
            TokenBucket(quota.rate, quota.burst if quota.burst is not None else max(quota.rate, 1.0) * 2, clock)
            if quota.rate is not None
            else None
        )
        self.admitted = 0
        self.rejected = 0
        self.dispatched = 0
        self.served_cost = 0.0
        #: Accumulated true queue wait (enqueue -> DRR pick) in seconds —
        #: the per-tenant attribution the tracing layer's queue-wait spans
        #: aggregate to.
        self.queue_wait_s = 0.0


class FairScheduler:
    """Deficit round-robin across per-tenant queues, with quota enforcement.

    Thread-safe; the JobService's dispatcher thread blocks in
    :meth:`next_job` while submitters call :meth:`submit` concurrently.
    """

    def __init__(
        self,
        quantum: float = 1.0,
        default_quota: TenantQuota | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if quantum <= 0:
            raise QymeraError("scheduler quantum must be positive")
        self.quantum = float(quantum)
        self.default_quota = default_quota if default_quota is not None else TenantQuota()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._rotation: list[str] = []
        self._cursor = 0
        self._condition = threading.Condition()
        self._closed = False
        self._queued_cost = 0.0

    # -------------------------------------------------------- configuration

    def configure(self, tenant: str, quota: TenantQuota) -> None:
        """Set (or replace) one tenant's quota; queued work is kept."""
        with self._condition:
            state = self._tenants.get(tenant)
            if state is None:
                state = self._state_locked(tenant, quota)
            else:
                state.quota = quota
                state.bucket = (
                    TokenBucket(
                        quota.rate,
                        quota.burst if quota.burst is not None else max(quota.rate, 1.0) * 2,
                        self._clock,
                    )
                    if quota.rate is not None
                    else None
                )
            self._condition.notify_all()

    def _state_locked(self, tenant: str, quota: TenantQuota | None = None) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(tenant, quota if quota is not None else self.default_quota, self._clock)
            self._tenants[tenant] = state
            self._rotation.append(tenant)
        return state

    # ------------------------------------------------------------ submission

    def submit(self, handle: "JobHandle", cost: float = 1.0) -> None:
        """Enqueue one handle under its tenant, enforcing the tenant's quotas.

        Raises :class:`QuotaExceeded` on a full queue or an empty token
        bucket; the handle is not enqueued in that case.
        """
        tenant = handle.request.tenant
        with self._condition:
            if self._closed:
                raise QymeraError("the scheduler has been closed")
            state = self._state_locked(tenant)
            quota = state.quota
            if quota.max_queued is not None and len(state.queue) >= quota.max_queued:
                state.rejected += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} queue is full ({quota.max_queued} jobs)",
                    retry_after=1.0,
                    reason="max_queued",
                )
            if state.bucket is not None:
                wait = state.bucket.try_take()
                if wait > 0.0:
                    state.rejected += 1
                    raise QuotaExceeded(
                        f"tenant {tenant!r} exceeded its submit rate ({quota.rate}/s)",
                        retry_after=wait,
                        reason="rate",
                    )
            handle._cost_units = max(0.0, float(cost)) or 1.0
            # Queue-wait ground truth: perf_counter at enqueue, read back at
            # DRR pick — the tracing layer renders the difference as the
            # request's ``queue_wait`` span instead of inferring it from
            # end-to-end latency.
            handle._enqueued_pc = time.perf_counter()
            state.queue.append(handle)
            state.admitted += 1
            self._queued_cost += handle._cost_units
            self._condition.notify_all()

    # ------------------------------------------------------------ dispatching

    def next_job(self, timeout: float | None = None) -> "JobHandle | None":
        """Block for the next fairly-chosen job; ``None`` on timeout or close.

        The returned handle is counted against its tenant's ``running``
        until :meth:`on_finish` is called for it.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._condition:
            while True:
                handle = self._pick_locked()
                if handle is not None:
                    return handle
                if self._closed:
                    return None
                if deadline is None:
                    self._condition.wait()
                else:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._condition.wait(timeout=remaining):
                        if self._pick_locked_available():
                            continue
                        return None

    def _pick_locked_available(self) -> bool:
        return any(
            state.queue
            and (state.quota.max_in_flight is None or state.running < state.quota.max_in_flight)
            for state in self._tenants.values()
        )

    def _eligible_locked(self) -> list[str]:
        return [
            name
            for name in self._rotation
            if self._tenants[name].queue
            and (
                self._tenants[name].quota.max_in_flight is None
                or self._tenants[name].running < self._tenants[name].quota.max_in_flight
            )
        ]

    def _pick_locked(self) -> "JobHandle | None":
        """One DRR pass: rotate, accrue weighted quantum, dispatch when funded.

        Deficits only accrue for *eligible* tenants (backlogged and under
        their in-flight cap), and reset when a tenant's queue drains — an
        idle tenant cannot hoard credit and then monopolize the pool.
        """
        eligible = self._eligible_locked()
        if not eligible:
            return None
        # Bounded rounds: each full pass adds >= quantum * min_weight to
        # every eligible deficit, so some head job gets funded; the bound
        # only guards against a pathological cost/quantum ratio.
        for drr_round in range(1024):
            for _ in range(len(self._rotation)):
                name = self._rotation[self._cursor % len(self._rotation)]
                self._cursor = (self._cursor + 1) % len(self._rotation)
                state = self._tenants[name]
                if name not in eligible:
                    continue
                state.deficit += self.quantum * state.quota.weight
                head = state.queue[0]
                if state.deficit >= head._cost_units:
                    state.deficit -= head._cost_units
                    return self._dequeue_head_locked(state, drr_round + 1)
        # Fund the cheapest head directly rather than spinning forever.
        name = min(eligible, key=lambda n: self._tenants[n].queue[0]._cost_units)
        state = self._tenants[name]
        return self._dequeue_head_locked(state, 1024)

    def _dequeue_head_locked(self, state: _TenantState, drr_rounds: int) -> "JobHandle":
        """Pop a funded head, attributing queue wait and DRR rounds to it."""
        head = state.queue.pop(0)
        if not state.queue:
            state.deficit = 0.0
        state.running += 1
        state.dispatched += 1
        state.served_cost += head._cost_units
        self._queued_cost = max(0.0, self._queued_cost - head._cost_units)
        enqueued = getattr(head, "_enqueued_pc", None)
        if enqueued is not None:
            state.queue_wait_s += max(0.0, time.perf_counter() - enqueued)
        head._drr_rounds = drr_rounds
        return head

    def on_finish(self, handle: "JobHandle") -> None:
        """A dispatched job reached a terminal state; frees its in-flight slot."""
        tenant = handle.request.tenant
        with self._condition:
            state = self._tenants.get(tenant)
            if state is not None and state.running > 0:
                state.running -= 1
            self._condition.notify_all()

    # --------------------------------------------------------------- removal

    def remove(self, handle: "JobHandle") -> bool:
        """Drop a still-queued handle (cancellation); True when it was queued."""
        tenant = handle.request.tenant
        with self._condition:
            state = self._tenants.get(tenant)
            if state is None:
                return False
            try:
                state.queue.remove(handle)
            except ValueError:
                return False
            self._queued_cost = max(0.0, self._queued_cost - handle._cost_units)
            if not state.queue:
                state.deficit = 0.0
            self._condition.notify_all()
            return True

    def drain(self) -> list["JobHandle"]:
        """Pop every queued handle (shutdown path: caller cancels them)."""
        with self._condition:
            drained: list["JobHandle"] = []
            for state in self._tenants.values():
                drained.extend(state.queue)
                state.queue.clear()
                state.deficit = 0.0
            self._queued_cost = 0.0
            self._condition.notify_all()
            return drained

    def close(self) -> None:
        """Wake blocked dispatchers; subsequent submits raise."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    # --------------------------------------------------------------- queries

    def queued_cost(self) -> float:
        """Total cost units waiting across all tenants (admission's backlog)."""
        with self._condition:
            return self._queued_cost

    def queued_jobs(self) -> int:
        with self._condition:
            return sum(len(state.queue) for state in self._tenants.values())

    def sample_rate(self, tenant: str) -> float:
        """The head-based trace-sampling rate configured for ``tenant``.

        Tenants without an explicit quota inherit the default quota's rate;
        this is what the HTTP ingress consults when minting a fresh
        :class:`~repro.obs.TraceContext` for an untraced inbound request.
        """
        with self._condition:
            state = self._tenants.get(tenant)
            quota = state.quota if state is not None else self.default_quota
            return quota.sample_rate

    def snapshot(self) -> dict:
        """Per-tenant scheduling state for ``/v1/stats`` and reports."""
        with self._condition:
            tenants = {
                name: {
                    "queued": len(state.queue),
                    "running": state.running,
                    "weight": state.quota.weight,
                    "deficit": round(state.deficit, 6),
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "dispatched": state.dispatched,
                    "served_cost": round(state.served_cost, 6),
                    "queue_wait_s": round(state.queue_wait_s, 6),
                    "sample_rate": state.quota.sample_rate,
                    "tokens": round(state.bucket.tokens, 6) if state.bucket is not None else None,
                }
                for name, state in self._tenants.items()
            }
            return {
                "policy": "deficit-round-robin",
                "quantum": self.quantum,
                "queued_cost": round(self._queued_cost, 6),
                "tenants": tenants,
            }
