"""Multi-tenant serving tier over the JobService.

Composes the four serving subsystems into one deployable unit:

* :mod:`.http` — asyncio HTTP/JSON front end (submit / poll / stream /
  cancel / stats), stdlib only;
* :mod:`.scheduler` — per-tenant weighted-fair (deficit round-robin)
  queues with quotas: in-flight caps, queue bounds, token-bucket rates;
* :mod:`.admission` — cost-model-backed admission control (queue when
  fair, 429 + Retry-After before melting);
* :mod:`.journal` — durable append-only JSONL job journal with restart
  replay;
* :mod:`.shard` — consistent-hash sharded engine pools keeping warm plan
  caches warm per shard.

:func:`build_server` wires a production-shaped stack — including request
tracing: a :class:`~repro.obs.sinks.RequestTraceStore` behind a
:class:`~repro.obs.tracing.Tracer`, so every sampled submit's span tree is
queryable at ``/v1/traces/{job_id}`` and ``/v1/metrics`` exposes the
latency histograms whose p99 exemplars point back into it.  Each piece
also composes individually with a plain
:class:`~repro.service.jobs.JobService`.
"""

from __future__ import annotations

import os

from ...obs.metrics import MetricsRegistry
from ...obs.sinks import RequestTraceStore
from ...obs.tracing import Tracer, shared_tracer, tracing_env_enabled
from ..jobs import JobService
from .admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRejected,
    MemdbCostEstimator,
    StructuralCostEstimator,
)
from .http import JobServer, ServerThread, parse_job_payload
from .journal import JobJournal
from .scheduler import FairScheduler, QuotaExceeded, TenantQuota, TokenBucket
from .shard import ConsistentHashRing, ShardedEnginePool

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "ConsistentHashRing",
    "FairScheduler",
    "JobJournal",
    "JobServer",
    "MemdbCostEstimator",
    "QuotaExceeded",
    "ServerThread",
    "ShardedEnginePool",
    "StructuralCostEstimator",
    "TenantQuota",
    "TokenBucket",
    "build_server",
    "parse_job_payload",
]


def build_server(
    journal_path: str | os.PathLike | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 4,
    shards: int = 2,
    max_queued_cost: float | None = 10_000.0,
    max_queued_jobs: int | None = 1024,
    default_quota: TenantQuota | None = None,
    process_workers: int | None = None,
    replay: bool = True,
    tracing: bool = True,
    trace_capacity: int = 256,
    slow_threshold_s: float = 1.0,
    **service_kwargs,
) -> JobServer:
    """Assemble the full serving stack and return the (unstarted) server.

    The returned :class:`JobServer` owns a :class:`JobService` configured
    with a :class:`FairScheduler`, an :class:`AdmissionController` over the
    memdb cost estimator, a :class:`ShardedEnginePool`, and — when
    ``journal_path`` is given — a :class:`JobJournal`; with ``replay=True``
    the journal's incomplete jobs are re-enqueued before the server ever
    accepts traffic.  Start it with ``await server.start()`` /
    ``serve_forever()``, or synchronously via :class:`ServerThread`.

    With ``tracing=True`` (the default) the service gets a tracer backed by
    a :class:`~repro.obs.sinks.RequestTraceStore` of ``trace_capacity``
    requests (slow threshold ``slow_threshold_s``); when ``REPRO_TRACE`` is
    already on, the process-shared tracer is reused so engine-level spans
    and request spans land in one place.
    """
    journal = JobJournal(journal_path) if journal_path is not None else None
    scheduler = FairScheduler(default_quota=default_quota)
    admission = AdmissionController(
        max_queued_cost=max_queued_cost,
        max_queued_jobs=max_queued_jobs,
        estimator=MemdbCostEstimator(),
    )
    metrics = service_kwargs.pop("metrics", None) or MetricsRegistry()
    tracer = service_kwargs.pop("tracer", None)
    if tracer is None and tracing:
        store = RequestTraceStore(
            capacity=trace_capacity, slow_threshold_s=slow_threshold_s
        )
        if tracing_env_enabled():
            tracer = shared_tracer()
            if tracer.request_store is None:
                tracer.request_store = store
        else:
            tracer = Tracer(registry=metrics, request_store=store)
    service = JobService(
        max_workers=max_workers,
        pool=ShardedEnginePool(shards=shards),
        scheduler=scheduler,
        admission=admission,
        journal=journal,
        process_workers=process_workers,
        metrics=metrics,
        tracer=tracer,
        **service_kwargs,
    )
    # The sharded pool exists only for this service: close it on shutdown
    # exactly like a default-constructed pool.
    service._owns_pool = True
    if journal is not None and replay:
        service.replay_journal()
    return JobServer(service, host=host, port=port)
