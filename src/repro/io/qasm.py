"""OpenQASM 2.0 import and export.

The paper's Circuit Layer accepts "standardized formats" for file upload;
OpenQASM 2.0 is the de-facto interchange format between quantum toolkits.
The importer covers the subset produced by mainstream front-ends (header,
register declarations, standard-library gates with constant or ``pi``-based
parameters, ``measure``, ``barrier``); the exporter emits the same subset, so
circuits round-trip exactly.
"""

from __future__ import annotations

import ast
import math
import re

from ..core.circuit import QuantumCircuit
from ..core.gates import is_standard_gate
from ..errors import CircuitFormatError

#: Gate-name translation QASM -> library (identity for most names).
_QASM_TO_LIBRARY = {
    "cnot": "cx",
    "u1": "p",
    "u3": "u",
    "toffoli": "ccx",
    "id": "id",
    "phase": "p",
}
_LIBRARY_TO_QASM = {"p": "u1", "u": "u3"}

_QREG_RE = re.compile(r"^qreg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$")
_MEASURE_RE = re.compile(
    r"^measure\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]\s*->\s*([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$"
)
_GATE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*(\(([^)]*)\))?\s*(.+)$")
_QUBIT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$")


class _SafeEvaluator(ast.NodeVisitor):
    """Evaluates constant arithmetic parameter expressions (with ``pi``)."""

    _ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod)

    def evaluate(self, text: str) -> float:
        try:
            tree = ast.parse(text.strip(), mode="eval")
            return self._eval(tree.body)
        except (SyntaxError, ValueError, ZeroDivisionError, TypeError) as exc:
            raise CircuitFormatError(f"cannot evaluate QASM parameter {text!r}: {exc}") from exc

    def _eval(self, node: ast.AST) -> float:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name):
            if node.id.lower() == "pi":
                return math.pi
            raise ValueError(f"unknown identifier {node.id!r}")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            value = self._eval(node.operand)
            return -value if isinstance(node.op, ast.USub) else value
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._ALLOWED_BINOPS):
            left, right = self._eval(node.left), self._eval(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.Mod):
                return left % right
            return left ** right
        raise ValueError(f"unsupported expression node {type(node).__name__}")


def _strip_comments(text: str) -> str:
    return re.sub(r"//[^\n]*", "", text)


def loads_qasm(text: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""
    statements = [stmt.strip() for stmt in _strip_comments(text).replace("\n", " ").split(";")]
    statements = [stmt for stmt in statements if stmt]
    if not statements:
        raise CircuitFormatError("empty QASM program")

    evaluator = _SafeEvaluator()
    qreg_offsets: dict[str, int] = {}
    creg_offsets: dict[str, int] = {}
    num_qubits = 0
    num_clbits = 0
    body: list[tuple] = []

    for statement in statements:
        lowered = statement.lower()
        if lowered.startswith("openqasm"):
            if "2.0" not in statement:
                raise CircuitFormatError(f"unsupported QASM version in {statement!r}")
            continue
        if lowered.startswith("include"):
            continue
        match = _QREG_RE.match(statement)
        if match:
            qreg_offsets[match.group(1)] = num_qubits
            num_qubits += int(match.group(2))
            continue
        match = _CREG_RE.match(statement)
        if match:
            creg_offsets[match.group(1)] = num_clbits
            num_clbits += int(match.group(2))
            continue
        body.append((statement,))

    if num_qubits == 0:
        raise CircuitFormatError("QASM program declares no qubits")
    circuit = QuantumCircuit(num_qubits, num_clbits, name=name)

    def resolve_qubit(token: str) -> int:
        match = _QUBIT_RE.match(token.strip())
        if not match or match.group(1) not in qreg_offsets:
            raise CircuitFormatError(f"invalid qubit reference {token!r}")
        return qreg_offsets[match.group(1)] + int(match.group(2))

    for (statement,) in body:
        lowered = statement.lower()
        if lowered.startswith("measure"):
            match = _MEASURE_RE.match(statement)
            if not match or match.group(1) not in qreg_offsets or match.group(3) not in creg_offsets:
                raise CircuitFormatError(f"invalid measure statement {statement!r}")
            qubit = qreg_offsets[match.group(1)] + int(match.group(2))
            clbit = creg_offsets[match.group(3)] + int(match.group(4))
            circuit.measure(qubit, clbit)
            continue
        if lowered.startswith("barrier"):
            arguments = statement[len("barrier"):].strip()
            qubits = [resolve_qubit(token) for token in arguments.split(",")] if arguments else []
            circuit.barrier(*qubits)
            continue
        if lowered.startswith("reset"):
            circuit.reset(resolve_qubit(statement[len("reset"):].strip()))
            continue
        match = _GATE_RE.match(statement)
        if not match:
            raise CircuitFormatError(f"cannot parse QASM statement {statement!r}")
        gate_name = match.group(1).lower()
        gate_name = _QASM_TO_LIBRARY.get(gate_name, gate_name)
        if gate_name == "u2":
            # u2(phi, lambda) = u(pi/2, phi, lambda)
            raw = [evaluator.evaluate(part) for part in match.group(3).split(",")]
            if len(raw) != 2:
                raise CircuitFormatError(f"u2 expects two parameters in {statement!r}")
            params = [math.pi / 2, raw[0], raw[1]]
            gate_name = "u"
        else:
            params = [evaluator.evaluate(part) for part in match.group(3).split(",")] if match.group(3) else []
        if not is_standard_gate(gate_name):
            raise CircuitFormatError(f"unsupported QASM gate {gate_name!r}")
        qubits = [resolve_qubit(token) for token in match.group(4).split(",")]
        from ..core.gates import standard_gate

        circuit.append(standard_gate(gate_name, *params), qubits)
    return circuit


def load_qasm(path, name: str | None = None) -> QuantumCircuit:
    """Read an OpenQASM 2.0 file."""
    from pathlib import Path

    path = Path(path)
    return loads_qasm(path.read_text(), name=name or path.stem)


def dumps_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit as OpenQASM 2.0 text."""
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";', f"qreg q[{circuit.num_qubits}];"]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for instruction in circuit.instructions:
        if instruction.kind == "barrier":
            targets = ", ".join(f"q[{qubit}]" for qubit in instruction.qubits)
            lines.append(f"barrier {targets};")
            continue
        if instruction.kind == "reset":
            lines.append(f"reset q[{instruction.qubits[0]}];")
            continue
        if instruction.is_measurement:
            lines.append(f"measure q[{instruction.qubits[0]}] -> c[{instruction.clbits[0]}];")
            continue
        gate = instruction.gate
        assert gate is not None
        if gate.is_parameterized:
            raise CircuitFormatError("bind parameters before exporting to QASM")
        name = _LIBRARY_TO_QASM.get(gate.name, gate.name)
        if not is_standard_gate(gate.name):
            raise CircuitFormatError(f"gate {gate.name!r} has no QASM 2.0 representation")
        rendered_params = ""
        if gate.params:
            rendered_params = "(" + ", ".join(repr(float(value)) for value in gate.resolved_params()) + ")"
        targets = ", ".join(f"q[{qubit}]" for qubit in instruction.qubits)
        lines.append(f"{name}{rendered_params} {targets};")
    return "\n".join(lines) + "\n"


def dump_qasm(circuit: QuantumCircuit, path) -> None:
    """Write a circuit to an OpenQASM 2.0 file."""
    from pathlib import Path

    Path(path).write_text(dumps_qasm(circuit))
