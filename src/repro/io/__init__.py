"""Circuit file formats: OpenQASM 2.0, JSON documents, PyQuil-like programs."""

from .json_io import (
    circuit_from_dict,
    circuit_to_dict,
    dumps_circuit,
    load_circuit,
    loads_circuit,
    save_circuit,
)
from .qasm import dump_qasm, dumps_qasm, load_qasm, loads_qasm
from .quil import dumps_quil, loads_quil

__all__ = [
    "circuit_from_dict",
    "circuit_to_dict",
    "dumps_circuit",
    "load_circuit",
    "loads_circuit",
    "save_circuit",
    "dump_qasm",
    "dumps_qasm",
    "load_qasm",
    "loads_qasm",
    "dumps_quil",
    "loads_quil",
]
