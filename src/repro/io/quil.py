"""PyQuil-like program text input.

The paper advertises "Qiskit- or PyQuil-like syntax" for defining circuits
programmatically; the Qiskit-like path is the fluent :class:`QuantumCircuit`
API, and this module supplies the PyQuil-like path: a small textual program
format of one instruction per line, upper-case gate names, optional
parenthesised parameters, qubit indices as bare integers::

    H 0
    CNOT 0 1
    RZ(0.25) 2
    MEASURE 2 [2]

This is *not* a full Quil implementation (no classical control flow, no
DEFGATE); it covers the instruction shapes needed to express the paper's
demo workloads in a PyQuil-flavoured syntax.
"""

from __future__ import annotations

import math
import re

from ..core.circuit import QuantumCircuit
from ..core.gates import is_standard_gate, standard_gate
from ..errors import CircuitFormatError

#: Quil gate spellings mapped onto library names.
_QUIL_TO_LIBRARY = {
    "cnot": "cx",
    "ccnot": "ccx",
    "phase": "p",
    "cphase": "cp",
    "i": "id",
    "xy": "iswap",
}
_LIBRARY_TO_QUIL = {"cx": "CNOT", "ccx": "CCNOT", "p": "PHASE", "cp": "CPHASE", "id": "I"}

_LINE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_-]*)\s*(\(([^)]*)\))?\s*(.*)$")
_MEASURE_TARGET_RE = re.compile(r"^(\d+)\s*(\[\s*(\d+)\s*\])?$")


def _parse_parameter(text: str) -> float:
    cleaned = text.strip().lower().replace("pi", repr(math.pi))
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307 - numeric only
    except Exception as exc:
        raise CircuitFormatError(f"cannot parse Quil parameter {text!r}: {exc}") from exc


def loads_quil(text: str, name: str = "quil_program") -> QuantumCircuit:
    """Parse a PyQuil-like program into a circuit.

    The qubit count is inferred from the largest qubit index used.
    """
    lines = [line.split("#", 1)[0].strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    if not lines:
        raise CircuitFormatError("empty Quil program")

    parsed: list[tuple[str, list[float], list[int], int | None]] = []
    max_qubit = 0
    for line in lines:
        match = _LINE_RE.match(line)
        if not match:
            raise CircuitFormatError(f"cannot parse Quil line {line!r}")
        mnemonic = match.group(1).lower()
        params = [_parse_parameter(part) for part in match.group(3).split(",")] if match.group(3) else []
        rest = match.group(4).strip()

        if mnemonic == "measure":
            target = _MEASURE_TARGET_RE.match(rest)
            if not target:
                raise CircuitFormatError(f"cannot parse MEASURE target in {line!r}")
            qubit = int(target.group(1))
            clbit = int(target.group(3)) if target.group(3) is not None else qubit
            parsed.append(("measure", [], [qubit], clbit))
            max_qubit = max(max_qubit, qubit)
            continue
        if mnemonic == "reset":
            qubit = int(rest) if rest else 0
            parsed.append(("reset", [], [qubit], None))
            max_qubit = max(max_qubit, qubit)
            continue

        gate_name = _QUIL_TO_LIBRARY.get(mnemonic, mnemonic)
        if not is_standard_gate(gate_name):
            raise CircuitFormatError(f"unsupported Quil gate {mnemonic.upper()!r}")
        try:
            qubits = [int(token) for token in rest.split()]
        except ValueError as exc:
            raise CircuitFormatError(f"invalid qubit list in {line!r}") from exc
        if not qubits:
            raise CircuitFormatError(f"gate {mnemonic.upper()!r} needs at least one qubit in {line!r}")
        parsed.append((gate_name, params, qubits, None))
        max_qubit = max(max_qubit, max(qubits))

    circuit = QuantumCircuit(max_qubit + 1, name=name)
    for mnemonic, params, qubits, clbit in parsed:
        if mnemonic == "measure":
            circuit.measure(qubits[0], None)
            if clbit is not None and clbit != qubits[0]:
                # Re-point the implicit classical bit: simplest is to measure into it directly.
                circuit._instructions.pop()  # noqa: SLF001 - controlled internal rewrite
                circuit._ensure_clbits(clbit + 1)  # noqa: SLF001
                circuit.measure(qubits[0], clbit)
            continue
        if mnemonic == "reset":
            circuit.reset(qubits[0])
            continue
        circuit.append(standard_gate(mnemonic, *params), qubits)
    return circuit


def dumps_quil(circuit: QuantumCircuit) -> str:
    """Serialize a circuit as a PyQuil-like program."""
    lines: list[str] = []
    for instruction in circuit.instructions:
        if instruction.kind == "barrier":
            continue  # Quil has no barrier; it is an optimizer hint only.
        if instruction.kind == "reset":
            lines.append(f"RESET {instruction.qubits[0]}")
            continue
        if instruction.is_measurement:
            lines.append(f"MEASURE {instruction.qubits[0]} [{instruction.clbits[0]}]")
            continue
        gate = instruction.gate
        assert gate is not None
        if gate.is_parameterized:
            raise CircuitFormatError("bind parameters before exporting to Quil")
        mnemonic = _LIBRARY_TO_QUIL.get(gate.name, gate.name.upper())
        rendered = ""
        if gate.params:
            rendered = "(" + ", ".join(repr(float(value)) for value in gate.resolved_params()) + ")"
        qubits = " ".join(str(qubit) for qubit in instruction.qubits)
        lines.append(f"{mnemonic}{rendered} {qubits}")
    return "\n".join(lines) + "\n"
