"""JSON circuit format (the paper's File Upload input).

The demo's web front-end exchanges circuits as JSON; this module defines the
equivalent document format for the library reproduction::

    {
      "name": "ghz_3",
      "num_qubits": 3,
      "instructions": [
        {"gate": "h",  "qubits": [0]},
        {"gate": "cx", "qubits": [0, 1]},
        {"gate": "cx", "qubits": [1, 2]},
        {"measure": 0, "clbit": 0}
      ]
    }

Gates may carry ``params`` (numbers) or symbolic parameter names (strings),
which become :class:`~repro.core.parameters.Parameter` objects so
parameterized circuit families survive the round trip.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.circuit import QuantumCircuit
from ..core.gates import is_standard_gate, standard_gate
from ..core.parameters import Parameter, ParameterExpression
from ..errors import CircuitFormatError

#: Format version written by :func:`circuit_to_dict`.
FORMAT_VERSION = 1


def circuit_to_dict(circuit: QuantumCircuit) -> dict:
    """Convert a circuit into the JSON-ready document structure."""
    instructions: list[dict] = []
    for instruction in circuit.instructions:
        if instruction.kind == "barrier":
            instructions.append({"barrier": list(instruction.qubits)})
            continue
        if instruction.kind == "reset":
            instructions.append({"reset": instruction.qubits[0]})
            continue
        if instruction.is_measurement:
            instructions.append({"measure": instruction.qubits[0], "clbit": instruction.clbits[0]})
            continue
        gate = instruction.gate
        assert gate is not None
        entry: dict = {"gate": gate.name, "qubits": list(instruction.qubits)}
        if gate.params:
            rendered: list = []
            for value in gate.params:
                if isinstance(value, Parameter):
                    rendered.append(value.name)
                elif isinstance(value, ParameterExpression):
                    raise CircuitFormatError(
                        "compound parameter expressions cannot be serialized; bind them first"
                    )
                else:
                    rendered.append(float(value))
            entry["params"] = rendered
        instructions.append(entry)
    return {
        "format_version": FORMAT_VERSION,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "instructions": instructions,
    }


def circuit_from_dict(document: dict) -> QuantumCircuit:
    """Rebuild a circuit from the document structure (inverse of :func:`circuit_to_dict`)."""
    try:
        num_qubits = int(document["num_qubits"])
        instructions = document["instructions"]
    except (KeyError, TypeError, ValueError) as exc:
        raise CircuitFormatError(f"invalid circuit document: {exc}") from exc
    circuit = QuantumCircuit(
        num_qubits,
        int(document.get("num_clbits", 0) or 0),
        name=str(document.get("name", "circuit")),
    )
    parameters: dict[str, Parameter] = {}
    for entry in instructions:
        if "barrier" in entry:
            circuit.barrier(*entry["barrier"])
            continue
        if "reset" in entry:
            circuit.reset(int(entry["reset"]))
            continue
        if "measure" in entry:
            clbit = entry.get("clbit")
            circuit.measure(int(entry["measure"]), None if clbit is None else int(clbit))
            continue
        gate_name = str(entry.get("gate", "")).lower()
        if not is_standard_gate(gate_name):
            raise CircuitFormatError(f"unknown gate {gate_name!r} in circuit document")
        params = []
        for value in entry.get("params", []):
            if isinstance(value, str):
                params.append(parameters.setdefault(value, Parameter(value)))
            else:
                params.append(float(value))
        circuit.append(standard_gate(gate_name, *params), [int(q) for q in entry["qubits"]])
    return circuit


def dumps_circuit(circuit: QuantumCircuit, indent: int = 2) -> str:
    """Serialize a circuit to a JSON string."""
    return json.dumps(circuit_to_dict(circuit), indent=indent)


def loads_circuit(text: str) -> QuantumCircuit:
    """Parse a circuit from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CircuitFormatError(f"invalid JSON: {exc}") from exc
    return circuit_from_dict(document)


def save_circuit(circuit: QuantumCircuit, path) -> Path:
    """Write a circuit to a JSON file."""
    path = Path(path)
    path.write_text(dumps_circuit(circuit))
    return path


def load_circuit(path) -> QuantumCircuit:
    """Read a circuit from a JSON file."""
    return loads_circuit(Path(path).read_text())
